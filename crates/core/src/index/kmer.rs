//! Inverted k-mer index over a collection of sequences.

use crate::seq::ops::kmers;
use crate::seq::DnaSeq;
use std::collections::{HashMap, HashSet};

/// An inverted index mapping every k-mer to the sequences (and positions)
/// it occurs in.
///
/// Sequences are registered under caller-chosen `u64` keys (the adapter
/// uses row ids). The index is *sound* as a filter: for a strict pattern of
/// length ≥ k, every sequence containing the pattern is returned by
/// [`KmerIndex::candidates`]; verification against the actual sequence
/// removes false positives.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    map: HashMap<u64, Vec<(u64, u32)>>,
    /// Number of indexed sequences, used for selectivity estimation.
    sequences: usize,
    /// Total indexed positions.
    positions: usize,
}

impl KmerIndex {
    /// An empty index with word size `k` (1–31).
    pub fn new(k: usize) -> Self {
        assert!((1..=31).contains(&k), "k must be in 1..=31");
        KmerIndex { k, map: HashMap::new(), sequences: 0, positions: 0 }
    }

    /// Word size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed sequences.
    pub fn len(&self) -> usize {
        self.sequences
    }

    /// True if nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.sequences == 0
    }

    /// Total number of indexed k-mer positions.
    pub fn indexed_positions(&self) -> usize {
        self.positions
    }

    /// Number of distinct k-mers seen.
    pub fn distinct_kmers(&self) -> usize {
        self.map.len()
    }

    /// Index `seq` under `key`. Re-adding a key indexes it again; call
    /// [`KmerIndex::remove`] first when replacing.
    pub fn add(&mut self, key: u64, seq: &DnaSeq) {
        let mut any = false;
        for (pos, km) in kmers(seq, self.k) {
            self.map.entry(km).or_default().push((key, pos as u32));
            self.positions += 1;
            any = true;
        }
        // Count the sequence even if it yielded no k-mers (too short or all
        // ambiguous): it is still registered, it simply can never be a
        // candidate.
        let _ = any;
        self.sequences += 1;
    }

    /// Remove every posting for `key`.
    pub fn remove(&mut self, key: u64) {
        let mut removed = 0usize;
        self.map.retain(|_, postings| {
            let before = postings.len();
            postings.retain(|(k, _)| *k != key);
            removed += before - postings.len();
            !postings.is_empty()
        });
        self.positions -= removed;
        self.sequences = self.sequences.saturating_sub(1);
    }

    /// Keys of sequences that share *every* k-mer of `pattern` (a superset
    /// of those containing `pattern` when the pattern is strict and at
    /// least `k` long). Returns `None` when the pattern is too short or too
    /// ambiguous to filter, in which case the caller must scan.
    pub fn candidates(&self, pattern: &DnaSeq) -> Option<HashSet<u64>> {
        let pattern_kmers = kmers(pattern, self.k);
        // The filter is only sound if the pattern's k-mer decomposition
        // covers it completely: `kmers` skips ambiguous windows, so require
        // the full count.
        if pattern.len() < self.k || pattern_kmers.len() != pattern.len() - self.k + 1 {
            return None;
        }
        let mut result: Option<HashSet<u64>> = None;
        for (_, km) in pattern_kmers {
            let keys: HashSet<u64> = match self.map.get(&km) {
                Some(postings) => postings.iter().map(|(k, _)| *k).collect(),
                None => return Some(HashSet::new()),
            };
            result = Some(match result {
                None => keys,
                Some(acc) => acc.intersection(&keys).copied().collect(),
            });
            if result.as_ref().is_some_and(HashSet::is_empty) {
                break;
            }
        }
        result.or_else(|| Some(HashSet::new()))
    }

    /// Estimated fraction of sequences matching a `contains(pattern)`
    /// predicate, based on the rarest k-mer of the pattern. Used by the
    /// optimizer's selectivity hook (§6.5).
    pub fn estimate_selectivity(&self, pattern: &DnaSeq) -> f64 {
        if self.sequences == 0 {
            return 0.0;
        }
        let pattern_kmers = kmers(pattern, self.k);
        if pattern_kmers.is_empty() {
            return 1.0; // unfilterable pattern: assume everything matches
        }
        let rarest = pattern_kmers
            .iter()
            .map(|(_, km)| {
                self.map.get(km).map_or(0, |p| {
                    let mut keys: Vec<u64> = p.iter().map(|(k, _)| *k).collect();
                    keys.sort_unstable();
                    keys.dedup();
                    keys.len()
                })
            })
            .min()
            .unwrap_or(0);
        rarest as f64 / self.sequences as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    fn sample_index() -> KmerIndex {
        let mut idx = KmerIndex::new(4);
        idx.add(1, &dna("ATGGCCTTTAAG"));
        idx.add(2, &dna("CCCCGGGGAAAA"));
        idx.add(3, &dna("ATGGCCAAAAAA"));
        idx
    }

    #[test]
    fn candidates_superset_of_matches() {
        let idx = sample_index();
        let cands = idx.candidates(&dna("ATGGCC")).unwrap();
        assert!(cands.contains(&1));
        assert!(cands.contains(&3));
        assert!(!cands.contains(&2));
    }

    #[test]
    fn absent_kmer_empty_candidates() {
        let idx = sample_index();
        let cands = idx.candidates(&dna("TTTTGGGG")).unwrap();
        assert!(cands.is_empty());
    }

    #[test]
    fn short_or_ambiguous_patterns_fall_back() {
        let idx = sample_index();
        assert!(idx.candidates(&dna("ATG")).is_none(), "shorter than k");
        assert!(idx.candidates(&dna("ATGNCC")).is_none(), "ambiguity breaks coverage");
    }

    #[test]
    fn remove_drops_postings() {
        let mut idx = sample_index();
        idx.remove(1);
        let cands = idx.candidates(&dna("TTTAAG")).unwrap();
        assert!(cands.is_empty());
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn counts_and_stats() {
        let idx = sample_index();
        assert_eq!(idx.len(), 3);
        assert!(idx.indexed_positions() > 0);
        assert!(idx.distinct_kmers() > 0);
        assert_eq!(idx.k(), 4);
        assert!(!idx.is_empty());
    }

    #[test]
    fn selectivity_estimates_bounded() {
        let idx = sample_index();
        let s = idx.estimate_selectivity(&dna("ATGGCC"));
        assert!(s > 0.0 && s <= 1.0);
        // A pattern with an absent k-mer estimates zero.
        assert_eq!(idx.estimate_selectivity(&dna("TTTTGGGG")), 0.0);
        // An unfilterable pattern estimates 1.
        assert_eq!(idx.estimate_selectivity(&dna("NNNNNN")), 1.0);
        assert_eq!(KmerIndex::new(4).estimate_selectivity(&dna("ATGC")), 0.0);
    }

    #[test]
    fn soundness_no_false_negatives() {
        // Randomized-ish check over a fixed corpus: every sequence that
        // truly contains the pattern appears among the candidates.
        let corpus = [
            "ATGGCCTTTAAGATCGATCG",
            "TTTTTTTTTTTTTTTTTTTT",
            "GGGGATGGCCTTTAAGGGGG",
            "ACGTACGTACGTACGTACGT",
        ];
        let mut idx = KmerIndex::new(5);
        for (i, s) in corpus.iter().enumerate() {
            idx.add(i as u64, &dna(s));
        }
        let pattern = dna("ATGGCCTTTAAG");
        let cands = idx.candidates(&pattern).unwrap();
        for (i, s) in corpus.iter().enumerate() {
            if dna(s).contains(&pattern) {
                assert!(cands.contains(&(i as u64)), "missed true match {i}");
            }
        }
    }
}
