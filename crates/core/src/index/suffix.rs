//! Suffix array over a single sequence for exact substring search.

use crate::seq::DnaSeq;

/// A suffix array built by prefix doubling (`O(n log² n)` construction,
/// `O(m log n)` lookup), with a Kasai LCP array for repeat analysis.
#[derive(Debug, Clone)]
pub struct SuffixArray {
    text: Vec<u8>,
    sa: Vec<u32>,
    lcp: Vec<u32>,
}

impl SuffixArray {
    /// Build over the textual form of a DNA sequence.
    pub fn build(seq: &DnaSeq) -> Self {
        Self::from_bytes(seq.to_text().into_bytes())
    }

    /// Build over raw bytes (used directly by tests and by protein search).
    pub fn from_bytes(text: Vec<u8>) -> Self {
        let n = text.len();
        let mut sa: Vec<u32> = (0..n as u32).collect();
        let mut rank: Vec<i64> = text.iter().map(|&b| b as i64).collect();
        let mut tmp = vec![0i64; n];
        let mut k = 1usize;
        while k < n.max(1) {
            let key = |i: u32| -> (i64, i64) {
                let i = i as usize;
                let second = if i + k < n { rank[i + k] } else { -1 };
                (rank[i], second)
            };
            sa.sort_unstable_by_key(|&a| key(a));
            // Re-rank.
            if n > 0 {
                tmp[sa[0] as usize] = 0;
                for w in 1..n {
                    let prev = sa[w - 1];
                    let cur = sa[w];
                    tmp[cur as usize] = tmp[prev as usize] + i64::from(key(prev) != key(cur));
                }
                rank.copy_from_slice(&tmp);
                if rank[sa[n - 1] as usize] as usize == n - 1 {
                    break;
                }
            }
            k *= 2;
        }
        let lcp = kasai(&text, &sa);
        SuffixArray { text, sa, lcp }
    }

    /// Length of the indexed text.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if the indexed text is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The suffix array itself (sorted suffix start offsets).
    pub fn suffixes(&self) -> &[u32] {
        &self.sa
    }

    /// The LCP array: `lcp[i]` is the longest common prefix of suffixes
    /// `sa[i-1]` and `sa[i]` (`lcp[0] = 0`).
    pub fn lcp(&self) -> &[u32] {
        &self.lcp
    }

    /// All start positions of `pattern` in the text, sorted ascending.
    pub fn find_all(&self, pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > self.text.len() {
            return Vec::new();
        }
        let lo = self.lower_bound(pattern);
        let hi = self.upper_bound(pattern);
        let mut out: Vec<usize> = self.sa[lo..hi].iter().map(|&i| i as usize).collect();
        out.sort_unstable();
        out
    }

    /// True if `pattern` occurs in the text.
    pub fn contains(&self, pattern: &[u8]) -> bool {
        if pattern.is_empty() {
            return true;
        }
        let lo = self.lower_bound(pattern);
        lo < self.sa.len() && self.suffix(lo).starts_with(pattern)
    }

    /// Length of the longest substring that occurs at least twice.
    pub fn longest_repeat(&self) -> usize {
        self.lcp.iter().copied().max().unwrap_or(0) as usize
    }

    fn suffix(&self, rank: usize) -> &[u8] {
        &self.text[self.sa[rank] as usize..]
    }

    fn lower_bound(&self, pattern: &[u8]) -> usize {
        let (mut lo, mut hi) = (0usize, self.sa.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.suffix(mid) < pattern {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn upper_bound(&self, pattern: &[u8]) -> usize {
        let (mut lo, mut hi) = (0usize, self.sa.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let suf = self.suffix(mid);
            let prefix = &suf[..pattern.len().min(suf.len())];
            if prefix <= pattern {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

fn kasai(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    let mut lcp = vec![0u32; n];
    if n == 0 {
        return lcp;
    }
    let mut rank = vec![0usize; n];
    for (r, &i) in sa.iter().enumerate() {
        rank[i as usize] = r;
    }
    let mut h = 0usize;
    for i in 0..n {
        if rank[i] > 0 {
            let j = sa[rank[i] - 1] as usize;
            while i + h < n && j + h < n && text[i + h] == text[j + h] {
                h += 1;
            }
            lcp[rank[i]] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    #[test]
    fn banana_suffix_array() {
        let sa = SuffixArray::from_bytes(b"banana".to_vec());
        // Sorted suffixes: a(5), ana(3), anana(1), banana(0), na(4), nana(2).
        assert_eq!(sa.suffixes(), &[5, 3, 1, 0, 4, 2]);
        // LCP: -, a|ana=1, ana|anana=3, -=0, na|nana=2 → [0,1,3,0,0,2].
        assert_eq!(sa.lcp(), &[0, 1, 3, 0, 0, 2]);
        assert_eq!(sa.longest_repeat(), 3);
    }

    #[test]
    fn find_all_positions() {
        let sa = SuffixArray::from_bytes(b"banana".to_vec());
        assert_eq!(sa.find_all(b"ana"), vec![1, 3]);
        assert_eq!(sa.find_all(b"banana"), vec![0]);
        assert_eq!(sa.find_all(b"x"), Vec::<usize>::new());
        assert_eq!(sa.find_all(b""), Vec::<usize>::new());
    }

    #[test]
    fn contains_agrees_with_naive() {
        let text = "ATGGCCTTTAAGATGGCC";
        let sa = SuffixArray::build(&dna(text));
        for pat in ["ATG", "GCC", "TTTAAG", "GGCCT", "AAA", "CCGG"] {
            assert_eq!(sa.contains(pat.as_bytes()), text.contains(pat), "disagreement on {pat}");
        }
        assert!(sa.contains(b""));
    }

    #[test]
    fn find_all_agrees_with_naive_scan() {
        let text = "AAAAABAAAAB";
        let sa = SuffixArray::from_bytes(text.as_bytes().to_vec());
        let naive: Vec<usize> =
            (0..=text.len() - 3).filter(|&i| &text.as_bytes()[i..i + 3] == b"AAA").collect();
        assert_eq!(sa.find_all(b"AAA"), naive);
    }

    #[test]
    fn empty_and_single() {
        let sa = SuffixArray::from_bytes(Vec::new());
        assert!(sa.is_empty());
        assert!(sa.find_all(b"A").is_empty());
        let sa = SuffixArray::from_bytes(b"A".to_vec());
        assert_eq!(sa.len(), 1);
        assert_eq!(sa.find_all(b"A"), vec![0]);
        assert_eq!(sa.longest_repeat(), 0);
    }

    #[test]
    fn dna_build_matches_text_search() {
        let seq = dna("ATTGCCATAGGATTGCC");
        let sa = SuffixArray::build(&seq);
        assert_eq!(sa.find_all(b"ATTGCC"), vec![0, 11]);
    }
}
