//! Genomic index structures (§6.5).
//!
//! The paper calls for domain-specific indexing that supports "similarity
//! or substructure search on nucleotide sequences" and for a DBMS mechanism
//! to integrate such user-defined index structures. Two indexes live here:
//!
//! * [`KmerIndex`] — an inverted index from k-mers to (sequence, position)
//!   pairs over a *collection* of sequences. It answers "which sequences
//!   could contain this pattern" with no false negatives for strict
//!   patterns of length ≥ k, which is exactly the filter step the
//!   `contains`/`resembles` predicates need.
//! * [`SuffixArray`] — a suffix array over a single long sequence for exact
//!   substring location in `O(m log n)`.
//!
//! `unidb`'s user-defined-index mechanism (`unidb::index::udi`) plugs the
//! k-mer index into query plans; see `genalg-adapter`.

mod kmer;
mod suffix;

pub use kmer::KmerIndex;
pub use suffix::SuffixArray;
