//! Scoring schemes for alignment.

/// A substitution/gap scoring scheme over ASCII symbols.
///
/// Gap penalties follow the affine model: the first gap symbol of a run
/// costs `gap_open` and every further symbol costs `gap_extend` (both are
/// negative numbers).
pub trait Scoring {
    /// Substitution score for aligning symbols `a` and `b`.
    fn score(&self, a: u8, b: u8) -> i32;
    /// Cost of opening a gap (negative).
    fn gap_open(&self) -> i32;
    /// Cost of extending a gap by one symbol (negative).
    fn gap_extend(&self) -> i32;
}

/// Simple match/mismatch scoring for nucleotide sequences.
///
/// `N` (and any IUPAC ambiguity symbol) scores as a mismatch against
/// everything including itself — the conservative choice for noisy data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NucleotideScore {
    pub matched: i32,
    pub mismatch: i32,
    pub gap_open: i32,
    pub gap_extend: i32,
}

impl Default for NucleotideScore {
    /// BLASTN-like defaults: +2 match, −3 mismatch, −5 open, −2 extend.
    fn default() -> Self {
        NucleotideScore { matched: 2, mismatch: -3, gap_open: -5, gap_extend: -2 }
    }
}

impl Scoring for NucleotideScore {
    fn score(&self, a: u8, b: u8) -> i32 {
        let concrete = matches!(a, b'A' | b'C' | b'G' | b'T' | b'U');
        if concrete && a == b {
            self.matched
        } else {
            self.mismatch
        }
    }

    fn gap_open(&self) -> i32 {
        self.gap_open
    }

    fn gap_extend(&self) -> i32 {
        self.gap_extend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scores() {
        let s = NucleotideScore::default();
        assert_eq!(s.score(b'A', b'A'), 2);
        assert_eq!(s.score(b'A', b'G'), -3);
        assert_eq!(s.score(b'N', b'N'), -3, "ambiguity never scores as a match");
        assert_eq!(s.gap_open(), -5);
        assert_eq!(s.gap_extend(), -2);
    }
}
