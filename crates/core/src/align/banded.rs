//! Banded global alignment for near-identical sequences.
//!
//! When two sequences are known to differ by at most a handful of edits —
//! the common case when reconciling overlapping repository entries — the
//! full quadratic dynamic program is wasteful. Restricting the computation
//! to a diagonal band of half-width `band` makes it `O(n·band)` while
//! returning the identical result whenever the optimal path stays inside
//! the band.

use crate::align::gotoh::Aligned;
use crate::align::score::Scoring;

const NEG: i32 = i32::MIN / 2;

/// Banded Needleman–Wunsch with *linear* gap costs (`gap_open` applied per
/// gap symbol). Returns `None` when the band cannot connect the corners,
/// i.e. when the length difference exceeds the band half-width.
pub fn banded_global_align(
    a: &[u8],
    b: &[u8],
    scoring: &impl Scoring,
    band: usize,
) -> Option<Aligned> {
    let n = a.len();
    let m = b.len();
    if n.abs_diff(m) > band {
        return None;
    }
    let width = 2 * band + 1;
    let gap = scoring.gap_open();

    // score[i][k] where k encodes diagonal offset j - i + band ∈ [0, width).
    let mut score = vec![NEG; (n + 1) * width];
    let mut trace = vec![0u8; (n + 1) * width]; // 0 diag, 1 up (gap in b), 2 left (gap in a)
    let idx = |i: usize, k: usize| i * width + k;
    let in_band = |i: usize, j: usize| (j + band >= i) && (j <= i + band);

    score[idx(0, band)] = 0;
    for j in 1..=m.min(band) {
        score[idx(0, j + band)] = gap * j as i32;
        trace[idx(0, j + band)] = 2;
    }
    for i in 1..=n {
        for k in 0..width {
            // j = i + k - band, guarded against underflow/overflow.
            let j_signed = i as isize + k as isize - band as isize;
            if j_signed < 0 || j_signed as usize > m {
                continue;
            }
            let j = j_signed as usize;
            if j == 0 {
                score[idx(i, k)] = gap * i as i32;
                trace[idx(i, k)] = 1;
                continue;
            }
            let mut best = NEG;
            let mut dir = 0u8;
            // Diagonal: (i-1, j-1) is the same k.
            if in_band(i - 1, j - 1) {
                let v = score[idx(i - 1, k)].saturating_add(scoring.score(a[i - 1], b[j - 1]));
                if v > best {
                    best = v;
                    dir = 0;
                }
            }
            // Up: (i-1, j) is k+1.
            if k + 1 < width && in_band(i - 1, j) {
                let v = score[idx(i - 1, k + 1)].saturating_add(gap);
                if v > best {
                    best = v;
                    dir = 1;
                }
            }
            // Left: (i, j-1) is k-1.
            if k >= 1 && in_band(i, j - 1) {
                let v = score[idx(i, k - 1)].saturating_add(gap);
                if v > best {
                    best = v;
                    dir = 2;
                }
            }
            score[idx(i, k)] = best;
            trace[idx(i, k)] = dir;
        }
    }

    let final_k = (m + band).checked_sub(n)?;
    if final_k >= width {
        return None;
    }
    let final_score = score[idx(n, final_k)];
    if final_score <= NEG / 2 {
        return None;
    }

    // Traceback.
    let mut ra = Vec::new();
    let mut rb = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let k = (j + band) - i;
        match trace[idx(i, k)] {
            0 => {
                ra.push(a[i - 1]);
                rb.push(b[j - 1]);
                i -= 1;
                j -= 1;
            }
            1 => {
                ra.push(a[i - 1]);
                rb.push(b'-');
                i -= 1;
            }
            _ => {
                ra.push(b'-');
                rb.push(b[j - 1]);
                j -= 1;
            }
        }
    }
    ra.reverse();
    rb.reverse();
    Some(Aligned {
        score: final_score,
        aligned_a: ra,
        aligned_b: rb,
        a_range: (0, n),
        b_range: (0, m),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::gotoh::global_align;
    use crate::align::score::NucleotideScore;

    /// Linear-gap scoring so banded and full NW are directly comparable.
    fn linear() -> NucleotideScore {
        NucleotideScore { matched: 2, mismatch: -3, gap_open: -4, gap_extend: -4 }
    }

    #[test]
    fn matches_full_alignment_for_close_sequences() {
        let a = b"ATGGCCTTTAAGCCGGTT";
        let b = b"ATGGCCTTAAGCCGGTT"; // one deletion
        let banded = banded_global_align(a, b, &linear(), 4).unwrap();
        let full = global_align(a, b, &linear());
        assert_eq!(banded.score, full.score);
        assert_eq!(banded.matches(), full.matches());
    }

    #[test]
    fn identical_sequences() {
        let a = b"ACGTACGTACGT";
        let aln = banded_global_align(a, a, &linear(), 2).unwrap();
        assert_eq!(aln.score, 24);
        assert!((aln.identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn length_difference_beyond_band_is_none() {
        assert!(banded_global_align(b"AAAAAAAAAA", b"AA", &linear(), 3).is_none());
    }

    #[test]
    fn band_zero_is_pure_diagonal() {
        let aln = banded_global_align(b"ACGT", b"AGGT", &linear(), 0).unwrap();
        assert_eq!(aln.score, 3 * 2 - 3);
        assert_eq!(aln.gap_count(), 0);
    }

    #[test]
    fn empty_sequences() {
        let aln = banded_global_align(b"", b"", &linear(), 1).unwrap();
        assert_eq!(aln.score, 0);
        assert!(aln.is_empty());
        let aln = banded_global_align(b"AB", b"", &linear(), 2).unwrap();
        assert_eq!(aln.score, -8);
    }

    #[test]
    fn reconstruction_consistent() {
        let a = b"ATGCCGTA";
        let b = b"ATGCGTAA";
        let aln = banded_global_align(a, b, &linear(), 3).unwrap();
        let stripped_a: Vec<u8> = aln.aligned_a.iter().copied().filter(|&c| c != b'-').collect();
        let stripped_b: Vec<u8> = aln.aligned_b.iter().copied().filter(|&c| c != b'-').collect();
        assert_eq!(&stripped_a[..], a);
        assert_eq!(&stripped_b[..], b);
    }
}
