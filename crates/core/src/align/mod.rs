//! Sequence alignment and similarity.
//!
//! The paper's §6.3 sketches a user-defined `resembles` operator for
//! comparing nucleotide sequences, and its §3 baseline systems wrap BLAST.
//! This module supplies the machinery from scratch:
//!
//! * [`global_align`] — Needleman–Wunsch with affine gaps (Gotoh).
//! * [`local_align`] — Smith–Waterman with affine gaps.
//! * [`banded_global_align`] — banded global alignment for near-identical
//!   sequences.
//! * [`seed_and_extend`] — a BLAST-style heuristic: exact k-mer seeds,
//!   ungapped X-drop extension, and a banded refinement pass.
//! * [`resembles`] — the similarity predicate exposed to the query language.
//!
//! All aligners work on ASCII symbol slices so one implementation serves
//! DNA, RNA, and protein sequences; typed wrappers do the conversion.

mod banded;
mod gotoh;
mod matrix;
mod score;
mod seedextend;

pub use banded::banded_global_align;
pub use gotoh::{global_align, local_align, Aligned};
pub use matrix::Blosum62;
pub use score::{NucleotideScore, Scoring};
pub use seedextend::{best_hsp_score, seed_and_extend, Hsp};

use crate::seq::{DnaSeq, ProteinSeq};

/// Align two DNA sequences globally with the given scoring.
pub fn global_align_dna(a: &DnaSeq, b: &DnaSeq, scoring: &NucleotideScore) -> Aligned {
    global_align(a.to_text().as_bytes(), b.to_text().as_bytes(), scoring)
}

/// Align two DNA sequences locally with the given scoring.
pub fn local_align_dna(a: &DnaSeq, b: &DnaSeq, scoring: &NucleotideScore) -> Aligned {
    local_align(a.to_text().as_bytes(), b.to_text().as_bytes(), scoring)
}

/// Align two protein sequences globally under BLOSUM62.
pub fn global_align_protein(a: &ProteinSeq, b: &ProteinSeq) -> Aligned {
    global_align(a.to_text().as_bytes(), b.to_text().as_bytes(), &Blosum62::default())
}

/// Align two protein sequences locally under BLOSUM62.
pub fn local_align_protein(a: &ProteinSeq, b: &ProteinSeq) -> Aligned {
    local_align(a.to_text().as_bytes(), b.to_text().as_bytes(), &Blosum62::default())
}

/// The paper's `resembles` predicate: do the two sequences share a local
/// alignment with identity at least `min_identity` covering at least
/// `min_cover` of the shorter sequence?
///
/// A fast k-mer screen rejects obviously unrelated pairs before the
/// quadratic local alignment runs, which is what makes the predicate usable
/// inside `WHERE` clauses over whole tables.
pub fn resembles(a: &DnaSeq, b: &DnaSeq, min_identity: f64, min_cover: f64) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let short = a.len().min(b.len());
    // Screen: any shared 8-mer? Only meaningful once the sequences are long
    // enough that chance 8-mer hits are informative.
    if short >= 16 {
        let k = 8;
        let mut seen = std::collections::HashSet::new();
        for (_, km) in crate::seq::ops::kmers(a, k) {
            seen.insert(km);
        }
        if !crate::seq::ops::kmers(b, k).iter().any(|(_, km)| seen.contains(km)) {
            return false;
        }
    }
    let scoring = NucleotideScore::default();
    let aln = local_align_dna(a, b, &scoring);
    let covered = aln.a_range.1 - aln.a_range.0;
    let cover = covered as f64 / short as f64;
    aln.identity() >= min_identity && cover >= min_cover
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    #[test]
    fn resembles_identical() {
        let a = dna("ATGGCCTTTAAGGGGCCCAAATTTGGGCCCATAT");
        assert!(resembles(&a, &a, 0.95, 0.95));
    }

    #[test]
    fn resembles_tolerates_small_divergence() {
        let a = dna("ATGGCCTTTAAGGGGCCCAAATTTGGGCCCATATACGT");
        let b = dna("ATGGCCTTTAAGGGGCACAAATTTGGGCCCATATACGT"); // one substitution
        assert!(resembles(&a, &b, 0.9, 0.9));
    }

    #[test]
    fn resembles_rejects_unrelated() {
        let a = dna("ATATATATATATATATATATATATATATATAT");
        let b = dna("GCGCGCGCGCGCGCGCGCGCGCGCGCGCGCGC");
        assert!(!resembles(&a, &b, 0.8, 0.5));
    }

    #[test]
    fn resembles_empty_is_false() {
        assert!(!resembles(&DnaSeq::empty(), &dna("ATG"), 0.5, 0.5));
    }

    #[test]
    fn typed_wrappers_agree_with_raw() {
        let a = dna("ATGGCC");
        let b = dna("ATGCCC");
        let scoring = NucleotideScore::default();
        let w = global_align_dna(&a, &b, &scoring);
        let r = global_align(b"ATGGCC", b"ATGCCC", &scoring);
        assert_eq!(w.score, r.score);
    }

    #[test]
    fn protein_wrappers_run() {
        let a = ProteinSeq::from_text("MAFKWH").unwrap();
        let b = ProteinSeq::from_text("MAFKYH").unwrap();
        let g = global_align_protein(&a, &b);
        assert!(g.score > 0);
        let l = local_align_protein(&a, &b);
        assert!(l.score >= g.score);
    }
}
