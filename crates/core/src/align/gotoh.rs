//! Affine-gap pairwise alignment (Gotoh's algorithm), used both globally
//! (Needleman–Wunsch) and locally (Smith–Waterman).

use crate::align::score::Scoring;
use std::fmt;

/// Sentinel for "unreachable" dynamic-programming states; low enough that
/// adding a penalty can never overflow or win a `max`.
const NEG: i32 = i32::MIN / 2;

/// The result of a pairwise alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aligned {
    /// Total alignment score under the scoring scheme used.
    pub score: i32,
    /// First sequence with `-` gap characters inserted.
    pub aligned_a: Vec<u8>,
    /// Second sequence with `-` gap characters inserted.
    pub aligned_b: Vec<u8>,
    /// Half-open range of the first sequence covered by the alignment
    /// (the whole sequence for global alignment).
    pub a_range: (usize, usize),
    /// Half-open range of the second sequence covered by the alignment.
    pub b_range: (usize, usize),
}

impl Aligned {
    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.aligned_a.len()
    }

    /// True for a zero-column alignment (possible for local alignment of
    /// unrelated sequences).
    pub fn is_empty(&self) -> bool {
        self.aligned_a.is_empty()
    }

    /// Columns where the two symbols are identical.
    pub fn matches(&self) -> usize {
        self.aligned_a.iter().zip(&self.aligned_b).filter(|(x, y)| x == y && **x != b'-').count()
    }

    /// Fraction of identical columns (0 for an empty alignment).
    pub fn identity(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.matches() as f64 / self.len() as f64
        }
    }

    /// Number of gap characters across both rows.
    pub fn gap_count(&self) -> usize {
        self.aligned_a.iter().filter(|&&c| c == b'-').count()
            + self.aligned_b.iter().filter(|&&c| c == b'-').count()
    }
}

impl fmt::Display for Aligned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mid: String = self
            .aligned_a
            .iter()
            .zip(&self.aligned_b)
            .map(|(x, y)| if x == y && *x != b'-' { '|' } else { ' ' })
            .collect();
        writeln!(f, "{}", String::from_utf8_lossy(&self.aligned_a))?;
        writeln!(f, "{mid}")?;
        write!(f, "{}", String::from_utf8_lossy(&self.aligned_b))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Layer {
    M,
    X, // gap in b (consumes a)
    Y, // gap in a (consumes b)
}

struct Dp {
    cols: usize,
    m: Vec<i32>,
    x: Vec<i32>,
    y: Vec<i32>,
}

impl Dp {
    fn new(rows: usize, cols: usize) -> Self {
        Dp { cols, m: vec![NEG; rows * cols], x: vec![NEG; rows * cols], y: vec![NEG; rows * cols] }
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.cols + j
    }
}

/// Global alignment (Needleman–Wunsch with affine gaps).
pub fn global_align(a: &[u8], b: &[u8], scoring: &impl Scoring) -> Aligned {
    align(a, b, scoring, false)
}

/// Local alignment (Smith–Waterman with affine gaps).
pub fn local_align(a: &[u8], b: &[u8], scoring: &impl Scoring) -> Aligned {
    align(a, b, scoring, true)
}

fn align(a: &[u8], b: &[u8], scoring: &impl Scoring, local: bool) -> Aligned {
    let n = a.len();
    let m = b.len();
    let open = scoring.gap_open();
    let ext = scoring.gap_extend();
    let mut dp = Dp::new(n + 1, m + 1);

    // Borders.
    let origin = dp.idx(0, 0);
    dp.m[origin] = 0;
    for i in 1..=n {
        let k = dp.idx(i, 0);
        if local {
            dp.m[k] = 0;
        } else {
            dp.x[k] = open + (i as i32 - 1) * ext;
        }
    }
    for j in 1..=m {
        let k = dp.idx(0, j);
        if local {
            dp.m[k] = 0;
        } else {
            dp.y[k] = open + (j as i32 - 1) * ext;
        }
    }

    // Fill.
    for i in 1..=n {
        for j in 1..=m {
            let k = dp.idx(i, j);
            let diag = dp.idx(i - 1, j - 1);
            let up = dp.idx(i - 1, j);
            let left = dp.idx(i, j - 1);

            let s = scoring.score(a[i - 1], b[j - 1]);
            let best_prev = dp.m[diag].max(dp.x[diag]).max(dp.y[diag]);
            let mut mv = best_prev.saturating_add(s);
            if local && mv < 0 {
                mv = 0;
            }
            dp.m[k] = mv;
            dp.x[k] = (dp.m[up].saturating_add(open)).max(dp.x[up].saturating_add(ext));
            dp.y[k] = (dp.m[left].saturating_add(open)).max(dp.y[left].saturating_add(ext));
        }
    }

    // Locate the traceback start.
    let (mut i, mut j, mut layer, score) = if local {
        let mut best = (0usize, 0usize, 0i32);
        for i in 0..=n {
            for j in 0..=m {
                let v = dp.m[dp.idx(i, j)];
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        (best.0, best.1, Layer::M, best.2)
    } else {
        let k = dp.idx(n, m);
        let (mut layer, mut sc) = (Layer::M, dp.m[k]);
        if dp.x[k] > sc {
            layer = Layer::X;
            sc = dp.x[k];
        }
        if dp.y[k] > sc {
            layer = Layer::Y;
            sc = dp.y[k];
        }
        (n, m, layer, sc)
    };

    // Traceback.
    let mut ra = Vec::new();
    let mut rb = Vec::new();
    let (a_end, b_end) = (i, j);
    loop {
        if local {
            if layer == Layer::M && dp.m[dp.idx(i, j)] == 0 {
                break;
            }
        } else if i == 0 && j == 0 {
            break;
        }
        match layer {
            Layer::M => {
                let s = scoring.score(a[i - 1], b[j - 1]);
                let target = dp.m[dp.idx(i, j)] - s;
                ra.push(a[i - 1]);
                rb.push(b[j - 1]);
                let diag = dp.idx(i - 1, j - 1);
                i -= 1;
                j -= 1;
                // In local mode `target` is `best_prev`, which always equals
                // one of the three layers (the 0-clamp only ever produces
                // cells we stop at before reaching this point).
                layer = if dp.m[diag] == target {
                    Layer::M
                } else if dp.x[diag] == target {
                    Layer::X
                } else {
                    Layer::Y
                };
            }
            Layer::X => {
                ra.push(a[i - 1]);
                rb.push(b'-');
                let up = dp.idx(i - 1, j);
                let v = dp.x[dp.idx(i, j)];
                i -= 1;
                layer = if v == dp.m[up].saturating_add(scoring.gap_open()) {
                    Layer::M
                } else {
                    Layer::X
                };
            }
            Layer::Y => {
                ra.push(b'-');
                rb.push(b[j - 1]);
                let left = dp.idx(i, j - 1);
                let v = dp.y[dp.idx(i, j)];
                j -= 1;
                layer = if v == dp.m[left].saturating_add(scoring.gap_open()) {
                    Layer::M
                } else {
                    Layer::Y
                };
            }
        }
    }
    ra.reverse();
    rb.reverse();

    Aligned { score, aligned_a: ra, aligned_b: rb, a_range: (i, a_end), b_range: (j, b_end) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::score::NucleotideScore;

    fn s() -> NucleotideScore {
        NucleotideScore::default()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let aln = global_align(b"ATGGCC", b"ATGGCC", &s());
        assert_eq!(aln.score, 12);
        assert_eq!(aln.aligned_a, b"ATGGCC");
        assert_eq!(aln.aligned_b, b"ATGGCC");
        assert!((aln.identity() - 1.0).abs() < 1e-12);
        assert_eq!(aln.a_range, (0, 6));
    }

    #[test]
    fn single_substitution() {
        let aln = global_align(b"ATGGCC", b"ATGACC", &s());
        assert_eq!(aln.score, 5 * 2 - 3);
        assert_eq!(aln.matches(), 5);
        assert_eq!(aln.len(), 6);
    }

    #[test]
    fn global_introduces_gap() {
        // Deleting one symbol: ATGGCC vs ATGCC.
        let aln = global_align(b"ATGGCC", b"ATGCC", &s());
        assert_eq!(aln.score, 5 * 2 - 5); // 5 matches, one 1-symbol gap
        assert_eq!(aln.gap_count(), 1);
        assert_eq!(aln.aligned_a.len(), 6);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // One 2-gap (-5 + -2 = -7) beats two 1-gaps (-10).
        let aln = global_align(b"AAAATTTTCCCC", b"AAAACCCC", &s());
        assert_eq!(aln.score, 8 * 2 - 5 - 3 * 2);
        // All gap columns must be contiguous.
        let gaps: Vec<usize> =
            aln.aligned_b.iter().enumerate().filter(|(_, &c)| c == b'-').map(|(i, _)| i).collect();
        assert_eq!(gaps.len(), 4);
        assert!(gaps.windows(2).all(|w| w[1] == w[0] + 1), "gap not contiguous: {gaps:?}");
    }

    #[test]
    fn empty_inputs() {
        let aln = global_align(b"", b"", &s());
        assert_eq!(aln.score, 0);
        assert!(aln.is_empty());
        let aln = global_align(b"AAA", b"", &s());
        assert_eq!(aln.score, -5 + -2 * 2);
        assert_eq!(aln.aligned_b, b"---");
    }

    #[test]
    fn local_finds_embedded_match() {
        let aln = local_align(b"TTTTATGGCCTTTT", b"GGGGATGGCCGGGG", &s());
        assert_eq!(aln.score, 12); // ATGGCC
        assert_eq!(aln.aligned_a, b"ATGGCC");
        assert_eq!(aln.a_range, (4, 10));
        assert_eq!(aln.b_range, (4, 10));
    }

    #[test]
    fn local_of_unrelated_is_short_or_empty() {
        let aln = local_align(b"AAAA", b"GGGG", &s());
        assert_eq!(aln.score, 0);
        assert!(aln.is_empty());
    }

    #[test]
    fn local_score_ge_global() {
        let a = b"ATGCCGTAAGC";
        let b = b"TTGCCGTAAGA";
        let g = global_align(a, b, &s());
        let l = local_align(a, b, &s());
        assert!(l.score >= g.score);
    }

    #[test]
    fn alignment_reconstruction_consistent() {
        // Stripping gaps from the aligned rows must recover the aligned
        // ranges of the inputs.
        let a = b"ATGGCCTTTAAG";
        let b = b"ATGCCCTTAAG";
        for aln in [global_align(a, b, &s()), local_align(a, b, &s())] {
            let stripped_a: Vec<u8> =
                aln.aligned_a.iter().copied().filter(|&c| c != b'-').collect();
            let stripped_b: Vec<u8> =
                aln.aligned_b.iter().copied().filter(|&c| c != b'-').collect();
            assert_eq!(&stripped_a[..], &a[aln.a_range.0..aln.a_range.1]);
            assert_eq!(&stripped_b[..], &b[aln.b_range.0..aln.b_range.1]);
        }
    }

    #[test]
    fn display_renders_three_lines() {
        let aln = global_align(b"ATG", b"ATG", &s());
        let text = aln.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("|||"));
    }
}
