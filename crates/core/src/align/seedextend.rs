//! BLAST-style seed-and-extend heuristic alignment.
//!
//! The mediator systems the paper surveys all wrap BLAST for similarity
//! search; our substitution (DESIGN.md) is this self-contained
//! implementation: exact k-mer seeds between query and subject, ungapped
//! X-drop extension along each seeded diagonal, and high-scoring segment
//! pairs (HSPs) as the result.

use crate::align::score::{NucleotideScore, Scoring};
use crate::seq::ops::kmers;
use crate::seq::DnaSeq;
use std::collections::HashMap;

/// A high-scoring segment pair: an ungapped local match between a query
/// region and a subject region on one diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hsp {
    /// Query range `[a_start, a_end)`.
    pub a_start: usize,
    pub a_end: usize,
    /// Subject range `[b_start, b_end)`.
    pub b_start: usize,
    pub b_end: usize,
    /// Ungapped alignment score.
    pub score: i32,
}

impl Hsp {
    /// Length of the matched segment.
    pub fn len(&self) -> usize {
        self.a_end - self.a_start
    }

    /// HSPs always have at least seed length.
    pub fn is_empty(&self) -> bool {
        self.a_end == self.a_start
    }

    /// The diagonal (`b_start - a_start`) the HSP lies on.
    pub fn diagonal(&self) -> isize {
        self.b_start as isize - self.a_start as isize
    }
}

/// Find HSPs between `query` and `subject`.
///
/// * `k` — seed length (word size); BLASTN's default is 11, short
///   sequences want 6–8.
/// * `x_drop` — how far the running score may fall below its maximum
///   before extension stops.
///
/// Returns HSPs sorted by decreasing score. Overlapping seeds on a
/// diagonal that fall inside an already-extended HSP are skipped, so the
/// result contains each distinct segment once.
pub fn seed_and_extend(
    query: &DnaSeq,
    subject: &DnaSeq,
    k: usize,
    scoring: &NucleotideScore,
    x_drop: i32,
) -> Vec<Hsp> {
    let qa = query.to_text().into_bytes();
    let sb = subject.to_text().into_bytes();

    // Index the query's k-mers.
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    for (pos, km) in kmers(query, k) {
        index.entry(km).or_default().push(pos);
    }

    // Per-diagonal high-water mark: skip seeds already covered by an HSP.
    let mut covered: HashMap<isize, usize> = HashMap::new();
    let mut hsps = Vec::new();

    for (spos, km) in kmers(subject, k) {
        let Some(qpositions) = index.get(&km) else { continue };
        for &qpos in qpositions {
            let diag = spos as isize - qpos as isize;
            if covered.get(&diag).is_some_and(|&end| qpos < end) {
                continue;
            }
            let hsp = extend(&qa, &sb, qpos, spos, k, scoring, x_drop);
            covered.insert(diag, hsp.a_end);
            hsps.push(hsp);
        }
    }
    hsps.sort_by(|x, y| y.score.cmp(&x.score).then(x.a_start.cmp(&y.a_start)));
    hsps
}

/// Best HSP score between two sequences, or 0 when no seed matches — a
/// cheap similarity statistic for ranking.
pub fn best_hsp_score(
    query: &DnaSeq,
    subject: &DnaSeq,
    k: usize,
    scoring: &NucleotideScore,
    x_drop: i32,
) -> i32 {
    seed_and_extend(query, subject, k, scoring, x_drop).first().map_or(0, |h| h.score)
}

fn extend(
    qa: &[u8],
    sb: &[u8],
    qpos: usize,
    spos: usize,
    k: usize,
    scoring: &impl Scoring,
    x_drop: i32,
) -> Hsp {
    // Seed score.
    let mut score: i32 = (0..k).map(|i| scoring.score(qa[qpos + i], sb[spos + i])).sum();

    // Extend right.
    let (mut qe, mut se) = (qpos + k, spos + k);
    let mut running = score;
    let mut best = score;
    let (mut best_qe, mut best_se) = (qe, se);
    while qe < qa.len() && se < sb.len() {
        running += scoring.score(qa[qe], sb[se]);
        qe += 1;
        se += 1;
        if running > best {
            best = running;
            best_qe = qe;
            best_se = se;
        } else if best - running > x_drop {
            break;
        }
    }
    score = best;

    // Extend left.
    let (mut qs, mut ss) = (qpos, spos);
    let mut running = score;
    let mut best = score;
    let (mut best_qs, mut best_ss) = (qs, ss);
    while qs > 0 && ss > 0 {
        running += scoring.score(qa[qs - 1], sb[ss - 1]);
        qs -= 1;
        ss -= 1;
        if running > best {
            best = running;
            best_qs = qs;
            best_ss = ss;
        } else if best - running > x_drop {
            break;
        }
    }

    Hsp { a_start: best_qs, a_end: best_qe, b_start: best_ss, b_end: best_se, score: best }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    fn scoring() -> NucleotideScore {
        NucleotideScore::default()
    }

    #[test]
    fn identical_sequences_single_full_hsp() {
        let a = dna("ATGGCCTTTAAGCCGG");
        let hsps = seed_and_extend(&a, &a, 8, &scoring(), 20);
        assert!(!hsps.is_empty());
        let top = hsps[0];
        assert_eq!((top.a_start, top.a_end), (0, 16));
        assert_eq!((top.b_start, top.b_end), (0, 16));
        assert_eq!(top.score, 32);
        assert_eq!(top.diagonal(), 0);
    }

    #[test]
    fn embedded_segment_found() {
        let query = dna("ATGGCCTTTAAG");
        let subject = dna("CCCCCCCCATGGCCTTTAAGCCCCCCCC");
        let hsps = seed_and_extend(&query, &subject, 8, &scoring(), 10);
        let top = hsps[0];
        assert_eq!((top.a_start, top.a_end), (0, 12));
        assert_eq!(top.b_start, 8);
        assert_eq!(top.score, 24);
    }

    #[test]
    fn no_shared_kmer_no_hsp() {
        let a = dna("ATATATATATATATAT");
        let b = dna("GCGCGCGCGCGCGCGC");
        assert!(seed_and_extend(&a, &b, 8, &scoring(), 10).is_empty());
        assert_eq!(best_hsp_score(&a, &b, 8, &scoring(), 10), 0);
    }

    #[test]
    fn extension_crosses_single_mismatch() {
        //             0123456789012345678901
        let a = dna("ATGGCCTTTAAGACCGGTTAGC");
        let mut btext = a.to_text();
        // Introduce one substitution in the middle.
        btext.replace_range(11..12, "T");
        let b = dna(&btext);
        let hsps = seed_and_extend(&a, &b, 8, &scoring(), 20);
        let top = hsps[0];
        // The extension should span the full sequence despite the mismatch.
        assert_eq!((top.a_start, top.a_end), (0, 22));
        assert_eq!(top.score, 21 * 2 - 3);
    }

    #[test]
    fn covered_diagonals_not_duplicated() {
        let a = dna("ATGGCCTTTAAGATGGCCTTTAAG"); // internal repeat
        let hsps = seed_and_extend(&a, &a, 8, &scoring(), 10);
        // Each (diagonal, segment) appears once; the main diagonal HSP
        // covers the whole sequence.
        let diag0: Vec<_> = hsps.iter().filter(|h| h.diagonal() == 0).collect();
        assert_eq!(diag0.len(), 1);
        assert_eq!(diag0[0].len(), 24);
    }
}
