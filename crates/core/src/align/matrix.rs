//! The BLOSUM62 substitution matrix for protein alignment.

use crate::align::score::Scoring;

/// Residue order of the BLOSUM62 table below.
const ORDER: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// The standard BLOSUM62 20×20 substitution scores, rows/columns in
/// [`ORDER`] order.
#[rustfmt::skip]
const BLOSUM62: [[i8; 20]; 20] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0], // A
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3], // R
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3], // N
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3], // D
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1], // C
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2], // Q
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2], // E
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3], // G
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3], // H
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3], // I
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1], // L
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2], // K
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1], // M
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1], // F
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2], // P
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2], // S
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0], // T
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3], // W
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1], // Y
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4], // V
];

/// BLOSUM62 scoring with affine gaps (default: −11 open, −1 extend, the
/// classic BLASTP parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blosum62 {
    pub gap_open: i32,
    pub gap_extend: i32,
}

impl Default for Blosum62 {
    fn default() -> Self {
        Blosum62 { gap_open: -11, gap_extend: -1 }
    }
}

fn residue_index(c: u8) -> Option<usize> {
    ORDER.iter().position(|&r| r == c.to_ascii_uppercase())
}

impl Scoring for Blosum62 {
    fn score(&self, a: u8, b: u8) -> i32 {
        match (residue_index(a), residue_index(b)) {
            (Some(i), Some(j)) => BLOSUM62[i][j] as i32,
            // Stop aligned with stop is a weak match; any residue against
            // stop or against X takes the standard penalties.
            _ => {
                if a == b'*' && b == b'*' {
                    1
                } else if a == b'*' || b == b'*' {
                    -4
                } else {
                    -1 // X against anything
                }
            }
        }
    }

    fn gap_open(&self) -> i32 {
        self.gap_open
    }

    fn gap_extend(&self) -> i32 {
        self.gap_extend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matrix_is_symmetric() {
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(BLOSUM62[i][j], BLOSUM62[j][i], "asymmetry at {i},{j}");
            }
        }
    }

    #[test]
    fn known_entries() {
        let m = Blosum62::default();
        assert_eq!(m.score(b'W', b'W'), 11);
        assert_eq!(m.score(b'A', b'A'), 4);
        assert_eq!(m.score(b'A', b'R'), -1);
        assert_eq!(m.score(b'I', b'V'), 3);
        assert_eq!(m.score(b'i', b'v'), 3, "case-insensitive");
    }

    #[test]
    fn special_symbols() {
        let m = Blosum62::default();
        assert_eq!(m.score(b'X', b'A'), -1);
        assert_eq!(m.score(b'*', b'*'), 1);
        assert_eq!(m.score(b'A', b'*'), -4);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn diagonal_dominates_row() {
        // Every residue scores itself at least as well as any substitution.
        for i in 0..20 {
            for j in 0..20 {
                assert!(BLOSUM62[i][i] >= BLOSUM62[i][j]);
            }
        }
    }
}
