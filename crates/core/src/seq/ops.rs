//! Sequence-level analysis operations shared by the algebra.
//!
//! These are the "comprehensive collection of genomic operations" the paper
//! demands beyond the central-dogma trio: open-reading-frame discovery,
//! k-mer decomposition, composition profiles, and simple physical estimates.

use crate::alphabet::{DnaBase, Strand};
use crate::codon::GeneticCode;
use crate::error::Result;
use crate::seq::DnaSeq;

/// An open reading frame located on a DNA sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orf {
    /// Start offset of the start codon on the *forward* coordinate system.
    pub start: usize,
    /// Exclusive end offset (just past the stop codon) on forward coordinates.
    pub end: usize,
    /// Which strand the ORF reads along.
    pub strand: Strand,
    /// Reading frame 0–2 relative to the strand's 5' end.
    pub frame: u8,
}

impl Orf {
    /// Length of the ORF in nucleotides (including the stop codon).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a degenerate empty ORF (never produced by [`find_orfs`]).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Find every open reading frame of at least `min_len` nucleotides
/// (start codon through stop codon inclusive) on both strands.
///
/// Only strict (unambiguous) sequences are scanned; ambiguity codes
/// terminate any ORF currently being read, which is the conservative
/// behaviour for noisy repository data.
pub fn find_orfs(seq: &DnaSeq, code: &GeneticCode, min_len: usize) -> Vec<Orf> {
    let mut orfs = Vec::new();
    scan_strand(seq, code, min_len, Strand::Forward, &mut orfs);
    let rc = seq.reverse_complement();
    scan_strand(&rc, code, min_len, Strand::Reverse, &mut orfs);
    // Map reverse-strand coordinates back onto forward coordinates.
    let n = seq.len();
    for orf in orfs.iter_mut().filter(|o| o.strand == Strand::Reverse) {
        let (s, e) = (orf.start, orf.end);
        orf.start = n - e;
        orf.end = n - s;
    }
    orfs.sort_by_key(|o| (o.start, o.end));
    orfs
}

fn scan_strand(
    seq: &DnaSeq,
    code: &GeneticCode,
    min_len: usize,
    strand: Strand,
    out: &mut Vec<Orf>,
) {
    let bases: Vec<Option<DnaBase>> = seq.iter().map(|s| s.as_base()).collect();
    let n = bases.len();
    for frame in 0..3usize {
        let mut i = frame;
        let mut open: Option<usize> = None;
        while i + 3 <= n {
            let codon = match (bases[i], bases[i + 1], bases[i + 2]) {
                (Some(a), Some(b), Some(c)) => Some([a, b, c]),
                _ => None,
            };
            match codon {
                None => open = None, // ambiguity: abandon the current ORF
                Some(c) => {
                    if open.is_none() && code.is_start_dna(c) {
                        open = Some(i);
                    } else if let Some(start) = open {
                        if code.is_stop_dna(c) {
                            let end = i + 3;
                            if end - start >= min_len {
                                out.push(Orf { start, end, strand, frame: frame as u8 });
                            }
                            open = None;
                        }
                    }
                }
            }
            i += 3;
        }
    }
}

/// Iterate over the `k`-mers of a strict sequence as packed 2-bit integers.
///
/// Returns `(position, packed_kmer)` pairs; windows containing ambiguity
/// codes are skipped. `k` must be 1–31 so the packed value fits in a `u64`.
pub fn kmers(seq: &DnaSeq, k: usize) -> Vec<(usize, u64)> {
    assert!((1..=31).contains(&k), "k must be in 1..=31");
    let n = seq.len();
    if n < k {
        return Vec::new();
    }
    let mask: u64 = if k == 32 { u64::MAX } else { (1u64 << (2 * k)) - 1 };
    let mut out = Vec::new();
    let mut packed: u64 = 0;
    let mut valid = 0usize; // number of consecutive unambiguous bases ending here
    for i in 0..n {
        match seq.get(i).and_then(|s| s.as_base()) {
            Some(b) => {
                packed = ((packed << 2) | b.code() as u64) & mask;
                valid += 1;
                if valid >= k {
                    out.push((i + 1 - k, packed));
                }
            }
            None => {
                valid = 0;
                packed = 0;
            }
        }
    }
    out
}

/// Pack a strict k-mer (given as bases) into its 2-bit integer code.
pub fn pack_kmer(bases: &[DnaBase]) -> u64 {
    assert!(bases.len() <= 31);
    bases.iter().fold(0u64, |acc, b| (acc << 2) | b.code() as u64)
}

/// Unpack a 2-bit k-mer code back into bases.
pub fn unpack_kmer(packed: u64, k: usize) -> Vec<DnaBase> {
    (0..k).rev().map(|i| DnaBase::from_code(((packed >> (2 * i)) & 0b11) as u8)).collect()
}

/// GC fraction in sliding windows of `window` nucleotides stepped by `step`.
pub fn gc_profile(seq: &DnaSeq, window: usize, step: usize) -> Result<Vec<(usize, f64)>> {
    assert!(window > 0 && step > 0, "window and step must be positive");
    let mut out = Vec::new();
    let mut start = 0;
    while start + window <= seq.len() {
        let w = seq.subseq(start, start + window)?;
        out.push((start, w.gc_content()));
        start += step;
    }
    Ok(out)
}

/// Length of the longest open reading frame (nucleotides, stop included),
/// or 0 when no complete ORF exists.
pub fn longest_orf(seq: &DnaSeq, code: &GeneticCode) -> usize {
    find_orfs(seq, code, 0).iter().map(Orf::len).max().unwrap_or(0)
}

/// Wallace-rule melting temperature estimate: `2(A+T) + 4(G+C)` °C.
///
/// Only meaningful for short oligos (≲ 14 nt), which is exactly the primer
/// use-case biologists ask for; ambiguity codes contribute nothing.
pub fn melting_temperature(seq: &DnaSeq) -> f64 {
    let [a, c, g, t] = seq.base_counts();
    2.0 * (a + t) as f64 + 4.0 * (g + c) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &str) -> DnaSeq {
        DnaSeq::from_text(s).unwrap()
    }

    #[test]
    fn finds_simple_forward_orf() {
        // ATG AAA TAA = start, Lys, stop; frame 0.
        let seq = dna("ATGAAATAA");
        let orfs = find_orfs(&seq, &GeneticCode::standard(), 6);
        assert_eq!(orfs.len(), 1);
        assert_eq!(orfs[0], Orf { start: 0, end: 9, strand: Strand::Forward, frame: 0 });
        assert_eq!(orfs[0].len(), 9);
    }

    #[test]
    fn finds_offset_frame_orf() {
        let seq = dna("CCATGAAATAG"); // ORF starts at 2, frame 2
        let orfs = find_orfs(&seq, &GeneticCode::standard(), 6);
        let fwd: Vec<_> = orfs.iter().filter(|o| o.strand == Strand::Forward).collect();
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].start, 2);
        assert_eq!(fwd[0].end, 11);
        assert_eq!(fwd[0].frame, 2);
    }

    #[test]
    fn finds_reverse_strand_orf() {
        // Reverse complement of ATGAAATAA is TTATTTCAT; embed it.
        let seq = dna("TTATTTCAT");
        let orfs = find_orfs(&seq, &GeneticCode::standard(), 6);
        let rev: Vec<_> = orfs.iter().filter(|o| o.strand == Strand::Reverse).collect();
        assert_eq!(rev.len(), 1);
        assert_eq!((rev[0].start, rev[0].end), (0, 9));
    }

    #[test]
    fn min_len_filters() {
        let seq = dna("ATGAAATAA");
        assert!(find_orfs(&seq, &GeneticCode::standard(), 10).is_empty());
    }

    #[test]
    fn ambiguity_breaks_orf() {
        let seq = dna("ATGANATAA");
        assert!(find_orfs(&seq, &GeneticCode::standard(), 3).is_empty());
    }

    #[test]
    fn kmer_enumeration() {
        let seq = dna("ACGT");
        let ks = kmers(&seq, 2);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0], (0, pack_kmer(&[DnaBase::A, DnaBase::C])));
        assert_eq!(ks[2], (2, pack_kmer(&[DnaBase::G, DnaBase::T])));
    }

    #[test]
    fn kmers_skip_ambiguity() {
        let seq = dna("ACNGT");
        let ks = kmers(&seq, 2);
        assert_eq!(ks.len(), 2); // AC at 0 and GT at 3
        assert_eq!(ks[0].0, 0);
        assert_eq!(ks[1].0, 3);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bases = vec![DnaBase::G, DnaBase::A, DnaBase::T, DnaBase::C];
        assert_eq!(unpack_kmer(pack_kmer(&bases), 4), bases);
    }

    #[test]
    fn gc_profile_windows() {
        let seq = dna("GGGGAAAA");
        let profile = gc_profile(&seq, 4, 4).unwrap();
        assert_eq!(profile, vec![(0, 1.0), (4, 0.0)]);
    }

    #[test]
    fn longest_orf_selection() {
        let code = GeneticCode::standard();
        // Two ORFs: 9 nt in frame 0, 15 nt in frame 1.
        let seq = dna("ATGAAATAACATGAAAAAATAGG");
        let best = longest_orf(&seq, &code);
        assert!(best >= 9, "{best}");
        assert_eq!(longest_orf(&dna("CCCCCC"), &code), 0);
    }

    #[test]
    fn wallace_rule() {
        let seq = dna("ATGC");
        assert!((melting_temperature(&seq) - (2.0 * 2.0 + 4.0 * 2.0)).abs() < 1e-12);
    }
}
