//! The `rna` genomic data type: an unambiguous RNA sequence.

use crate::alphabet::RnaBase;
use crate::error::{GenAlgError, Result};
use crate::seq::dna::DnaSeq;
use crate::seq::packed::PackedVec;
use std::fmt;

/// An RNA sequence over `{A, C, G, U}`, packed at 2 bits per base.
///
/// RNA values arise *inside* the algebra — as primary transcripts and
/// messenger RNAs produced by `transcribe` and `splice` — rather than being
/// ingested raw, so unlike [`DnaSeq`] they do not carry ambiguity codes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RnaSeq {
    codes: PackedVec,
}

impl RnaSeq {
    /// The empty sequence.
    pub fn empty() -> Self {
        RnaSeq { codes: PackedVec::new(2) }
    }

    /// Parse from text over `ACGU` (case-insensitive).
    pub fn from_text(text: &str) -> Result<Self> {
        let mut codes = PackedVec::with_capacity(2, text.len());
        for c in text.chars() {
            codes.push(RnaBase::from_char(c)?.code());
        }
        Ok(RnaSeq { codes })
    }

    /// Build from bases.
    pub fn from_bases(bases: &[RnaBase]) -> Self {
        Self::from_bases_iter(bases.iter().copied())
    }

    /// Build from an iterator of bases.
    pub fn from_bases_iter(bases: impl IntoIterator<Item = RnaBase>) -> Self {
        let mut codes = PackedVec::new(2);
        for b in bases {
            codes.push(b.code());
        }
        RnaSeq { codes }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the sequence has no bases.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Base at position `i`.
    pub fn get(&self, i: usize) -> Option<RnaBase> {
        self.codes.get(i).map(RnaBase::from_code)
    }

    /// Append a base.
    pub fn push(&mut self, b: RnaBase) {
        self.codes.push(b.code());
    }

    /// Iterate over bases.
    pub fn iter(&self) -> impl Iterator<Item = RnaBase> + '_ {
        self.codes.iter().map(RnaBase::from_code)
    }

    /// Render as upper-case text.
    pub fn to_text(&self) -> String {
        self.iter().map(RnaBase::to_char).collect()
    }

    /// Extract the subsequence `[start, end)`.
    pub fn subseq(&self, start: usize, end: usize) -> Result<RnaSeq> {
        Ok(RnaSeq { codes: self.codes.slice(start, end)? })
    }

    /// Concatenate `other` onto a copy of `self`.
    pub fn concat(&self, other: &RnaSeq) -> RnaSeq {
        let mut out = self.clone();
        out.codes.extend_from(&other.codes);
        out
    }

    /// Reverse complement (A↔U, C↔G, reversed).
    pub fn reverse_complement(&self) -> RnaSeq {
        let mut codes = PackedVec::with_capacity(2, self.len());
        for i in (0..self.len()).rev() {
            let b = RnaBase::from_code(self.codes.get(i).expect("index < len"));
            codes.push(b.complement().code());
        }
        RnaSeq { codes }
    }

    /// Reverse transcription back to DNA (U→T).
    pub fn to_dna(&self) -> DnaSeq {
        DnaSeq::from_bases(&self.iter().map(RnaBase::to_dna).collect::<Vec<_>>())
    }

    /// Fraction of G/C bases.
    pub fn gc_content(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let gc = self.iter().filter(|b| matches!(b, RnaBase::G | RnaBase::C)).count();
        gc as f64 / self.len() as f64
    }

    /// First occurrence of `pattern` (exact matching).
    pub fn find(&self, pattern: &RnaSeq) -> Option<usize> {
        let n = self.len();
        let m = pattern.len();
        if m == 0 {
            return Some(0);
        }
        if m > n {
            return None;
        }
        let pat: Vec<RnaBase> = pattern.iter().collect();
        'outer: for start in 0..=(n - m) {
            for (j, p) in pat.iter().enumerate() {
                if self.get(start + j) != Some(*p) {
                    continue 'outer;
                }
            }
            return Some(start);
        }
        None
    }

    /// Raw packed payload (for compact serialization).
    pub(crate) fn raw(&self) -> (&[u8], usize) {
        (self.codes.raw_bytes(), self.codes.len())
    }

    /// Rebuild from a raw packed payload.
    pub(crate) fn from_raw(len: usize, data: Vec<u8>) -> Result<Self> {
        Ok(RnaSeq { codes: PackedVec::from_raw(2, len, data)? })
    }

    /// Heap bytes used by the packed payload.
    pub fn payload_bytes(&self) -> usize {
        self.codes.payload_bytes()
    }
}

impl fmt::Display for RnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for RnaSeq {
    type Err = GenAlgError;

    fn from_str(s: &str) -> Result<Self> {
        RnaSeq::from_text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let s = RnaSeq::from_text("AUGGCC").unwrap();
        assert_eq!(s.to_text(), "AUGGCC");
        assert!(RnaSeq::from_text("ATG").is_err());
    }

    #[test]
    fn dna_roundtrip() {
        let s = RnaSeq::from_text("AUGC").unwrap();
        assert_eq!(s.to_dna().to_text(), "ATGC");
        assert_eq!(s.to_dna().to_rna().unwrap(), s);
    }

    #[test]
    fn reverse_complement() {
        let s = RnaSeq::from_text("AUGC").unwrap();
        assert_eq!(s.reverse_complement().to_text(), "GCAU");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn subseq_concat_find() {
        let s = RnaSeq::from_text("AUGGCCUAA").unwrap();
        assert_eq!(s.subseq(3, 6).unwrap().to_text(), "GCC");
        assert_eq!(s.subseq(0, 3).unwrap().concat(&s.subseq(6, 9).unwrap()).to_text(), "AUGUAA");
        assert_eq!(s.find(&RnaSeq::from_text("GCC").unwrap()), Some(3));
        assert_eq!(s.find(&RnaSeq::from_text("GGG").unwrap()), None);
        assert_eq!(s.find(&RnaSeq::empty()), Some(0));
    }

    #[test]
    fn gc() {
        let s = RnaSeq::from_text("GGCC").unwrap();
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        assert_eq!(RnaSeq::empty().gc_content(), 0.0);
    }

    #[test]
    fn two_bit_packing() {
        let s = RnaSeq::from_text(&"A".repeat(1000)).unwrap();
        assert_eq!(s.payload_bytes(), 250);
    }
}
