//! The `protein sequence` genomic data type: a chain of amino-acid residues.

use crate::alphabet::AminoAcid;
use crate::error::{GenAlgError, Result};
use std::fmt;

/// An amino-acid sequence, one byte per residue.
///
/// Residues are stored as their 5-bit codes in a plain byte vector: protein
/// sequences are short relative to genomic DNA, so byte addressing beats the
/// packing overhead.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProteinSeq {
    residues: Vec<u8>,
}

impl ProteinSeq {
    /// The empty sequence.
    pub fn empty() -> Self {
        ProteinSeq { residues: Vec::new() }
    }

    /// Parse from one-letter codes (case-insensitive, `*` = stop, `X` = unknown).
    pub fn from_text(text: &str) -> Result<Self> {
        let mut residues = Vec::with_capacity(text.len());
        for c in text.chars() {
            residues.push(AminoAcid::from_char(c)?.code());
        }
        Ok(ProteinSeq { residues })
    }

    /// Build from residues.
    pub fn from_residues(residues: &[AminoAcid]) -> Self {
        ProteinSeq { residues: residues.iter().map(|a| a.code()).collect() }
    }

    /// Build from an iterator of residues.
    pub fn from_residues_iter(residues: impl IntoIterator<Item = AminoAcid>) -> Self {
        ProteinSeq { residues: residues.into_iter().map(|a| a.code()).collect() }
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True if there are no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Residue at position `i`.
    pub fn get(&self, i: usize) -> Option<AminoAcid> {
        self.residues.get(i).map(|&c| AminoAcid::from_code(c))
    }

    /// Append a residue.
    pub fn push(&mut self, aa: AminoAcid) {
        self.residues.push(aa.code());
    }

    /// Iterate over residues.
    pub fn iter(&self) -> impl Iterator<Item = AminoAcid> + '_ {
        self.residues.iter().map(|&c| AminoAcid::from_code(c))
    }

    /// Render as one-letter codes.
    pub fn to_text(&self) -> String {
        self.iter().map(AminoAcid::to_char).collect()
    }

    /// Extract the subsequence `[start, end)`.
    pub fn subseq(&self, start: usize, end: usize) -> Result<ProteinSeq> {
        if start > end || end > self.len() {
            return Err(GenAlgError::OutOfBounds { index: end, len: self.len() });
        }
        Ok(ProteinSeq { residues: self.residues[start..end].to_vec() })
    }

    /// Concatenate `other` onto a copy of `self`.
    pub fn concat(&self, other: &ProteinSeq) -> ProteinSeq {
        let mut out = self.clone();
        out.residues.extend_from_slice(&other.residues);
        out
    }

    /// Sum of residue monoisotopic masses plus one water (peptide mass).
    pub fn molecular_weight(&self) -> f64 {
        const WATER: f64 = 18.010_565;
        let residue_sum: f64 = self.iter().map(|a| a.monoisotopic_mass()).sum();
        if self.is_empty() {
            0.0
        } else {
            residue_sum + WATER
        }
    }

    /// Mean Kyte–Doolittle hydropathy (GRAVY score).
    pub fn gravy(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.iter().map(|a| a.hydropathy()).sum::<f64>() / self.len() as f64
    }

    /// Net charge at a given pH (Henderson–Hasselbalch over the ionizable
    /// groups, standard pKa values).
    pub fn charge_at(&self, ph: f64) -> f64 {
        use crate::alphabet::AminoAcid as AA;
        if self.is_empty() {
            return 0.0;
        }
        let positive = |pka: f64| 1.0 / (1.0 + 10f64.powf(ph - pka));
        let negative = |pka: f64| -1.0 / (1.0 + 10f64.powf(pka - ph));
        // Termini.
        let mut charge = positive(8.2) + negative(3.65);
        for aa in self.iter() {
            charge += match aa {
                AA::Lys => positive(10.54),
                AA::Arg => positive(12.48),
                AA::His => positive(6.04),
                AA::Asp => negative(3.9),
                AA::Glu => negative(4.07),
                AA::Cys => negative(8.18),
                AA::Tyr => negative(10.46),
                _ => 0.0,
            };
        }
        charge
    }

    /// Isoelectric point: the pH at which the net charge is zero, found by
    /// bisection over [0, 14]. Returns 7.0 for the empty sequence.
    pub fn isoelectric_point(&self) -> f64 {
        if self.is_empty() {
            return 7.0;
        }
        let (mut lo, mut hi) = (0.0f64, 14.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.charge_at(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// First occurrence of `pattern` (exact match; `X` matches only `X`).
    pub fn find(&self, pattern: &ProteinSeq) -> Option<usize> {
        if pattern.is_empty() {
            return Some(0);
        }
        self.residues.windows(pattern.len()).position(|w| w == pattern.residues.as_slice())
    }

    /// True if `pattern` occurs in this sequence.
    pub fn contains(&self, pattern: &ProteinSeq) -> bool {
        self.find(pattern).is_some()
    }

    /// Truncate at (and excluding) the first stop codon marker, if any.
    pub fn until_stop(&self) -> ProteinSeq {
        match self.residues.iter().position(|&c| c == AminoAcid::Stop.code()) {
            Some(i) => ProteinSeq { residues: self.residues[..i].to_vec() },
            None => self.clone(),
        }
    }

    /// Raw residue codes (for compact serialization).
    pub(crate) fn raw(&self) -> &[u8] {
        &self.residues
    }

    /// Rebuild from raw residue codes.
    pub(crate) fn from_raw(data: Vec<u8>) -> Self {
        ProteinSeq { residues: data }
    }
}

impl fmt::Display for ProteinSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl std::str::FromStr for ProteinSeq {
    type Err = GenAlgError;

    fn from_str(s: &str) -> Result<Self> {
        ProteinSeq::from_text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let p = ProteinSeq::from_text("MAFK*").unwrap();
        assert_eq!(p.to_text(), "MAFK*");
        assert_eq!(p.len(), 5);
        assert!(ProteinSeq::from_text("MAJ").is_err());
    }

    #[test]
    fn subseq_concat() {
        let p = ProteinSeq::from_text("MAFKGH").unwrap();
        assert_eq!(p.subseq(1, 4).unwrap().to_text(), "AFK");
        assert!(p.subseq(4, 1).is_err());
        let q = p.subseq(0, 2).unwrap().concat(&p.subseq(4, 6).unwrap());
        assert_eq!(q.to_text(), "MAGH");
    }

    #[test]
    fn molecular_weight_glycine() {
        // Gly-Gly dipeptide: 2 * 57.02146 + water.
        let p = ProteinSeq::from_text("GG").unwrap();
        assert!((p.molecular_weight() - (2.0 * 57.02146 + 18.010565)).abs() < 1e-6);
        assert_eq!(ProteinSeq::empty().molecular_weight(), 0.0);
    }

    #[test]
    fn gravy_score() {
        let p = ProteinSeq::from_text("II").unwrap(); // Ile hydropathy 4.5
        assert!((p.gravy() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn isoelectric_point_shapes() {
        // Basic peptide: lots of lysine → high pI.
        let basic = ProteinSeq::from_text("KKKKKK").unwrap();
        assert!(basic.isoelectric_point() > 9.5, "{}", basic.isoelectric_point());
        // Acidic peptide: lots of aspartate → low pI.
        let acidic = ProteinSeq::from_text("DDDDDD").unwrap();
        assert!(acidic.isoelectric_point() < 4.5, "{}", acidic.isoelectric_point());
        // Neutral residues sit between the termini pKa values.
        let neutral = ProteinSeq::from_text("GGGGGG").unwrap();
        let pi = neutral.isoelectric_point();
        assert!(pi > 4.0 && pi < 9.0, "{pi}");
        // Charge is monotonically decreasing in pH.
        let p = ProteinSeq::from_text("MKDHERCY").unwrap();
        let mut prev = f64::INFINITY;
        for step in 0..=28 {
            let c = p.charge_at(step as f64 * 0.5);
            assert!(c <= prev + 1e-9);
            prev = c;
        }
        // At its own pI, the charge is ~zero.
        assert!(p.charge_at(p.isoelectric_point()).abs() < 1e-6);
        assert_eq!(ProteinSeq::empty().isoelectric_point(), 7.0);
        assert_eq!(ProteinSeq::empty().charge_at(7.0), 0.0);
    }

    #[test]
    fn find_and_contains() {
        let p = ProteinSeq::from_text("MAFKGH").unwrap();
        assert_eq!(p.find(&ProteinSeq::from_text("FKG").unwrap()), Some(2));
        assert!(!p.contains(&ProteinSeq::from_text("KK").unwrap()));
        assert_eq!(p.find(&ProteinSeq::empty()), Some(0));
    }

    #[test]
    fn until_stop() {
        let p = ProteinSeq::from_text("MAF*KGH").unwrap();
        assert_eq!(p.until_stop().to_text(), "MAF");
        let q = ProteinSeq::from_text("MAF").unwrap();
        assert_eq!(q.until_stop(), q);
    }
}
