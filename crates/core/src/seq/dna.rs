//! The `dna` genomic data type: an IUPAC nucleotide sequence.

use crate::alphabet::{DnaBase, IupacDna};
use crate::error::{GenAlgError, Result};
use crate::seq::packed::PackedVec;
use crate::seq::rna::RnaSeq;
use std::fmt;

/// A DNA sequence over the 15-symbol IUPAC alphabet, packed at 4 bits per
/// symbol.
///
/// `DnaSeq` is the workhorse GDT of the algebra. It deliberately admits
/// ambiguity codes because repository data is noisy (problem B10); strict
/// operations such as transcription check [`DnaSeq::is_strict`] first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnaSeq {
    codes: PackedVec,
}

impl DnaSeq {
    /// The empty sequence.
    pub fn empty() -> Self {
        DnaSeq { codes: PackedVec::new(4) }
    }

    /// Parse from text containing IUPAC characters (case-insensitive).
    pub fn from_text(text: &str) -> Result<Self> {
        let mut codes = PackedVec::with_capacity(4, text.len());
        for c in text.chars() {
            codes.push(IupacDna::from_char(c)?.mask());
        }
        Ok(DnaSeq { codes })
    }

    /// Build from unambiguous bases.
    pub fn from_bases(bases: &[DnaBase]) -> Self {
        let mut codes = PackedVec::with_capacity(4, bases.len());
        for &b in bases {
            codes.push(IupacDna::from_base(b).mask());
        }
        DnaSeq { codes }
    }

    /// Build from IUPAC symbols.
    pub fn from_symbols(symbols: &[IupacDna]) -> Self {
        let mut codes = PackedVec::with_capacity(4, symbols.len());
        for &s in symbols {
            codes.push(s.mask());
        }
        DnaSeq { codes }
    }

    /// Number of nucleotides.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the sequence has no nucleotides.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Symbol at position `i` (0-based).
    pub fn get(&self, i: usize) -> Option<IupacDna> {
        self.codes.get(i).map(IupacDna::from_mask)
    }

    /// Append one symbol.
    pub fn push(&mut self, s: IupacDna) {
        self.codes.push(s.mask());
    }

    /// Overwrite the symbol at position `i`.
    pub fn set(&mut self, i: usize, s: IupacDna) -> Result<()> {
        self.codes.set(i, s.mask())
    }

    /// Iterate over symbols.
    pub fn iter(&self) -> impl Iterator<Item = IupacDna> + '_ {
        self.codes.iter().map(IupacDna::from_mask)
    }

    /// Render as an upper-case IUPAC string.
    pub fn to_text(&self) -> String {
        self.iter().map(IupacDna::to_char).collect()
    }

    /// True if every symbol is one of the four concrete bases.
    pub fn is_strict(&self) -> bool {
        self.iter().all(IupacDna::is_unambiguous)
    }

    /// The concrete bases, if the sequence is strict.
    pub fn as_bases(&self) -> Option<Vec<DnaBase>> {
        self.iter().map(IupacDna::as_base).collect()
    }

    /// Extract the subsequence `[start, end)`.
    pub fn subseq(&self, start: usize, end: usize) -> Result<DnaSeq> {
        Ok(DnaSeq { codes: self.codes.slice(start, end)? })
    }

    /// Concatenate `other` onto a copy of `self`.
    pub fn concat(&self, other: &DnaSeq) -> DnaSeq {
        let mut out = self.clone();
        out.codes.extend_from(&other.codes);
        out
    }

    /// The sequence read back-to-front.
    pub fn reversed(&self) -> DnaSeq {
        let mut codes = PackedVec::with_capacity(4, self.len());
        for i in (0..self.len()).rev() {
            codes.push(self.codes.get(i).expect("index < len"));
        }
        DnaSeq { codes }
    }

    /// Per-symbol IUPAC complement.
    pub fn complement(&self) -> DnaSeq {
        let mut codes = PackedVec::with_capacity(4, self.len());
        for s in self.iter() {
            codes.push(s.complement().mask());
        }
        DnaSeq { codes }
    }

    /// Reverse complement — the opposite strand in 5'→3' orientation.
    pub fn reverse_complement(&self) -> DnaSeq {
        let mut codes = PackedVec::with_capacity(4, self.len());
        for i in (0..self.len()).rev() {
            let s = IupacDna::from_mask(self.codes.get(i).expect("index < len"));
            codes.push(s.complement().mask());
        }
        DnaSeq { codes }
    }

    /// Fraction of G/C among unambiguous symbols (0.0 for the empty or fully
    /// ambiguous sequence).
    pub fn gc_content(&self) -> f64 {
        let mut gc = 0usize;
        let mut total = 0usize;
        for s in self.iter() {
            if let Some(b) = s.as_base() {
                total += 1;
                if matches!(b, DnaBase::G | DnaBase::C) {
                    gc += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            gc as f64 / total as f64
        }
    }

    /// Count occurrences of each concrete base `[A, C, G, T]`; ambiguity
    /// codes are not counted.
    pub fn base_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for s in self.iter() {
            if let Some(b) = s.as_base() {
                counts[b.code() as usize] += 1;
            }
        }
        counts
    }

    /// First occurrence of `pattern` at or after `from`, using IUPAC
    /// *compatibility* matching: an `N` in either sequence matches anything,
    /// `R` matches `A`/`G`, and so on. This is the semantics of the paper's
    /// `contains(fragment, "ATTGCCATA")` predicate (§6.3).
    pub fn find_from(&self, pattern: &DnaSeq, from: usize) -> Option<usize> {
        let n = self.len();
        let m = pattern.len();
        if m == 0 {
            return (from <= n).then_some(from);
        }
        if m > n {
            return None;
        }
        let pat: Vec<IupacDna> = pattern.iter().collect();
        'outer: for start in from..=(n - m) {
            for (j, p) in pat.iter().enumerate() {
                let t = self.get(start + j).expect("start + j < n");
                if !t.compatible(*p) {
                    continue 'outer;
                }
            }
            return Some(start);
        }
        None
    }

    /// First occurrence of `pattern` (see [`DnaSeq::find_from`]).
    pub fn find(&self, pattern: &DnaSeq) -> Option<usize> {
        self.find_from(pattern, 0)
    }

    /// All (possibly overlapping) occurrence positions of `pattern`.
    pub fn find_all(&self, pattern: &DnaSeq) -> Vec<usize> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.find_from(pattern, from) {
            out.push(pos);
            from = pos + 1;
            if pattern.is_empty() {
                break;
            }
        }
        out
    }

    /// True if `pattern` occurs somewhere in this sequence.
    pub fn contains(&self, pattern: &DnaSeq) -> bool {
        self.find(pattern).is_some()
    }

    /// Transcribe a *strict* sequence to RNA (T→U). Errors on ambiguity.
    pub fn to_rna(&self) -> Result<RnaSeq> {
        let bases = self.as_bases().ok_or_else(|| {
            GenAlgError::InvalidStructure(
                "cannot transcribe a sequence containing ambiguity codes".into(),
            )
        })?;
        Ok(RnaSeq::from_bases_iter(bases.into_iter().map(DnaBase::to_rna)))
    }

    /// Number of symbols that differ between two equal-length sequences.
    pub fn hamming_distance(&self, other: &DnaSeq) -> Result<usize> {
        if self.len() != other.len() {
            return Err(GenAlgError::LengthMismatch {
                expected: format!("{}", self.len()),
                actual: other.len(),
            });
        }
        Ok(self.iter().zip(other.iter()).filter(|(a, b)| a != b).count())
    }

    /// Raw packed payload (for compact serialization).
    pub(crate) fn raw(&self) -> (&[u8], usize) {
        (self.codes.raw_bytes(), self.codes.len())
    }

    /// Rebuild from a raw packed payload.
    pub(crate) fn from_raw(len: usize, data: Vec<u8>) -> Result<Self> {
        Ok(DnaSeq { codes: PackedVec::from_raw(4, len, data)? })
    }

    /// Heap bytes used by the packed payload.
    pub fn payload_bytes(&self) -> usize {
        self.codes.payload_bytes()
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in self.iter() {
            write!(f, "{}", s.to_char())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = GenAlgError;

    fn from_str(s: &str) -> Result<Self> {
        DnaSeq::from_text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let s = DnaSeq::from_text("ACGTRYN").unwrap();
        assert_eq!(s.to_text(), "ACGTRYN");
        assert_eq!(s.len(), 7);
        assert!(!s.is_strict());
        assert!(DnaSeq::from_text("ACGU").is_err());
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(DnaSeq::from_text("acgt").unwrap().to_text(), "ACGT");
    }

    #[test]
    fn reverse_complement_known_value() {
        let s = DnaSeq::from_text("ATGC").unwrap();
        assert_eq!(s.reverse_complement().to_text(), "GCAT");
        assert_eq!(s.complement().to_text(), "TACG");
        assert_eq!(s.reversed().to_text(), "CGTA");
    }

    #[test]
    fn reverse_complement_involutive() {
        let s = DnaSeq::from_text("ATGCCGTANRYSWKM").unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn gc_content_counts_only_concrete() {
        let s = DnaSeq::from_text("GGCC").unwrap();
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        let s = DnaSeq::from_text("ATGCNN").unwrap();
        assert!((s.gc_content() - 0.5).abs() < 1e-12);
        assert_eq!(DnaSeq::empty().gc_content(), 0.0);
        assert_eq!(DnaSeq::from_text("NNN").unwrap().gc_content(), 0.0);
    }

    #[test]
    fn base_counts() {
        let s = DnaSeq::from_text("AACGTTTN").unwrap();
        assert_eq!(s.base_counts(), [2, 1, 1, 3]);
    }

    #[test]
    fn subseq_and_concat() {
        let s = DnaSeq::from_text("ATGCCGTA").unwrap();
        let sub = s.subseq(2, 5).unwrap();
        assert_eq!(sub.to_text(), "GCC");
        let joined = sub.concat(&DnaSeq::from_text("TT").unwrap());
        assert_eq!(joined.to_text(), "GCCTT");
        assert!(s.subseq(5, 2).is_err());
        assert!(s.subseq(0, 9).is_err());
    }

    #[test]
    fn find_exact() {
        let s = DnaSeq::from_text("ATTGCCATAGG").unwrap();
        let p = DnaSeq::from_text("GCCATA").unwrap();
        assert_eq!(s.find(&p), Some(3));
        assert!(s.contains(&p));
        assert_eq!(s.find(&DnaSeq::from_text("TTT").unwrap()), None);
    }

    #[test]
    fn find_respects_iupac_compatibility() {
        let s = DnaSeq::from_text("ATTGCCATA").unwrap();
        // R = A or G, so "RTT" matches "ATT" at 0.
        let p = DnaSeq::from_text("RTT").unwrap();
        assert_eq!(s.find(&p), Some(0));
        // N in the *text* matches any pattern symbol.
        let s2 = DnaSeq::from_text("ANC").unwrap();
        assert!(s2.contains(&DnaSeq::from_text("ATC").unwrap()));
    }

    #[test]
    fn find_all_overlapping() {
        let s = DnaSeq::from_text("AAAA").unwrap();
        let p = DnaSeq::from_text("AA").unwrap();
        assert_eq!(s.find_all(&p), vec![0, 1, 2]);
    }

    #[test]
    fn empty_pattern_matches_everywhere_once() {
        let s = DnaSeq::from_text("ACG").unwrap();
        assert_eq!(s.find(&DnaSeq::empty()), Some(0));
        assert_eq!(s.find_all(&DnaSeq::empty()), vec![0]);
    }

    #[test]
    fn to_rna_strict_only() {
        let s = DnaSeq::from_text("ATGC").unwrap();
        assert_eq!(s.to_rna().unwrap().to_text(), "AUGC");
        assert!(DnaSeq::from_text("ATGN").unwrap().to_rna().is_err());
    }

    #[test]
    fn hamming() {
        let a = DnaSeq::from_text("ATGC").unwrap();
        let b = DnaSeq::from_text("ATCC").unwrap();
        assert_eq!(a.hamming_distance(&b).unwrap(), 1);
        assert!(a.hamming_distance(&DnaSeq::from_text("AT").unwrap()).is_err());
    }

    #[test]
    fn packing_is_half_byte_per_symbol() {
        let s = DnaSeq::from_text(&"A".repeat(1000)).unwrap();
        assert_eq!(s.payload_bytes(), 500);
    }
}
