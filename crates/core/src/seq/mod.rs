//! Sequence genomic data types.
//!
//! Three typed sequences wrap the packed storage of [`packed::PackedVec`]:
//!
//! * [`DnaSeq`] — IUPAC nucleotide codes, 4 bits per symbol, so noisy
//!   repository data with ambiguity codes is representable losslessly.
//! * [`RnaSeq`] — unambiguous RNA bases, 2 bits per symbol.
//! * [`ProteinSeq`] — amino acids, one byte per residue.
//!
//! All three expose the sequence operations of the algebra: subsequence,
//! concatenation, reversal, complementation (nucleic acids), searching, and
//! composition statistics.

pub mod packed;
mod dna;
mod rna;
mod protein;
pub mod ops;

pub use dna::DnaSeq;
pub use rna::RnaSeq;
pub use protein::ProteinSeq;
