//! Sequence genomic data types.
//!
//! Three typed sequences wrap the packed storage of [`packed::PackedVec`]:
//!
//! * [`DnaSeq`] — IUPAC nucleotide codes, 4 bits per symbol, so noisy
//!   repository data with ambiguity codes is representable losslessly.
//! * [`RnaSeq`] — unambiguous RNA bases, 2 bits per symbol.
//! * [`ProteinSeq`] — amino acids, one byte per residue.
//!
//! All three expose the sequence operations of the algebra: subsequence,
//! concatenation, reversal, complementation (nucleic acids), searching, and
//! composition statistics.

mod dna;
pub mod ops;
pub mod packed;
mod protein;
mod rna;

pub use dna::DnaSeq;
pub use protein::ProteinSeq;
pub use rna::RnaSeq;
