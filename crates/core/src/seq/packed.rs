//! Bit-packed symbol storage.
//!
//! The paper's §4.4 requires that genomic values be kept in *compact storage
//! areas* that can move between memory and disk without packing/unpacking
//! pointer structures. [`PackedVec`] is that storage: a flat `Vec<u8>` of
//! fixed-width codes (2 or 4 bits per symbol for nucleotides), addressed by
//! symbol index. All sequence GDTs are thin typed wrappers around it.

use crate::error::{GenAlgError, Result};

/// A vector of fixed-width (1–8 bit) codes packed into bytes.
///
/// Codes are stored little-endian within each byte: symbol `i` lives in byte
/// `i / per_byte` at bit offset `(i % per_byte) * bits`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedVec {
    bits: u8,
    len: usize,
    data: Vec<u8>,
}

impl PackedVec {
    /// Create an empty vector of `bits`-wide codes.
    ///
    /// # Panics
    /// Panics if `bits` is 0, greater than 8, or does not divide 8 evenly
    /// (we only need 1, 2, 4, 8 in practice and uniform packing keeps
    /// indexing branch-free).
    pub fn new(bits: u8) -> Self {
        assert!(matches!(bits, 1 | 2 | 4 | 8), "unsupported code width: {bits}");
        PackedVec { bits, len: 0, data: Vec::new() }
    }

    /// Create an empty vector with room for `capacity` codes.
    pub fn with_capacity(bits: u8, capacity: usize) -> Self {
        let mut v = Self::new(bits);
        v.data = Vec::with_capacity(Self::bytes_for(bits, capacity));
        v
    }

    fn bytes_for(bits: u8, len: usize) -> usize {
        let per_byte = (8 / bits) as usize;
        len.div_ceil(per_byte)
    }

    fn per_byte(&self) -> usize {
        (8 / self.bits) as usize
    }

    fn mask(&self) -> u8 {
        if self.bits == 8 {
            0xFF
        } else {
            (1u8 << self.bits) - 1
        }
    }

    /// Number of codes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of each code in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Append one code. Bits above the code width are discarded.
    pub fn push(&mut self, code: u8) {
        let per = self.per_byte();
        let mask = self.mask();
        let bits = self.bits;
        let slot = self.len % per;
        if slot == 0 {
            self.data.push(0);
        }
        let byte = self.data.last_mut().expect("just ensured non-empty");
        *byte |= (code & mask) << (slot as u8 * bits);
        self.len += 1;
    }

    /// Read the code at `index`.
    pub fn get(&self, index: usize) -> Option<u8> {
        if index >= self.len {
            return None;
        }
        let per = self.per_byte();
        let byte = self.data[index / per];
        let shift = (index % per) as u8 * self.bits;
        Some((byte >> shift) & self.mask())
    }

    /// Overwrite the code at `index`.
    pub fn set(&mut self, index: usize, code: u8) -> Result<()> {
        if index >= self.len {
            return Err(GenAlgError::OutOfBounds { index, len: self.len });
        }
        let per = self.per_byte();
        let mask = self.mask();
        let shift = (index % per) as u8 * self.bits;
        let byte = &mut self.data[index / per];
        *byte &= !(mask << shift);
        *byte |= (code & mask) << shift;
        Ok(())
    }

    /// Iterate over all codes.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index < len"))
    }

    /// Extract codes `range.start..range.end` into a new vector.
    pub fn slice(&self, start: usize, end: usize) -> Result<PackedVec> {
        if start > end || end > self.len {
            return Err(GenAlgError::OutOfBounds { index: end, len: self.len });
        }
        let mut out = PackedVec::with_capacity(self.bits, end - start);
        for i in start..end {
            out.push(self.get(i).expect("bounds checked"));
        }
        Ok(out)
    }

    /// Append all codes of `other` (must have the same width).
    pub fn extend_from(&mut self, other: &PackedVec) {
        assert_eq!(self.bits, other.bits, "cannot concatenate different code widths");
        for c in other.iter() {
            self.push(c);
        }
    }

    /// The raw packed bytes (for compact serialization).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Rebuild from raw packed bytes plus an explicit length.
    pub fn from_raw(bits: u8, len: usize, data: Vec<u8>) -> Result<Self> {
        assert!(matches!(bits, 1 | 2 | 4 | 8), "unsupported code width: {bits}");
        if data.len() != Self::bytes_for(bits, len) {
            return Err(GenAlgError::Corrupt(format!(
                "packed payload of {} bytes cannot hold {len} codes of {bits} bits",
                data.len()
            )));
        }
        Ok(PackedVec { bits, len, data })
    }

    /// Bytes of heap memory used by the packed payload.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }
}

impl FromIterator<u8> for PackedVec {
    /// Collects 4-bit codes by default — callers that need a different width
    /// should use [`PackedVec::new`] and `push` explicitly.
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut v = PackedVec::new(4);
        for c in iter {
            v.push(c);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_2bit() {
        let mut v = PackedVec::new(2);
        let input: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        for &c in &input {
            v.push(c);
        }
        assert_eq!(v.len(), 100);
        let out: Vec<u8> = v.iter().collect();
        assert_eq!(out, input);
        // 100 codes * 2 bits = 25 bytes
        assert_eq!(v.payload_bytes(), 25);
    }

    #[test]
    fn push_get_roundtrip_4bit() {
        let mut v = PackedVec::new(4);
        let input: Vec<u8> = (0..99).map(|i| (i % 16) as u8).collect();
        for &c in &input {
            v.push(c);
        }
        let out: Vec<u8> = v.iter().collect();
        assert_eq!(out, input);
        assert_eq!(v.payload_bytes(), 50);
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut v = PackedVec::new(2);
        for _ in 0..10 {
            v.push(0);
        }
        v.set(3, 3).unwrap();
        v.set(9, 2).unwrap();
        assert_eq!(v.get(3), Some(3));
        assert_eq!(v.get(9), Some(2));
        assert_eq!(v.get(4), Some(0));
        assert!(v.set(10, 1).is_err());
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let v = PackedVec::new(4);
        assert_eq!(v.get(0), None);
    }

    #[test]
    fn slice_extracts_subrange() {
        let mut v = PackedVec::new(2);
        for i in 0..20u8 {
            v.push(i % 4);
        }
        let s = v.slice(5, 12).unwrap();
        let expect: Vec<u8> = (5..12u8).map(|i| i % 4).collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), expect);
        assert!(v.slice(12, 5).is_err());
        assert!(v.slice(0, 21).is_err());
        assert_eq!(v.slice(7, 7).unwrap().len(), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = PackedVec::new(4);
        a.push(1);
        a.push(2);
        let mut b = PackedVec::new(4);
        b.push(3);
        b.push(4);
        b.push(5);
        a.extend_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn raw_roundtrip() {
        let mut v = PackedVec::new(2);
        for i in 0..33u8 {
            v.push(i % 4);
        }
        let raw = v.raw_bytes().to_vec();
        let back = PackedVec::from_raw(2, 33, raw).unwrap();
        assert_eq!(back, v);
        assert!(PackedVec::from_raw(2, 33, vec![0; 3]).is_err());
    }

    #[test]
    fn push_masks_high_bits() {
        let mut v = PackedVec::new(2);
        v.push(0xFF);
        assert_eq!(v.get(0), Some(3));
    }

    #[test]
    #[should_panic(expected = "unsupported code width")]
    fn rejects_weird_widths() {
        let _ = PackedVec::new(3);
    }
}
