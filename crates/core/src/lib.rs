//! # Genomics Algebra kernel (`genalg-core`)
//!
//! This crate implements the *Genomics Algebra* proposed by Hammer and
//! Schneider (CIDR 2003): an extensible, many-sorted algebra of **genomic
//! data types** (GDTs) — nucleotides, DNA/RNA/protein sequences, genes,
//! primary transcripts, messenger RNAs, chromosomes, genomes — together with
//! a comprehensive collection of **genomic operations** (transcribe, splice,
//! translate, decode, complement, contains, resembles, …).
//!
//! The crate is deliberately self-contained ("kernel algebra" in the paper's
//! terminology): it has no database dependency and can be used as a plain
//! software library. The `genalg-adapter` crate plugs it into the Unifying
//! Database (`unidb`) as a collection of abstract data types.
//!
//! ## Layout
//!
//! * [`alphabet`] — bases, amino acids, IUPAC ambiguity codes.
//! * [`seq`] — packed sequence types ([`seq::DnaSeq`], [`seq::RnaSeq`], [`seq::ProteinSeq`]).
//! * [`codon`] — genetic code tables and codon-level translation.
//! * [`dogma`] — the central-dogma operations: transcribe, splice, translate.
//! * [`gdt`] — structured genomic data types (gene, transcript, chromosome, genome).
//! * [`uncertainty`] — first-class uncertainty ([`uncertainty::Uncertain`], [`uncertainty::Alternatives`]).
//! * [`algebra`] — the many-sorted signature, terms, and the extensible
//!   operation registry that evaluates them.
//! * [`align`] — global/local/banded/seed-and-extend alignment and the
//!   `resembles` similarity predicate.
//! * [`index`] — k-mer and suffix-array sequence indexes.
//! * [`compact`] — pointer-free, page-embeddable encodings of every GDT
//!   (the opaque-UDT payload format used inside the DBMS).
//!
//! ## Quick taste
//!
//! ```
//! use genalg_core::prelude::*;
//!
//! // The paper's running example: translate(splice(transcribe(g))).
//! let gene = Gene::builder("tp53")
//!     .sequence(DnaSeq::from_text("ATGGCCTTTAAGGTAACCGGGTTTCACTGA").unwrap())
//!     .exon(0, 12)
//!     .exon(21, 30)
//!     .build()
//!     .unwrap();
//! let pre = transcribe(&gene).unwrap();
//! let mrna = splice(&pre).unwrap();
//! let protein = translate(&mrna, &GeneticCode::standard()).unwrap();
//! assert_eq!(protein.sequence().to_text(), "MAFKFH");
//! ```

pub mod algebra;
pub mod align;
pub mod alphabet;
pub mod codon;
pub mod compact;
pub mod dogma;
pub mod error;
pub mod gdt;
pub mod index;
pub mod seq;
pub mod uncertainty;

pub use error::{GenAlgError, Result};

/// Convenient glob import of the most commonly used types.
pub mod prelude {
    pub use crate::algebra::{KernelAlgebra, Signature, SortId, Term, Value};
    pub use crate::align::{
        global_align, local_align, resembles, Aligned, NucleotideScore, Scoring,
    };
    pub use crate::alphabet::{AminoAcid, DnaBase, IupacDna, RnaBase, Strand};
    pub use crate::codon::GeneticCode;
    pub use crate::compact::Compact;
    pub use crate::dogma::{decode, express, reverse_transcribe, splice, transcribe, translate};
    pub use crate::error::{GenAlgError, Result};
    pub use crate::gdt::{
        Chromosome, Feature, FeatureKind, Gene, Genome, Interval, Location, Mrna,
        PrimaryTranscript, Protein,
    };
    pub use crate::index::{KmerIndex, SuffixArray};
    pub use crate::seq::{DnaSeq, ProteinSeq, RnaSeq};
    pub use crate::uncertainty::{Alternatives, Confidence, Uncertain};
}
