//! Property-based tests for the kernel algebra's core invariants.

use genalg_core::algebra::Value;
use genalg_core::align::{
    banded_global_align, global_align, local_align, NucleotideScore, Scoring,
};
use genalg_core::alphabet::{AminoAcid, DnaBase, IupacDna};
use genalg_core::codon::GeneticCode;
use genalg_core::compact::{value_from_bytes, value_to_bytes, Compact};
use genalg_core::gdt::Gene;
use genalg_core::index::{KmerIndex, SuffixArray};
use genalg_core::seq::ops::{kmers, pack_kmer, unpack_kmer};
use genalg_core::seq::{DnaSeq, ProteinSeq, RnaSeq};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn dna_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 0..200)
        .prop_map(|v| v.into_iter().collect())
}

fn iupac_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select("ACGTRYSWKMBDHVN".chars().collect::<Vec<_>>()),
        0..200,
    )
    .prop_map(|v| v.into_iter().collect())
}

fn rna_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'U']), 0..200)
        .prop_map(|v| v.into_iter().collect())
}

fn protein_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select("ARNDCQEGHILKMFPSTWYV*X".chars().collect::<Vec<_>>()),
        0..100,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    // --- sequence invariants -------------------------------------------------

    #[test]
    fn dna_text_roundtrip(text in iupac_text()) {
        let seq = DnaSeq::from_text(&text).unwrap();
        prop_assert_eq!(seq.to_text(), text);
        prop_assert_eq!(seq.len(), seq.to_text().len());
    }

    #[test]
    fn reverse_complement_involutive(text in iupac_text()) {
        let seq = DnaSeq::from_text(&text).unwrap();
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn complement_preserves_gc(text in dna_text()) {
        let seq = DnaSeq::from_text(&text).unwrap();
        let rc = seq.reverse_complement();
        prop_assert!((seq.gc_content() - rc.gc_content()).abs() < 1e-12);
        prop_assert_eq!(seq.len(), rc.len());
    }

    #[test]
    fn subseq_concat_identity(text in dna_text(), split in 0usize..200) {
        let seq = DnaSeq::from_text(&text).unwrap();
        let split = split.min(seq.len());
        let left = seq.subseq(0, split).unwrap();
        let right = seq.subseq(split, seq.len()).unwrap();
        prop_assert_eq!(left.concat(&right), seq);
    }

    #[test]
    fn find_agrees_with_text_search(hay in dna_text(), needle in dna_text()) {
        let h = DnaSeq::from_text(&hay).unwrap();
        let n = DnaSeq::from_text(&needle).unwrap();
        // Strict sequences: IUPAC compatibility equals exact matching.
        prop_assert_eq!(h.find(&n), hay.find(&needle));
    }

    #[test]
    fn transcription_roundtrip(text in dna_text()) {
        let seq = DnaSeq::from_text(&text).unwrap();
        let rna = seq.to_rna().unwrap();
        prop_assert_eq!(rna.len(), seq.len());
        prop_assert_eq!(rna.to_dna(), seq);
    }

    #[test]
    fn rna_reverse_complement_involutive(text in rna_text()) {
        let seq = RnaSeq::from_text(&text).unwrap();
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn hamming_is_a_metric_on_equal_lengths(a in dna_text(), b in dna_text()) {
        let n = a.len().min(b.len());
        let x = DnaSeq::from_text(&a[..n]).unwrap();
        let y = DnaSeq::from_text(&b[..n]).unwrap();
        let dxy = x.hamming_distance(&y).unwrap();
        let dyx = y.hamming_distance(&x).unwrap();
        prop_assert_eq!(dxy, dyx);
        prop_assert_eq!(x.hamming_distance(&x).unwrap(), 0);
        prop_assert!(dxy <= n);
        if dxy == 0 {
            prop_assert_eq!(x, y);
        }
    }

    // --- codon / dogma ---------------------------------------------------------

    #[test]
    fn kmer_pack_unpack(text in dna_text(), k in 1usize..16) {
        let seq = DnaSeq::from_text(&text).unwrap();
        for (pos, packed) in kmers(&seq, k) {
            let bases = unpack_kmer(packed, k);
            prop_assert_eq!(pack_kmer(&bases), packed);
            let window = seq.subseq(pos, pos + k).unwrap();
            prop_assert_eq!(DnaSeq::from_bases(&bases), window);
        }
    }

    #[test]
    fn translation_length_invariant(text in rna_text()) {
        let rna = RnaSeq::from_text(&text).unwrap();
        let trimmed = rna.subseq(0, rna.len() - rna.len() % 3).unwrap();
        let protein = GeneticCode::standard().translate_cds(&trimmed).unwrap();
        prop_assert_eq!(protein.len(), trimmed.len() / 3);
    }

    #[test]
    fn every_codon_decodes(a in 0u8..4, b in 0u8..4, c in 0u8..4) {
        use genalg_core::alphabet::RnaBase;
        let codon = [RnaBase::from_code(a), RnaBase::from_code(b), RnaBase::from_code(c)];
        for table in [1u8, 2, 5, 11] {
            let code = GeneticCode::by_id(table).unwrap();
            let aa = code.decode_rna(codon);
            // Every decode is a residue, stop, or unknown — never a panic.
            prop_assert!(aa.code() <= AminoAcid::Unknown.code());
        }
    }

    // --- compact encodings -------------------------------------------------------

    #[test]
    fn compact_dna_roundtrip(text in iupac_text()) {
        let seq = DnaSeq::from_text(&text).unwrap();
        prop_assert_eq!(DnaSeq::from_bytes(&seq.to_bytes()).unwrap(), seq);
    }

    #[test]
    fn compact_protein_roundtrip(text in protein_text()) {
        let seq = ProteinSeq::from_text(&text).unwrap();
        prop_assert_eq!(ProteinSeq::from_bytes(&seq.to_bytes()).unwrap(), seq);
    }

    #[test]
    fn compact_gene_roundtrip(
        text in proptest::collection::vec(
            proptest::sample::select(vec!['A', 'C', 'G', 'T']), 30..120),
        exon1_end in 3usize..15,
        exon2_start in 15usize..25,
    ) {
        let text: String = text.into_iter().collect();
        let gene = Gene::builder("prop-gene")
            .sequence(DnaSeq::from_text(&text).unwrap())
            .exon(0, exon1_end)
            .exon(exon2_start, 30)
            .code_table(11)
            .build()
            .unwrap();
        let value = Value::Gene(Box::new(gene));
        let bytes = value_to_bytes(&value).unwrap();
        prop_assert_eq!(value_from_bytes(&bytes).unwrap(), value);
    }

    #[test]
    fn compact_decoding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Arbitrary bytes must either decode or error — never panic.
        let _ = value_from_bytes(&bytes);
        let _ = DnaSeq::from_bytes(&bytes);
        let _ = Gene::from_bytes(&bytes);
    }

    // --- alignment -----------------------------------------------------------------

    #[test]
    fn self_alignment_is_perfect(text in dna_text()) {
        prop_assume!(!text.is_empty());
        let scoring = NucleotideScore::default();
        let aln = global_align(text.as_bytes(), text.as_bytes(), &scoring);
        prop_assert_eq!(aln.score, 2 * text.len() as i32);
        prop_assert!((aln.identity() - 1.0).abs() < 1e-12);
        prop_assert_eq!(aln.gap_count(), 0);
    }

    #[test]
    fn alignment_is_symmetric_in_score(a in dna_text(), b in dna_text()) {
        let scoring = NucleotideScore::default();
        let ab = global_align(a.as_bytes(), b.as_bytes(), &scoring);
        let ba = global_align(b.as_bytes(), a.as_bytes(), &scoring);
        prop_assert_eq!(ab.score, ba.score);
        let lab = local_align(a.as_bytes(), b.as_bytes(), &scoring);
        let lba = local_align(b.as_bytes(), a.as_bytes(), &scoring);
        prop_assert_eq!(lab.score, lba.score);
    }

    #[test]
    fn local_never_below_zero_and_dominates_global(a in dna_text(), b in dna_text()) {
        let scoring = NucleotideScore::default();
        let g = global_align(a.as_bytes(), b.as_bytes(), &scoring);
        let l = local_align(a.as_bytes(), b.as_bytes(), &scoring);
        prop_assert!(l.score >= 0);
        prop_assert!(l.score >= g.score);
    }

    #[test]
    fn alignment_rows_reconstruct_inputs(a in dna_text(), b in dna_text()) {
        let scoring = NucleotideScore::default();
        let aln = global_align(a.as_bytes(), b.as_bytes(), &scoring);
        let stripped_a: Vec<u8> =
            aln.aligned_a.iter().copied().filter(|&c| c != b'-').collect();
        let stripped_b: Vec<u8> =
            aln.aligned_b.iter().copied().filter(|&c| c != b'-').collect();
        prop_assert_eq!(&stripped_a[..], a.as_bytes());
        prop_assert_eq!(&stripped_b[..], b.as_bytes());
        // The alignment score equals the score recomputed from its rows.
        let mut recomputed = 0i32;
        let mut in_gap_a = false;
        let mut in_gap_b = false;
        for (&x, &y) in aln.aligned_a.iter().zip(&aln.aligned_b) {
            if x == b'-' {
                recomputed += if in_gap_a { scoring.gap_extend() } else { scoring.gap_open() };
                in_gap_a = true;
                in_gap_b = false;
            } else if y == b'-' {
                recomputed += if in_gap_b { scoring.gap_extend() } else { scoring.gap_open() };
                in_gap_b = true;
                in_gap_a = false;
            } else {
                recomputed += scoring.score(x, y);
                in_gap_a = false;
                in_gap_b = false;
            }
        }
        prop_assert_eq!(recomputed, aln.score, "rows: {} / {}",
            String::from_utf8_lossy(&aln.aligned_a), String::from_utf8_lossy(&aln.aligned_b));
    }

    #[test]
    fn banded_matches_full_when_band_is_wide(a in dna_text(), b in dna_text()) {
        // With linear gaps and a band wider than both sequences, banded ==
        // full alignment.
        let linear = NucleotideScore { matched: 2, mismatch: -3, gap_open: -4, gap_extend: -4 };
        let band = a.len().max(b.len()) + 1;
        let full = global_align(a.as_bytes(), b.as_bytes(), &linear);
        let banded = banded_global_align(a.as_bytes(), b.as_bytes(), &linear, band).unwrap();
        prop_assert_eq!(banded.score, full.score);
    }

    // --- indexes -----------------------------------------------------------------

    #[test]
    fn suffix_array_find_all_matches_naive(
        text in proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 1..150),
        pat in proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 1..6),
    ) {
        let text: String = text.into_iter().collect();
        let pat: String = pat.into_iter().collect();
        let sa = SuffixArray::from_bytes(text.as_bytes().to_vec());
        let naive: Vec<usize> = if pat.len() > text.len() {
            Vec::new()
        } else {
            (0..=text.len() - pat.len())
                .filter(|&i| &text.as_bytes()[i..i + pat.len()] == pat.as_bytes())
                .collect()
        };
        prop_assert_eq!(sa.find_all(pat.as_bytes()), naive);
        prop_assert_eq!(sa.contains(pat.as_bytes()), text.contains(&pat));
    }

    #[test]
    fn kmer_index_has_no_false_negatives(
        seqs in proptest::collection::vec(dna_text(), 1..12),
        pat in proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 6..12),
    ) {
        let pat: String = pat.into_iter().collect();
        let pattern = DnaSeq::from_text(&pat).unwrap();
        let mut index = KmerIndex::new(5);
        let parsed: Vec<DnaSeq> = seqs.iter().map(|s| DnaSeq::from_text(s).unwrap()).collect();
        for (i, s) in parsed.iter().enumerate() {
            index.add(i as u64, s);
        }
        if let Some(candidates) = index.candidates(&pattern) {
            for (i, s) in parsed.iter().enumerate() {
                if s.contains(&pattern) {
                    prop_assert!(
                        candidates.contains(&(i as u64)),
                        "false negative for sequence {i}"
                    );
                }
            }
        }
    }

    // --- alphabet totality ------------------------------------------------------

    #[test]
    fn iupac_mask_roundtrip_total(mask in 0u8..=255) {
        let code = IupacDna::from_mask(mask);
        prop_assert!(code.cardinality() >= 1);
        prop_assert_eq!(IupacDna::from_mask(code.mask()), code);
        // Complement stays within the alphabet and is involutive.
        prop_assert_eq!(code.complement().complement(), code);
    }

    #[test]
    fn base_codes_total(code in 0u8..=255) {
        let b = DnaBase::from_code(code);
        prop_assert_eq!(DnaBase::from_code(b.code()), b);
        let aa = AminoAcid::from_code(code);
        prop_assert_eq!(AminoAcid::from_code(aa.code()), aa);
    }
}
