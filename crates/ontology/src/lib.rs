//! # genalg-ontology — a controlled vocabulary for molecular biology
//!
//! §4.1 of the paper makes an ontology the precondition for the Genomics
//! Algebra: "an ontology is a controlled vocabulary … Each technical term
//! has to be associated with a unique semantics. If this is not possible,
//! because different meanings or interpretations are attached to the same
//! term but in different biological contexts, then the only solution is to
//! coin a new, appropriate, and unique term for each context."
//!
//! This crate provides exactly that machinery:
//!
//! * [`Concept`]s with labels, definitions, **synonyms** (terminological
//!   differences between repositories) and **contexts** (homonym
//!   disambiguation);
//! * typed [`Relation`]s (is-a, part-of, derives-from) with transitive
//!   queries and cycle detection;
//! * **bindings** from entity concepts to algebra sorts and from process
//!   concepts to algebra operations, plus [`Ontology::verify_algebra`],
//!   which checks that the Genomics Algebra is a faithful executable
//!   instantiation of the ontology (§4.2: "Entity types and functions in
//!   the ontology are represented directly using the appropriate data
//!   types and operations").

use genalg_core::algebra::{KernelAlgebra, SortId};
use genalg_core::error::{GenAlgError, Result};
use std::collections::{HashMap, HashSet};

/// A stable concept identifier (kebab-case slug).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(String);

impl ConceptId {
    pub fn new(slug: &str) -> Self {
        ConceptId(slug.to_ascii_lowercase())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ConceptId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a concept is bound to in the executable algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraBinding {
    /// An entity concept realized as a sort (genomic data type).
    Sort(SortId),
    /// A process concept realized as an operation name.
    Operation(String),
    /// Purely descriptive; no executable counterpart.
    None,
}

/// One term of the controlled vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    pub id: ConceptId,
    /// Preferred human label.
    pub label: String,
    /// One-sentence definition.
    pub definition: String,
    /// Alternative names used by repositories (synonym problem, B3).
    pub synonyms: Vec<String>,
    /// Disambiguation context for homonyms (e.g. `"molecular-biology"` vs
    /// `"computer-science"` for *translation*).
    pub context: Option<String>,
    /// Executable counterpart in the algebra.
    pub binding: AlgebraBinding,
}

/// Relation kinds between concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// Specialization: `mrna` is-a `rna-sequence`.
    IsA,
    /// Composition: `gene` part-of `chromosome`.
    PartOf,
    /// Biological derivation: `mrna` derives-from `primary-transcript`.
    DerivesFrom,
}

/// A directed relation `subject --kind--> object`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    pub kind: RelationKind,
    pub subject: ConceptId,
    pub object: ConceptId,
}

/// The ontology: concepts, a synonym index, and relations.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    concepts: HashMap<ConceptId, Concept>,
    /// term (lowercase) → concept ids claiming it.
    synonym_index: HashMap<String, Vec<ConceptId>>,
    relations: HashSet<Relation>,
}

/// Outcome of resolving a term against the vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// The term names exactly one concept.
    Unique(ConceptId),
    /// The term is a homonym; every candidate carries a distinct context
    /// and the caller must pick one (§4.1's prescribed handling).
    Ambiguous(Vec<ConceptId>),
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a concept. Ids must be unique.
    pub fn add_concept(&mut self, concept: Concept) -> Result<()> {
        if self.concepts.contains_key(&concept.id) {
            return Err(GenAlgError::Other(format!("concept {} already defined", concept.id)));
        }
        for term in std::iter::once(&concept.label).chain(concept.synonyms.iter()) {
            self.index_term(term, &concept.id);
        }
        let id_term = concept.id.as_str().to_string();
        self.index_term(&id_term, &concept.id);
        self.concepts.insert(concept.id.clone(), concept);
        Ok(())
    }

    fn index_term(&mut self, term: &str, id: &ConceptId) {
        let entry = self.synonym_index.entry(term.to_ascii_lowercase()).or_default();
        if !entry.contains(id) {
            entry.push(id.clone());
        }
    }

    /// Add a relation; both endpoints must exist.
    pub fn relate(&mut self, kind: RelationKind, subject: &str, object: &str) -> Result<()> {
        let subject = ConceptId::new(subject);
        let object = ConceptId::new(object);
        for c in [&subject, &object] {
            if !self.concepts.contains_key(c) {
                return Err(GenAlgError::Other(format!("unknown concept {c}")));
            }
        }
        self.relations.insert(Relation { kind, subject, object });
        Ok(())
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True if no concepts are defined.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Fetch a concept.
    pub fn concept(&self, id: &ConceptId) -> Option<&Concept> {
        self.concepts.get(id)
    }

    /// Resolve a free-text term through labels, synonyms, and ids.
    pub fn resolve(&self, term: &str) -> Result<Resolution> {
        let mut ids =
            self.synonym_index.get(&term.to_ascii_lowercase()).cloned().unwrap_or_default();
        ids.sort();
        ids.dedup();
        match ids.len() {
            0 => Err(GenAlgError::Other(format!("term {term:?} is not in the vocabulary"))),
            1 => Ok(Resolution::Unique(ids.remove(0))),
            _ => Ok(Resolution::Ambiguous(ids)),
        }
    }

    /// Resolve a term within a disambiguating context.
    pub fn resolve_in_context(&self, term: &str, context: &str) -> Result<ConceptId> {
        match self.resolve(term)? {
            Resolution::Unique(id) => Ok(id),
            Resolution::Ambiguous(ids) => ids
                .into_iter()
                .find(|id| {
                    self.concepts[id]
                        .context
                        .as_deref()
                        .is_some_and(|c| c.eq_ignore_ascii_case(context))
                })
                .ok_or_else(|| {
                    GenAlgError::Other(format!("no reading of {term:?} in context {context:?}"))
                }),
        }
    }

    /// Direct objects of `subject` under `kind`.
    pub fn direct(&self, kind: RelationKind, subject: &ConceptId) -> Vec<&ConceptId> {
        let mut v: Vec<&ConceptId> = self
            .relations
            .iter()
            .filter(|r| r.kind == kind && &r.subject == subject)
            .map(|r| &r.object)
            .collect();
        v.sort();
        v
    }

    /// Transitive closure of `kind` starting at `subject` (excluding it).
    pub fn ancestors(&self, kind: RelationKind, subject: &ConceptId) -> Vec<ConceptId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<ConceptId> = self.direct(kind, subject).into_iter().cloned().collect();
        let mut out = Vec::new();
        while let Some(c) = stack.pop() {
            if seen.insert(c.clone()) {
                stack.extend(self.direct(kind, &c).into_iter().cloned());
                out.push(c);
            }
        }
        out.sort();
        out
    }

    /// True if `a` is (transitively) a kind of `b`.
    pub fn is_a(&self, a: &ConceptId, b: &ConceptId) -> bool {
        a == b || self.ancestors(RelationKind::IsA, a).contains(b)
    }

    /// Validate structural sanity: the is-a hierarchy must be acyclic.
    pub fn validate(&self) -> Result<()> {
        fn dfs<'a>(
            ont: &'a Ontology,
            node: &'a ConceptId,
            state: &mut HashMap<&'a ConceptId, u8>,
        ) -> Result<()> {
            match state.get(node) {
                Some(1) => {
                    return Err(GenAlgError::InvalidStructure(format!("is-a cycle through {node}")))
                }
                Some(2) => return Ok(()),
                _ => {}
            }
            state.insert(node, 1);
            for r in &ont.relations {
                if r.kind == RelationKind::IsA && &r.subject == node {
                    let obj = ont
                        .concepts
                        .get_key_value(&r.object)
                        .map(|(k, _)| k)
                        .expect("relations reference existing concepts");
                    dfs(ont, obj, state)?;
                }
            }
            state.insert(node, 2);
            Ok(())
        }
        let mut state: HashMap<&ConceptId, u8> = HashMap::new();
        for id in self.concepts.keys() {
            dfs(self, id, &mut state)?;
        }
        Ok(())
    }

    /// Check that every bound concept has its executable counterpart in the
    /// algebra: sorts registered, operations present in the signature.
    pub fn verify_algebra(&self, algebra: &KernelAlgebra) -> Result<()> {
        for c in self.concepts.values() {
            match &c.binding {
                AlgebraBinding::Sort(sort) => {
                    if !algebra.signature().has_sort(sort) {
                        return Err(GenAlgError::UnknownSort(format!(
                            "concept {} is bound to unregistered sort {sort}",
                            c.id
                        )));
                    }
                }
                AlgebraBinding::Operation(op) => {
                    if algebra.signature().overloads(op).is_empty() {
                        return Err(GenAlgError::UnknownOperation(format!(
                            "concept {} is bound to unregistered operation {op}",
                            c.id
                        )));
                    }
                }
                AlgebraBinding::None => {}
            }
        }
        Ok(())
    }

    /// All concept ids, sorted.
    pub fn concept_ids(&self) -> Vec<&ConceptId> {
        let mut v: Vec<&ConceptId> = self.concepts.keys().collect();
        v.sort();
        v
    }
}

/// Convenience constructor for concepts.
pub fn concept(
    id: &str,
    label: &str,
    definition: &str,
    synonyms: &[&str],
    binding: AlgebraBinding,
) -> Concept {
    Concept {
        id: ConceptId::new(id),
        label: label.to_string(),
        definition: definition.to_string(),
        synonyms: synonyms.iter().map(|s| s.to_string()).collect(),
        context: None,
        binding,
    }
}

/// The genomics ontology shipped with the system: the vocabulary underlying
/// the standard Genomics Algebra.
pub fn standard_ontology() -> Ontology {
    let mut o = Ontology::new();
    let sorts: &[(&str, &str, &str, &[&str], SortId)] = &[
        (
            "nucleotide-sequence",
            "Nucleotide sequence",
            "A linear polymer of nucleotides read 5' to 3'.",
            &["dna sequence", "dna"],
            SortId::dna(),
        ),
        ("rna-sequence", "RNA sequence", "A ribonucleic acid sequence.", &["rna"], SortId::rna()),
        (
            "amino-acid-sequence",
            "Amino-acid sequence",
            "A linear chain of amino-acid residues.",
            &["peptide", "polypeptide"],
            SortId::protein_seq(),
        ),
        (
            "gene",
            "Gene",
            "A genomic region encoding a functional product, with exon structure.",
            &["locus"],
            SortId::gene(),
        ),
        (
            "primary-transcript",
            "Primary transcript",
            "The unprocessed RNA copy of a gene, introns included.",
            &["pre-mrna", "hnRNA"],
            SortId::primary_transcript(),
        ),
        (
            "mrna",
            "Messenger RNA",
            "The mature, spliced RNA carrying a coding sequence.",
            &["messenger rna", "mature transcript"],
            SortId::mrna(),
        ),
        (
            "protein",
            "Protein",
            "A folded gene product made of amino-acid residues.",
            &["gene product"],
            SortId::protein(),
        ),
        (
            "chromosome",
            "Chromosome",
            "A single DNA molecule carrying many genes.",
            &[],
            SortId::chromosome(),
        ),
        (
            "genome",
            "Genome",
            "The complete hereditary information of an organism.",
            &[],
            SortId::genome(),
        ),
    ];
    for (id, label, def, syns, sort) in sorts {
        o.add_concept(concept(id, label, def, syns, AlgebraBinding::Sort(sort.clone())))
            .expect("standard ontology ids are unique");
    }

    let ops: &[(&str, &str, &str, &[&str], &str)] = &[
        (
            "transcription",
            "Transcription",
            "Copying a gene's coding strand into a primary transcript.",
            &["transcribe"],
            "transcribe",
        ),
        (
            "splicing",
            "Splicing",
            "Excising introns from a primary transcript to form mRNA.",
            &["splice"],
            "splice",
        ),
        (
            "translation",
            "Translation (molecular biology)",
            "Reading an mRNA's coding region into a protein.",
            &["translate"],
            "translate",
        ),
        (
            "gene-expression",
            "Gene expression",
            "The full pathway from gene to protein.",
            &["express"],
            "express",
        ),
        (
            "reverse-transcription",
            "Reverse transcription",
            "Producing the cDNA of a messenger RNA.",
            &["reverse transcribe"],
            "reverse_transcribe",
        ),
        (
            "decoding",
            "Decoding",
            "Direct translation of a DNA reading frame.",
            &["decode", "six-frame translation"],
            "decode",
        ),
        (
            "complementation",
            "Complementation",
            "Forming the Watson–Crick complement of a sequence.",
            &["complement"],
            "complement",
        ),
        (
            "sequence-similarity",
            "Sequence similarity",
            "Whether two sequences share a high-identity local alignment.",
            &["resembles", "homology search"],
            "resembles",
        ),
        (
            "subsequence-search",
            "Subsequence search",
            "Whether a fragment contains a given pattern.",
            &["contains", "motif search"],
            "contains",
        ),
    ];
    for (id, label, def, syns, op) in ops {
        o.add_concept(concept(id, label, def, syns, AlgebraBinding::Operation(op.to_string())))
            .expect("standard ontology ids are unique");
    }

    // The classic homonym: "translation" also names a computer-science
    // concept. Each reading carries its own id and context tag — §4.1's
    // prescribed handling.
    {
        let bio = o.concepts.get_mut(&ConceptId::new("translation")).expect("just added");
        bio.context = Some("molecular-biology".into());
        bio.synonyms.push("translation".into());
        let id = bio.id.clone();
        o.index_term("translation", &id);
    }
    let mut cs_translation = concept(
        "translation-cs",
        "Translation (computer science)",
        "Mapping a program or query from one language to another.",
        &["translation"],
        AlgebraBinding::None,
    );
    cs_translation.context = Some("computer-science".into());
    o.add_concept(cs_translation).expect("unique id");

    // Structural relations.
    for (kind, s, obj) in [
        (RelationKind::PartOf, "gene", "chromosome"),
        (RelationKind::PartOf, "chromosome", "genome"),
        (RelationKind::IsA, "mrna", "rna-sequence"),
        (RelationKind::IsA, "primary-transcript", "rna-sequence"),
        (RelationKind::DerivesFrom, "primary-transcript", "gene"),
        (RelationKind::DerivesFrom, "mrna", "primary-transcript"),
        (RelationKind::DerivesFrom, "protein", "mrna"),
    ] {
        o.relate(kind, s, obj).expect("endpoints exist");
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_ontology_is_consistent() {
        let o = standard_ontology();
        assert!(o.len() >= 19, "got {}", o.len());
        o.validate().unwrap();
    }

    #[test]
    fn standard_ontology_matches_standard_algebra() {
        let o = standard_ontology();
        let alg = KernelAlgebra::standard();
        o.verify_algebra(&alg).unwrap();
    }

    #[test]
    fn verify_catches_missing_bindings() {
        let mut o = standard_ontology();
        o.add_concept(concept(
            "folding",
            "Protein folding",
            "Computing tertiary structure.",
            &[],
            AlgebraBinding::Operation("fold".into()),
        ))
        .unwrap();
        let alg = KernelAlgebra::standard();
        assert!(matches!(o.verify_algebra(&alg), Err(GenAlgError::UnknownOperation(_))));

        let mut o2 = Ontology::new();
        o2.add_concept(concept(
            "motif",
            "Motif",
            "",
            &[],
            AlgebraBinding::Sort(SortId::new("motif")),
        ))
        .unwrap();
        assert!(matches!(o2.verify_algebra(&alg), Err(GenAlgError::UnknownSort(_))));
    }

    #[test]
    fn synonyms_resolve() {
        let o = standard_ontology();
        assert_eq!(
            o.resolve("pre-mRNA").unwrap(),
            Resolution::Unique(ConceptId::new("primary-transcript"))
        );
        assert_eq!(o.resolve("messenger rna").unwrap(), Resolution::Unique(ConceptId::new("mrna")));
        assert!(o.resolve("flux capacitor").is_err());
    }

    #[test]
    fn homonyms_demand_context() {
        let o = standard_ontology();
        let Resolution::Ambiguous(ids) = o.resolve("translation").unwrap() else {
            panic!("'translation' must be ambiguous");
        };
        assert_eq!(ids.len(), 2);
        assert_eq!(
            o.resolve_in_context("translation", "molecular-biology").unwrap(),
            ConceptId::new("translation")
        );
        assert_eq!(
            o.resolve_in_context("translation", "computer-science").unwrap(),
            ConceptId::new("translation-cs")
        );
        assert!(o.resolve_in_context("translation", "astrology").is_err());
    }

    #[test]
    fn relations_and_transitivity() {
        let o = standard_ontology();
        let gene = ConceptId::new("gene");
        let genome = ConceptId::new("genome");
        let anc = o.ancestors(RelationKind::PartOf, &gene);
        assert!(anc.contains(&genome), "gene is transitively part of the genome");
        assert!(o.is_a(&ConceptId::new("mrna"), &ConceptId::new("rna-sequence")));
        assert!(!o.is_a(&ConceptId::new("gene"), &ConceptId::new("rna-sequence")));
        assert!(o.is_a(&gene, &gene), "is_a is reflexive");
        assert_eq!(o.direct(RelationKind::PartOf, &gene).len(), 1);
    }

    #[test]
    fn cycle_detection() {
        let mut o = Ontology::new();
        o.add_concept(concept("a", "A", "", &[], AlgebraBinding::None)).unwrap();
        o.add_concept(concept("b", "B", "", &[], AlgebraBinding::None)).unwrap();
        o.relate(RelationKind::IsA, "a", "b").unwrap();
        o.validate().unwrap();
        o.relate(RelationKind::IsA, "b", "a").unwrap();
        assert!(o.validate().is_err());
    }

    #[test]
    fn duplicate_concepts_rejected() {
        let mut o = Ontology::new();
        o.add_concept(concept("x", "X", "", &[], AlgebraBinding::None)).unwrap();
        assert!(o.add_concept(concept("x", "X2", "", &[], AlgebraBinding::None)).is_err());
        assert!(o.relate(RelationKind::IsA, "x", "missing").is_err());
    }

    #[test]
    fn lookup_and_listing() {
        let o = standard_ontology();
        let c = o.concept(&ConceptId::new("gene")).unwrap();
        assert_eq!(c.label, "Gene");
        assert!(matches!(c.binding, AlgebraBinding::Sort(_)));
        assert_eq!(o.concept_ids().len(), o.len());
        assert!(!o.is_empty());
    }
}
