//! Stand up a genalg-server on a TCP port, load a small demo warehouse,
//! and run a few queries against it over the wire.
//!
//! ```sh
//! cargo run --release -p genalg-server --example serve
//! ```

use genalg_server::{Lang, Server, ServerConfig, SessionKind, TcpClient};
use std::sync::Arc;
use unidb::{Database, Role};

fn main() {
    let db = Arc::new(Database::in_memory());
    db.execute_as(
        "CREATE TABLE public.sequences (accession TEXT, organism TEXT, length INT)",
        &Role::Maintainer,
    )
    .expect("create demo table");
    db.execute_as(
        "INSERT INTO public.sequences VALUES \
         ('U00096', 'Escherichia coli', 4641652), \
         ('AL009126', 'Bacillus subtilis', 4215606), \
         ('AE006468', 'Salmonella enterica', 4857450)",
        &Role::Maintainer,
    )
    .expect("seed demo rows");

    let server = Server::new(Arc::clone(&db), &ServerConfig::default());
    let handle = server.listen("127.0.0.1:0").expect("bind");
    println!("genalg-server listening on {}", handle.addr());

    let mut client = TcpClient::connect(handle.addr()).expect("connect");
    let session = client.open(SessionKind::Public).expect("open session");

    for sql in [
        "SELECT accession, organism FROM public.sequences WHERE length > 4500000",
        "SELECT count(*) FROM public.sequences",
        "SHOW STATS",
        "SHOW METRICS",
        "SHOW SLOW QUERIES",
    ] {
        println!("\n> {sql}");
        match client.query(session, Lang::Sql, sql) {
            Ok(rs) => print!("{}", db.render(&rs)),
            Err(e) => println!("error: {e}"),
        }
    }

    client.close(session).expect("close session");
    handle.stop();
}
