//! Transports: a TCP listener speaking the frame protocol, and an
//! in-process client that exercises the identical dispatch path without a
//! socket (used by tests and benches).
//!
//! Both funnel into `dispatch`: session management runs inline (cheap,
//! never blocks on the engine) while queries go through the worker pool's
//! bounded admission queue — a saturated server answers `Busy` instead of
//! stacking connections.

use crate::error::{ServerError, ServerResult};
use crate::protocol::{read_frame, write_frame, Lang, Request, Response};
use crate::queue::WorkerPool;
use crate::service::{QueryService, ServerConfig};
use crate::session::{SessionId, SessionKind};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use unidb::{Database, ResultSet};

/// The query server: service + worker pool, independent of transport.
pub struct Server {
    service: Arc<QueryService>,
    pool: Arc<WorkerPool>,
    /// Background metrics sampler feeding `SHOW HISTORY` and the incident
    /// triggers; stops when dropped with the server (or on its own once
    /// the service is gone — the tick holds only a `Weak`).
    _sampler: Option<genalg_obs::Sampler>,
}

impl Server {
    /// Stand up a server over `db` with the given tuning.
    pub fn new(db: Arc<Database>, config: &ServerConfig) -> Self {
        let service = Arc::new(QueryService::new(db, config));
        let pool = Arc::new(WorkerPool::new(
            config.workers,
            config.queue_capacity,
            Arc::clone(service.metrics()),
        ));
        let sampler = (config.sampler_interval_ms > 0).then(|| {
            let weak = Arc::downgrade(&service);
            genalg_obs::Sampler::spawn(
                std::time::Duration::from_millis(config.sampler_interval_ms),
                move || match weak.upgrade() {
                    Some(svc) => {
                        svc.sample_tick();
                        true
                    }
                    None => false,
                },
            )
        });
        Server { service, pool, _sampler: sampler }
    }

    /// The service behind this server (for stats inspection in tests).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// The worker pool (tests use this to park workers deterministically).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// An in-process client sharing this server's admission queue.
    pub fn client(&self) -> Client {
        Client { service: Arc::clone(&self.service), pool: Arc::clone(&self.pool) }
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve connections until the
    /// returned handle is stopped.
    pub fn listen(&self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::clone(&self.service);
        let pool = Arc::clone(&self.pool);
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new().name("genalg-accept".into()).spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let service = Arc::clone(&service);
                let pool = Arc::clone(&pool);
                let _ = std::thread::Builder::new().name("genalg-conn".into()).spawn(move || {
                    let _ = serve_connection(&service, &pool, stream);
                });
            }
        })?;
        Ok(ServerHandle { addr: local_addr, stop, thread: Some(thread) })
    }
}

/// Handle to a listening server; stops the accept loop on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Established
    /// connections finish their in-flight request and close.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One request through the shared dispatch path. Session open/close run
/// inline (cheap, never touch the engine); queries pass the bounded
/// admission queue via [`dispatch_query`].
fn dispatch(service: &Arc<QueryService>, pool: &WorkerPool, req: Request) -> Response {
    match req {
        Request::OpenSession { kind } => {
            Response::SessionOpened { session: service.open_session(kind).0 }
        }
        Request::CloseSession { session } => {
            service.close_session(SessionId(session));
            Response::Ok(ResultSet { columns: vec![], rows: vec![], affected: 0, explain: None })
        }
        Request::Query { session, lang, text } => {
            dispatch_query(service, pool, session, lang, text)
        }
    }
}

fn dispatch_query(
    service: &Arc<QueryService>,
    pool: &WorkerPool,
    session: u64,
    lang: Lang,
    text: String,
) -> Response {
    let svc = Arc::clone(service);
    match pool.run(move || svc.execute(SessionId(session), lang, &text)) {
        Ok(Ok(rs)) => Response::Ok(rs),
        Ok(Err(e)) => Response::Error(e),
        Err(e) => Response::Error(e),
    }
}

fn serve_connection(
    service: &Arc<QueryService>,
    pool: &WorkerPool,
    stream: TcpStream,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(req) => dispatch(service, pool, req),
            Err(e) => Response::Error(e),
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

/// In-process client: same admission control and dispatch as TCP, no socket.
#[derive(Clone)]
pub struct Client {
    service: Arc<QueryService>,
    pool: Arc<WorkerPool>,
}

impl Client {
    /// Open a session.
    pub fn open(&self, kind: SessionKind) -> SessionId {
        self.service.open_session(kind)
    }

    /// Close a session.
    pub fn close(&self, id: SessionId) {
        self.service.close_session(id);
    }

    /// Run one SQL statement through the worker pool.
    pub fn query(&self, session: SessionId, sql: &str) -> ServerResult<ResultSet> {
        self.request(session, Lang::Sql, sql)
    }

    /// Run one BQL statement through the worker pool.
    pub fn query_bql(&self, session: SessionId, bql: &str) -> ServerResult<ResultSet> {
        self.request(session, Lang::Bql, bql)
    }

    fn request(&self, session: SessionId, lang: Lang, text: &str) -> ServerResult<ResultSet> {
        let svc = Arc::clone(&self.service);
        let text = text.to_string();
        self.pool.run(move || svc.execute(session, lang, &text))?
    }
}

/// Blocking TCP client for tests and examples.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpClient { reader, writer: BufWriter::new(stream) })
    }

    /// Send one request and read one response.
    pub fn request(&mut self, req: &Request) -> ServerResult<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| ServerError::Io("server closed connection".into()))?;
        Response::decode(&payload)
    }

    /// Open a session, returning its id.
    pub fn open(&mut self, kind: SessionKind) -> ServerResult<u64> {
        match self.request(&Request::OpenSession { kind })? {
            Response::SessionOpened { session } => Ok(session),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Run one statement, returning its result set.
    pub fn query(&mut self, session: u64, lang: Lang, text: &str) -> ServerResult<ResultSet> {
        match self.request(&Request::Query { session, lang, text: text.into() })? {
            Response::Ok(rs) => Ok(rs),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Close a session on the server.
    pub fn close(&mut self, session: u64) -> ServerResult<()> {
        match self.request(&Request::CloseSession { session })? {
            Response::Ok(_) => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Protocol(format!("unexpected response {other:?}"))),
        }
    }
}
