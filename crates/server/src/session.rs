//! Session management with the paper's §5.1 role separation.
//!
//! The Genomics Research Warehouse distinguishes the *public* space —
//! curated data, read-only for everyone but the maintainer — from per-user
//! spaces where researchers keep private tables. A connection therefore
//! opens as one of three kinds of session:
//!
//! * **public** — anonymous; may only read (SELECT / EXPLAIN / SHOW);
//! * **user** — authenticated as a named researcher; reads everything,
//!   writes its own space (enforced by the engine's catalog ACLs);
//! * **maintainer** — the ETL loader; writes every space.

use crate::metrics::Metrics;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use unidb::Role;

/// Opaque session handle issued by [`SessionManager::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

/// Who a session is, which determines what it may do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionKind {
    /// Anonymous read-only access to the public space.
    Public,
    /// A named researcher with a private user space.
    User(String),
    /// The warehouse maintainer (may write the public space).
    Maintainer,
}

impl SessionKind {
    /// The engine role this session runs statements under.
    pub fn role(&self) -> Role {
        match self {
            // Public sessions read as an anonymous user; the service layer
            // additionally rejects any write statement before it reaches
            // the engine.
            SessionKind::Public => Role::User("public_reader".into()),
            SessionKind::User(name) => Role::User(name.clone()),
            SessionKind::Maintainer => Role::Maintainer,
        }
    }

    /// May this session execute write statements at all?
    pub fn can_write(&self) -> bool {
        !matches!(self, SessionKind::Public)
    }
}

/// The interactive transaction a session currently has open (a session
/// can pin at most one).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionTxn {
    /// The engine transaction id.
    pub id: u64,
    /// Last time the session ran a statement in (or began) the
    /// transaction — the idle clock the abandoned-transaction timeout
    /// measures against.
    pub last_used: Instant,
}

#[derive(Debug)]
struct SessionEntry {
    kind: SessionKind,
    txn: Option<SessionTxn>,
}

/// Registry of open sessions.
#[derive(Debug)]
pub struct SessionManager {
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_id: AtomicU64,
    metrics: Arc<Metrics>,
}

impl SessionManager {
    pub fn new(metrics: Arc<Metrics>) -> Self {
        SessionManager { sessions: Mutex::new(HashMap::new()), next_id: AtomicU64::new(1), metrics }
    }

    /// Open a session of the given kind; ids are never reused.
    pub fn open(&self, kind: SessionKind) -> SessionId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(id, SessionEntry { kind, txn: None });
        self.metrics.active_sessions.fetch_add(1, Ordering::Relaxed);
        SessionId(id)
    }

    /// Close a session, returning the id of its still-open transaction (if
    /// any) so the caller can roll it back. Unknown ids are ignored
    /// (closing twice is fine).
    pub(crate) fn close(&self, id: SessionId) -> Option<SessionTxn> {
        match self.sessions.lock().remove(&id.0) {
            Some(entry) => {
                self.metrics.active_sessions.fetch_sub(1, Ordering::Relaxed);
                entry.txn
            }
            None => None,
        }
    }

    /// The kind of an open session, or `None` if it was never opened or has
    /// been closed.
    pub fn kind(&self, id: SessionId) -> Option<SessionKind> {
        self.sessions.lock().get(&id.0).map(|e| e.kind.clone())
    }

    /// The session's open transaction, if any.
    pub(crate) fn txn(&self, id: SessionId) -> Option<SessionTxn> {
        self.sessions.lock().get(&id.0).and_then(|e| e.txn)
    }

    /// Pin a freshly begun transaction to the session.
    pub(crate) fn set_txn(&self, id: SessionId, txn_id: u64) {
        if let Some(entry) = self.sessions.lock().get_mut(&id.0) {
            entry.txn = Some(SessionTxn { id: txn_id, last_used: Instant::now() });
        }
    }

    /// Unpin the session's transaction (it committed, rolled back, or
    /// timed out), returning what was pinned.
    pub(crate) fn clear_txn(&self, id: SessionId) -> Option<SessionTxn> {
        self.sessions.lock().get_mut(&id.0).and_then(|e| e.txn.take())
    }

    /// Reset the transaction's idle clock after a statement ran in it.
    pub(crate) fn touch_txn(&self, id: SessionId) {
        if let Some(entry) = self.sessions.lock().get_mut(&id.0) {
            if let Some(txn) = entry.txn.as_mut() {
                txn.last_used = Instant::now();
            }
        }
    }

    /// Unpin and return every transaction idle for at least `timeout_ms`,
    /// except the one pinned to `except` (the session currently speaking —
    /// its own expiry is handled inline so *it* gets the timeout error).
    ///
    /// This is the global reap path: the lazy per-session check only fires
    /// when the owning session next speaks, but a session that was shed
    /// with `Busy` mid-transaction — or whose connection dropped without a
    /// close — may never speak again, and its transaction would otherwise
    /// pin an MVCC snapshot forever. The caller rolls the returned
    /// transactions back outside the session lock.
    pub(crate) fn take_expired_txns(&self, timeout_ms: u64, except: SessionId) -> Vec<SessionTxn> {
        let mut expired = Vec::new();
        let mut sessions = self.sessions.lock();
        for (id, entry) in sessions.iter_mut() {
            if *id == except.0 {
                continue;
            }
            let idle_ms = match &entry.txn {
                Some(txn) => txn.last_used.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
                None => continue,
            };
            if idle_ms >= timeout_ms {
                expired.push(entry.txn.take().expect("txn checked above"));
            }
        }
        expired
    }

    /// Number of open sessions.
    pub fn count(&self) -> usize {
        self.sessions.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_lifecycle() {
        let m = Arc::new(Metrics::default());
        let sm = SessionManager::new(Arc::clone(&m));
        let a = sm.open(SessionKind::Public);
        let b = sm.open(SessionKind::User("alice".into()));
        assert_ne!(a, b);
        assert_eq!(sm.count(), 2);
        assert_eq!(sm.kind(a), Some(SessionKind::Public));
        assert_eq!(sm.kind(b), Some(SessionKind::User("alice".into())));
        sm.close(a);
        sm.close(a); // double-close is a no-op
        assert_eq!(sm.count(), 1);
        assert_eq!(m.active_sessions.load(Ordering::Relaxed), 1);
        assert_eq!(sm.kind(a), None);
    }

    #[test]
    fn role_mapping() {
        assert_eq!(SessionKind::Maintainer.role(), Role::Maintainer);
        assert_eq!(SessionKind::User("bob".into()).role(), Role::User("bob".into()));
        assert!(!SessionKind::Public.can_write());
        assert!(SessionKind::User("bob".into()).can_write());
        assert!(SessionKind::Maintainer.can_write());
    }
}
