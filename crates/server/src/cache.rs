//! Prepared-plan and result caches.
//!
//! Both caches key on *normalized* statement text (case-folded outside
//! string literals, whitespace collapsed) plus the session's default space,
//! so `SELECT * FROM t` and `select  *  from t` share an entry while the
//! same text from sessions resolving different spaces does not.
//!
//! Invalidation is generation-based, piggybacking on counters the engine
//! already maintains:
//!
//! * a **plan** is valid while the catalog generation it was built under is
//!   current — any DDL bumps it and the entry is re-prepared on next use;
//! * a **result** is valid while every base table the plan read still has
//!   the version counter observed *before* execution — any DML on one of
//!   those tables makes the entry unreachable. Snapshotting versions before
//!   execution errs toward spurious misses, never stale hits.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use unidb::{Datum, Prepared, ResultSet};

/// Normalize SQL/BQL text for cache keying: collapse runs of whitespace to
/// one space, lowercase everything outside single-quoted literals, strip a
/// trailing semicolon.
pub fn normalize_sql(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut pending_space = false;
    for ch in text.chars() {
        if in_string {
            out.push(ch);
            if ch == '\'' {
                in_string = false;
            }
            continue;
        }
        if ch.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if ch == '\'' {
            in_string = true;
            out.push(ch);
        } else {
            out.extend(ch.to_lowercase());
        }
    }
    while out.ends_with(';') || out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A small LRU map: capacity-bounded, least-recently-*used* eviction via a
/// logical clock (same scheme as the storage buffer pool). Each entry
/// carries an approximate byte size so the caches can report their heap
/// footprint, not just their entry count.
struct Lru<K, V> {
    map: HashMap<K, (V, u64, usize)>,
    capacity: usize,
    clock: u64,
    bytes: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru { map: HashMap::new(), capacity: capacity.max(1), clock: 0, bytes: 0 }
    }

    fn get(&mut self, k: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(k).map(|(v, used, _)| {
            *used = clock;
            &*v
        })
    }

    fn insert(&mut self, k: K, v: V, size: usize) {
        if !self.map.contains_key(&k) && self.map.len() >= self.capacity {
            if let Some(victim) =
                self.map.iter().min_by_key(|(_, (_, used, _))| *used).map(|(k, _)| k.clone())
            {
                self.remove(&victim);
            }
        }
        self.clock += 1;
        if let Some((_, _, old)) = self.map.insert(k, (v, self.clock, size)) {
            self.bytes -= old;
        }
        self.bytes += size;
    }

    fn remove(&mut self, k: &K) {
        if let Some((_, _, size)) = self.map.remove(k) {
            self.bytes -= size;
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Cache key: normalized statement text + the space unqualified names
/// resolve under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StatementKey {
    pub normalized_sql: String,
    pub space: String,
}

/// LRU cache of prepared SELECT plans.
pub struct PlanCache {
    entries: Mutex<Lru<StatementKey, Arc<Prepared>>>,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        PlanCache { entries: Mutex::new(Lru::new(capacity)) }
    }

    /// A cached plan still valid under `catalog_gen`, bumping its recency.
    /// A stale entry (planned under an older catalog) is dropped.
    pub fn get(&self, key: &StatementKey, catalog_gen: u64) -> Option<Arc<Prepared>> {
        let mut entries = self.entries.lock();
        let cached = entries.get(key).map(Arc::clone)?;
        if cached.catalog_generation() == catalog_gen {
            Some(cached)
        } else {
            entries.remove(key);
            None
        }
    }

    pub fn insert(&self, key: StatementKey, plan: Arc<Prepared>) {
        let size = key_bytes(&key) + plan.approx_bytes();
        self.entries.lock().insert(key, plan, size);
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by cached plans (keys included).
    pub fn bytes(&self) -> usize {
        self.entries.lock().bytes()
    }
}

/// One cached query result plus the versions it is valid for.
struct CachedResult {
    result: Arc<ResultSet>,
    table_ids: Vec<u32>,
    /// Version of each table in `table_ids`, snapshotted before execution.
    table_versions: Vec<u64>,
    catalog_gen: u64,
}

/// LRU cache of SELECT results, invalidated by table-generation counters.
pub struct ResultCache {
    entries: Mutex<Lru<StatementKey, CachedResult>>,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        ResultCache { entries: Mutex::new(Lru::new(capacity)) }
    }

    /// A cached result whose tables are all unchanged. `current_versions`
    /// must come from `db.table_versions(entry.table_ids)` — the closure
    /// receives the entry's table ids and returns their current versions.
    pub fn get(
        &self,
        key: &StatementKey,
        catalog_gen: u64,
        current_versions: impl FnOnce(&[u32]) -> Vec<u64>,
    ) -> Option<Arc<ResultSet>> {
        let mut entries = self.entries.lock();
        let (result, ids, versions, entry_gen) = {
            let entry = entries.get(key)?;
            (
                Arc::clone(&entry.result),
                entry.table_ids.clone(),
                entry.table_versions.clone(),
                entry.catalog_gen,
            )
        };
        // Version check runs inside the cache lock, so a concurrent writer
        // cannot swap the entry underneath us.
        if entry_gen == catalog_gen && current_versions(&ids) == versions {
            Some(result)
        } else {
            entries.remove(key);
            None
        }
    }

    pub fn insert(
        &self,
        key: StatementKey,
        result: Arc<ResultSet>,
        table_ids: Vec<u32>,
        table_versions: Vec<u64>,
        catalog_gen: u64,
    ) {
        let size = key_bytes(&key)
            + approx_result_bytes(&result)
            + (table_ids.len() + table_versions.len()) * std::mem::size_of::<u64>();
        self.entries.lock().insert(
            key,
            CachedResult { result, table_ids, table_versions, catalog_gen },
            size,
        );
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by cached results (keys included).
    pub fn bytes(&self) -> usize {
        self.entries.lock().bytes()
    }
}

fn key_bytes(key: &StatementKey) -> usize {
    key.normalized_sql.len() + key.space.len()
}

/// Approximate heap footprint of a result set: per-row/per-cell overhead
/// plus the variable payload of text and blob datums.
fn approx_result_bytes(rs: &ResultSet) -> usize {
    let cell_overhead = std::mem::size_of::<Datum>();
    let mut bytes = rs.columns.iter().map(|c| c.len()).sum::<usize>();
    for row in &rs.rows {
        bytes += row.len() * cell_overhead;
        for cell in row {
            bytes += match cell {
                Datum::Text(s) => s.len(),
                Datum::Blob(b) => b.len(),
                Datum::Opaque(_, b) => b.len(),
                _ => 0,
            };
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_folds_case_and_space() {
        assert_eq!(
            normalize_sql("SELECT  *\n FROM   T  WHERE name = 'MiXeD Case';"),
            "select * from t where name = 'MiXeD Case'"
        );
        assert_eq!(normalize_sql("select 1"), normalize_sql("  SELECT    1 ; "));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10, 100);
        lru.insert(2, 20, 50);
        assert_eq!(lru.bytes(), 150);
        assert_eq!(lru.get(&1), Some(&10)); // 2 becomes LRU
        lru.insert(3, 30, 25);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.get(&3), Some(&30));
        // Byte accounting followed the eviction of entry 2.
        assert_eq!(lru.bytes(), 125);
        // Re-inserting a live key replaces its size, not accumulates it.
        lru.insert(1, 11, 10);
        assert_eq!(lru.bytes(), 35);
    }

    #[test]
    fn result_cache_invalidated_by_table_version() {
        let cache = ResultCache::new(4);
        let key = StatementKey { normalized_sql: "select 1".into(), space: "public".into() };
        let rs = Arc::new(ResultSet {
            columns: vec!["x".into()],
            rows: vec![],
            affected: 0,
            explain: None,
        });
        cache.insert(key.clone(), Arc::clone(&rs), vec![7], vec![3], 1);
        // Same versions: hit.
        assert!(cache
            .get(&key, 1, |ids| {
                assert_eq!(ids, [7]);
                vec![3]
            })
            .is_some());
        // Bumped table version: miss, entry dropped.
        assert!(cache.get(&key, 1, |_| vec![4]).is_none());
        assert!(cache.is_empty());
        // Catalog generation moved: miss too.
        cache.insert(key.clone(), rs, vec![7], vec![3], 1);
        assert!(cache.get(&key, 2, |_| vec![3]).is_none());
    }
}
