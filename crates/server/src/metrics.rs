//! Server-wide counters and latency histograms, surfaced through
//! `SHOW STATS` and `SHOW METRICS`.
//!
//! Everything here is lock-free (`AtomicU64`) so the hot query path never
//! serializes on the metrics registry. The histogram type itself lives in
//! [`genalg_obs`] (log₂ buckets, one `fetch_add` per sample); this module
//! owns the server's counters and folds them into the unified
//! [`Snapshot`] under the `<subsystem>_<name>` naming convention — a plain
//! lexicographic sort then groups `cache_*`, `query_*`, `server_*`, …
//! families together in both renderings.

pub use genalg_obs::Histogram;
use genalg_obs::Snapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// The server's metrics registry. One instance per [`crate::Server`]; shared
/// by every session and worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries that completed successfully (any language, any kind).
    pub queries_ok: AtomicU64,
    /// Queries that returned an error to the client.
    pub queries_err: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_busy: AtomicU64,
    /// Jobs offered to the admission queue (accepted or shed). The pool's
    /// conservation law — checked by the load tests — is
    /// `jobs_submitted == jobs_completed + worker_panics + rejected_busy`
    /// once the queue has drained.
    pub jobs_submitted: AtomicU64,
    /// Jobs a worker ran to completion without panicking.
    pub jobs_completed: AtomicU64,
    /// Transactions rolled back by the expired-transaction sweep (the
    /// owning session went quiet — shed with `Busy` mid-transaction,
    /// dropped its connection, or simply stopped talking).
    pub txn_reaped: AtomicU64,
    /// Queries that failed with a storage-level I/O error
    /// ([`unidb::DbError::Io`]) — disk faults, not client mistakes.
    pub io_errors: AtomicU64,
    /// Jobs that panicked on a worker thread (the worker survived).
    pub worker_panics: AtomicU64,
    /// Plan-cache lookups that found a live prepared plan.
    pub plan_cache_hits: AtomicU64,
    /// Plan-cache lookups that had to parse + plan.
    pub plan_cache_misses: AtomicU64,
    /// Result-cache lookups answered without touching the engine.
    pub result_cache_hits: AtomicU64,
    /// Result-cache lookups that had to execute.
    pub result_cache_misses: AtomicU64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
    /// Currently open sessions.
    pub active_sessions: AtomicU64,
    /// Latency of read statements (SELECT / EXPLAIN / SHOW).
    pub read_latency: Histogram,
    /// Latency of write statements (DML / DDL / transactions).
    pub write_latency: Histogram,
    /// Time jobs spend in the admission queue between enqueue and worker
    /// pickup — the saturation signal `queue_depth` only hints at.
    pub queue_wait: Histogram,
}

impl Metrics {
    /// Bump the queue-depth gauge and maintain its high-water mark.
    pub fn enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Decrement the queue-depth gauge when a job leaves the queue.
    pub fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Fold every counter and histogram into `snap` under its exposition
    /// name. The service layer adds engine- and process-level families
    /// (`pool_*`, `exec_*`, `wal_*`, `etl_*`, `obs_*`) on top.
    pub fn collect_into(&self, snap: &mut Snapshot) {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        snap.counter("query_ok", g(&self.queries_ok));
        snap.counter("query_err", g(&self.queries_err));
        snap.counter("server_rejected_busy", g(&self.rejected_busy));
        snap.counter("server_jobs_submitted", g(&self.jobs_submitted));
        snap.counter("server_jobs_completed", g(&self.jobs_completed));
        snap.counter("txn_reaped", g(&self.txn_reaped));
        snap.counter("server_io_errors", g(&self.io_errors));
        snap.counter("server_worker_panics", g(&self.worker_panics));
        snap.counter("cache_plan_hits", g(&self.plan_cache_hits));
        snap.counter("cache_plan_misses", g(&self.plan_cache_misses));
        snap.counter("cache_result_hits", g(&self.result_cache_hits));
        snap.counter("cache_result_misses", g(&self.result_cache_misses));
        snap.gauge("server_queue_depth", g(&self.queue_depth));
        snap.gauge("server_queue_peak", g(&self.queue_peak));
        snap.gauge("server_active_sessions", g(&self.active_sessions));
        snap.histogram("query_read_latency", self.read_latency.snapshot());
        snap.histogram("query_write_latency", self.write_latency.snapshot());
        snap.histogram("query_queue_wait", self.queue_wait.snapshot());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_us(), (1 + 2 + 4 + 100 + 1000) / 5);
        // p50 falls in the bucket holding the third sample (4 µs → 3 bits →
        // upper bound 7).
        assert_eq!(h.quantile_us(0.5), 7);
        assert!(h.quantile_us(1.0) >= 1000);
        assert_eq!(Histogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn histogram_zero_microsecond_samples_stay_in_bucket_zero() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(400)); // rounds down to 0 µs
        h.record_us(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_us(), 0);
        // Every quantile of an all-zero histogram is the zero bucket.
        assert_eq!(h.quantile_us(0.0), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(1.0), 0);
    }

    #[test]
    fn histogram_single_sample_dominates_every_quantile() {
        let h = Histogram::default();
        h.record_us(10); // 4 significant bits → bucket upper bound 15
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 15, "q={q}");
        }
    }

    #[test]
    fn histogram_quantile_extremes_clamp() {
        let h = Histogram::default();
        h.record_us(1);
        h.record_us(1000); // 10 bits → upper bound 1023
                           // q below 0 clamps to the first sample's bucket, q above 1 to the
                           // last — out-of-range inputs never panic or index out of bounds.
        assert_eq!(h.quantile_us(-3.0), 1);
        assert_eq!(h.quantile_us(0.0), 1);
        assert_eq!(h.quantile_us(1.0), 1023);
        assert_eq!(h.quantile_us(7.5), 1023);
    }

    #[test]
    fn histogram_top_bucket_saturates_not_overflows() {
        let h = Histogram::default();
        // Anything with ≥ 31 significant bits lands in the open-ended top
        // bucket; its quantile reports u64::MAX (rendered +Inf).
        h.record_us(u64::MAX);
        h.record(Duration::from_secs(40_000_000));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let m = Metrics::default();
        m.enqueue();
        m.enqueue();
        m.dequeue();
        m.enqueue();
        let mut snap = Snapshot::new();
        m.collect_into(&mut snap);
        let rows = snap.stats_rows();
        let get = |k: &str| rows.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("server_queue_depth"), 2);
        assert_eq!(get("server_queue_peak"), 2);
    }
}
