//! Server-wide counters and latency histograms, surfaced through
//! `SHOW STATS`.
//!
//! Everything here is lock-free (`AtomicU64`) so the hot query path never
//! serializes on the metrics registry. Latencies go into log₂-bucketed
//! histograms: bucket *i* holds samples whose duration in microseconds has
//! *i* significant bits, which gives ~2× resolution from 1 µs to ~18 minutes
//! in 31 buckets with a single `fetch_add` per sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// Approximate quantile: the upper bound (in µs) of the bucket containing
    /// the q-th sample. `q` in [0, 1].
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i holds values with i significant bits: upper bound
                // 2^i - 1 (bucket 0 is the zero-microsecond bucket).
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// The server's metrics registry. One instance per [`crate::Server`]; shared
/// by every session and worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries that completed successfully (any language, any kind).
    pub queries_ok: AtomicU64,
    /// Queries that returned an error to the client.
    pub queries_err: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    pub rejected_busy: AtomicU64,
    /// Queries that failed with a storage-level I/O error
    /// ([`unidb::DbError::Io`]) — disk faults, not client mistakes.
    pub io_errors: AtomicU64,
    /// Jobs that panicked on a worker thread (the worker survived).
    pub worker_panics: AtomicU64,
    /// Plan-cache lookups that found a live prepared plan.
    pub plan_cache_hits: AtomicU64,
    /// Plan-cache lookups that had to parse + plan.
    pub plan_cache_misses: AtomicU64,
    /// Result-cache lookups answered without touching the engine.
    pub result_cache_hits: AtomicU64,
    /// Result-cache lookups that had to execute.
    pub result_cache_misses: AtomicU64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
    /// Currently open sessions.
    pub active_sessions: AtomicU64,
    /// Latency of read statements (SELECT / EXPLAIN / SHOW).
    pub read_latency: Histogram,
    /// Latency of write statements (DML / DDL / transactions).
    pub write_latency: Histogram,
}

impl Metrics {
    /// Bump the queue-depth gauge and maintain its high-water mark.
    pub fn enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Decrement the queue-depth gauge when a job leaves the queue.
    pub fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// All counters as `(name, value)` rows, sorted by name — the body of
    /// `SHOW STATS`.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut rows = vec![
            ("active_sessions".to_string(), g(&self.active_sessions)),
            ("plan_cache_hits".to_string(), g(&self.plan_cache_hits)),
            ("plan_cache_misses".to_string(), g(&self.plan_cache_misses)),
            ("io_errors".to_string(), g(&self.io_errors)),
            ("queries_err".to_string(), g(&self.queries_err)),
            ("worker_panics".to_string(), g(&self.worker_panics)),
            ("queries_ok".to_string(), g(&self.queries_ok)),
            ("queue_depth".to_string(), g(&self.queue_depth)),
            ("queue_peak".to_string(), g(&self.queue_peak)),
            ("read_count".to_string(), self.read_latency.count()),
            ("read_mean_us".to_string(), self.read_latency.mean_us()),
            ("read_p50_us".to_string(), self.read_latency.quantile_us(0.50)),
            ("read_p95_us".to_string(), self.read_latency.quantile_us(0.95)),
            ("rejected_busy".to_string(), g(&self.rejected_busy)),
            ("result_cache_hits".to_string(), g(&self.result_cache_hits)),
            ("result_cache_misses".to_string(), g(&self.result_cache_misses)),
            ("write_count".to_string(), self.write_latency.count()),
            ("write_mean_us".to_string(), self.write_latency.mean_us()),
            ("write_p50_us".to_string(), self.write_latency.quantile_us(0.50)),
            ("write_p95_us".to_string(), self.write_latency.quantile_us(0.95)),
        ];
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_us(), (1 + 2 + 4 + 100 + 1000) / 5);
        // p50 falls in the bucket holding the third sample (4 µs → 3 bits →
        // upper bound 7).
        assert_eq!(h.quantile_us(0.5), 7);
        assert!(h.quantile_us(1.0) >= 1000);
        assert_eq!(Histogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let m = Metrics::default();
        m.enqueue();
        m.enqueue();
        m.dequeue();
        m.enqueue();
        let snap = m.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("queue_depth"), 2);
        assert_eq!(get("queue_peak"), 2);
    }
}
