//! The query service: sessions in, result sets out.
//!
//! [`QueryService::execute`] is the single entry point every transport
//! (TCP handler, in-process client, benches) funnels through. It:
//!
//! 1. resolves the session to a role (public sessions may only read);
//! 2. compiles BQL to the extended SQL of the Unifying Database (§6.4);
//! 3. intercepts the observability statements — `SHOW STATS`,
//!    `SHOW METRICS` (Prometheus text), `SHOW SLOW QUERIES`, `SHOW TRACE`;
//! 4. routes reads through the plan + result caches, writes straight to
//!    the engine (whose generation counters invalidate cached state).
//!
//! Both `SHOW STATS` and `SHOW METRICS` render the same
//! [`genalg_obs::Snapshot`], built in one place ([`QueryService::snapshot`]); the
//! two surfaces can never disagree about a value.

use crate::cache::{normalize_sql, PlanCache, ResultCache, StatementKey};
use crate::error::{ServerError, ServerResult};
use crate::metrics::Metrics;
use crate::protocol::Lang;
use crate::session::{SessionId, SessionKind, SessionManager};
use genalg_obs::{
    incident_dir, CacheTier, Execution, FingerprintRegistry, IncidentBundle, IncidentRecorder,
    MetricRing, Snapshot, DEFAULT_HISTORY_SLOTS,
};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unidb::{Database, Datum, DbError, ResultSet};

/// Distinct query shapes the workload registry tracks before overflowing.
const FINGERPRINT_CAPACITY: usize = 256;
/// Plan-change audit entries retained (oldest dropped first).
const PLAN_AUDIT_CAPACITY: usize = 128;
/// Minimum spacing between automatically recorded incident bundles.
const INCIDENT_MIN_INTERVAL: Duration = Duration::from_secs(5);
/// Transaction conflicts in one sampler interval that count as a storm.
const CONFLICT_STORM_THRESHOLD: u64 = 256;

/// Tuning knobs for [`QueryService`] and [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission-queue slots; submissions beyond this bounce with `Busy`.
    pub queue_capacity: usize,
    /// Prepared-plan LRU capacity.
    pub plan_cache_size: usize,
    /// Result LRU capacity.
    pub result_cache_size: usize,
    /// Master switch for both caches (off = every query plans + executes).
    pub caches_enabled: bool,
    /// Statements at or above this latency land in the slow-query log.
    pub slow_query_threshold_us: u64,
    /// How many slowest statements `SHOW SLOW QUERIES` retains (0 = off).
    pub slow_query_capacity: usize,
    /// Enable the process-global span tracer at startup (it can also be
    /// pre-enabled with the `GENALG_TRACE` environment variable).
    pub tracing: bool,
    /// Idle limit for an interactive transaction: a session whose open
    /// transaction has not run a statement for this long is rolled back
    /// on its next use (abandoned `BEGIN`s must not pin snapshots — or
    /// MVCC version chains — forever).
    pub txn_timeout_ms: u64,
    /// Interval of the background metrics sampler feeding
    /// `SHOW HISTORY` and the incident triggers (0 disables it).
    pub sampler_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_capacity: 64,
            plan_cache_size: 256,
            result_cache_size: 256,
            caches_enabled: true,
            slow_query_threshold_us: 100_000,
            slow_query_capacity: 32,
            tracing: false,
            txn_timeout_ms: 30_000,
            sampler_interval_ms: 1_000,
        }
    }
}

impl ServerConfig {
    /// The default config with every `GENALG_*` environment override
    /// applied — the entry point operators (and the load harness) use to
    /// tune a server without recompiling.
    pub fn from_env() -> Self {
        Self::default().with_env_overrides()
    }

    /// Apply environment overrides on top of `self` (programmatic defaults
    /// lose to the environment, so a deployed knob always wins):
    ///
    /// | variable | field |
    /// |---|---|
    /// | `GENALG_WORKERS` | `workers` (min 1) |
    /// | `GENALG_QUEUE_CAPACITY` | `queue_capacity` (min 1) |
    /// | `GENALG_PLAN_CACHE_SIZE` | `plan_cache_size` |
    /// | `GENALG_RESULT_CACHE_SIZE` | `result_cache_size` |
    /// | `GENALG_CACHES` | `caches_enabled` (`0` disables) |
    /// | `GENALG_SLOW_QUERY_US` | `slow_query_threshold_us` |
    /// | `GENALG_SLOW_QUERY_CAPACITY` | `slow_query_capacity` |
    /// | `GENALG_TXN_TIMEOUT_MS` | `txn_timeout_ms` |
    /// | `GENALG_SAMPLER_MS` | `sampler_interval_ms` (0 disables) |
    ///
    /// (`GENALG_TRACE` already enables tracing process-wide via
    /// [`genalg_obs::tracer`]; there is no config override for it here.)
    pub fn with_env_overrides(mut self) -> Self {
        fn env<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
        }
        if let Some(v) = env::<usize>("GENALG_WORKERS") {
            self.workers = v.max(1);
        }
        if let Some(v) = env::<usize>("GENALG_QUEUE_CAPACITY") {
            self.queue_capacity = v.max(1);
        }
        if let Some(v) = env("GENALG_PLAN_CACHE_SIZE") {
            self.plan_cache_size = v;
        }
        if let Some(v) = env("GENALG_RESULT_CACHE_SIZE") {
            self.result_cache_size = v;
        }
        if let Some(v) = env::<u8>("GENALG_CACHES") {
            self.caches_enabled = v != 0;
        }
        if let Some(v) = env("GENALG_SLOW_QUERY_US") {
            self.slow_query_threshold_us = v;
        }
        if let Some(v) = env("GENALG_SLOW_QUERY_CAPACITY") {
            self.slow_query_capacity = v;
        }
        if let Some(v) = env("GENALG_TXN_TIMEOUT_MS") {
            self.txn_timeout_ms = v;
        }
        if let Some(v) = env("GENALG_SAMPLER_MS") {
            self.sampler_interval_ms = v;
        }
        self
    }
}

/// One statement captured by the slow-query log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Normalized statement text (lowercased, whitespace-collapsed) — the
    /// cache key, so repeats of the same shape are recognizable.
    pub sql: String,
    /// End-to-end service latency (admission excluded), microseconds.
    pub latency_us: u64,
    /// Session kind label: `public`, `user:<name>`, or `maintainer`.
    pub role: String,
    /// Root plan operator, or a statement-kind tag for uncached paths.
    pub plan: String,
    /// Which cache tier answered: `result`, `plan`, `miss`, or `bypass`.
    pub cache: &'static str,
}

/// Bounded log of the N slowest statements seen so far, slowest first.
#[derive(Debug)]
struct SlowQueryLog {
    entries: Mutex<Vec<SlowQuery>>,
    capacity: usize,
}

impl SlowQueryLog {
    fn new(capacity: usize) -> Self {
        SlowQueryLog { entries: Mutex::new(Vec::new()), capacity }
    }

    fn record(&self, q: SlowQuery) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock();
        entries.push(q);
        entries.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        entries.truncate(self.capacity);
    }

    fn snapshot(&self) -> Vec<SlowQuery> {
        self.entries.lock().clone()
    }
}

/// How a read statement was answered — feeds the slow-query log.
struct QueryPath {
    plan: String,
    cache: &'static str,
}

/// The transport-independent query engine front end.
pub struct QueryService {
    db: Arc<Database>,
    sessions: SessionManager,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    metrics: Arc<Metrics>,
    caches_enabled: bool,
    slow_threshold_us: u64,
    slow_log: SlowQueryLog,
    fingerprints: FingerprintRegistry,
    history: MetricRing,
    recorder: IncidentRecorder,
    txn_timeout_ms: u64,
    /// Clock base for the reap rate limiter below.
    reap_epoch: Instant,
    /// Milliseconds (since `reap_epoch`) of the last global expired-txn
    /// sweep — a CAS gate so at most one statement per period pays for it.
    last_reap_ms: std::sync::atomic::AtomicU64,
}

impl QueryService {
    pub fn new(db: Arc<Database>, config: &ServerConfig) -> Self {
        let metrics = Arc::new(Metrics::default());
        if config.tracing {
            // Enable-only: never turn a GENALG_TRACE-enabled tracer off.
            genalg_obs::tracer().set_enabled(true);
        }
        QueryService {
            db,
            sessions: SessionManager::new(Arc::clone(&metrics)),
            plan_cache: PlanCache::new(config.plan_cache_size),
            result_cache: ResultCache::new(config.result_cache_size),
            metrics,
            caches_enabled: config.caches_enabled,
            slow_threshold_us: config.slow_query_threshold_us,
            slow_log: SlowQueryLog::new(config.slow_query_capacity),
            fingerprints: FingerprintRegistry::new(FINGERPRINT_CAPACITY, PLAN_AUDIT_CAPACITY),
            history: MetricRing::new(DEFAULT_HISTORY_SLOTS),
            recorder: IncidentRecorder::new(incident_dir(), INCIDENT_MIN_INTERVAL),
            txn_timeout_ms: config.txn_timeout_ms,
            reap_epoch: Instant::now(),
            last_reap_ms: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Current contents of the slow-query log, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log.snapshot()
    }

    /// The workload registry: per-fingerprint statistics and the
    /// plan-change audit ring.
    pub fn fingerprints(&self) -> &FingerprintRegistry {
        &self.fingerprints
    }

    /// The metrics time-series ring behind `SHOW HISTORY`.
    pub fn history(&self) -> &MetricRing {
        &self.history
    }

    /// The incident flight recorder (bundle directory, rate limiting).
    pub fn recorder(&self) -> &IncidentRecorder {
        &self.recorder
    }

    /// One sampler tick: push the current snapshot into the history ring
    /// and run the automatic incident triggers on the resulting delta.
    /// Called by the background [`genalg_obs::Sampler`] the [`crate::Server`]
    /// spawns; public so tests and harnesses can tick deterministically.
    pub fn sample_tick(&self) {
        let delta = self.history.push(self.snapshot());
        if delta.value("server_worker_panics").unwrap_or(0) > 0 {
            self.record_incident("worker_panic");
        } else if delta.value("txn_conflicts").unwrap_or(0) >= CONFLICT_STORM_THRESHOLD {
            self.record_incident("conflict_storm");
        }
    }

    /// Write an incident bundle for `reason` through the rate limiter,
    /// returning the path if one was written.
    pub fn record_incident(&self, reason: &str) -> Option<std::path::PathBuf> {
        let bundle = self.incident_bundle(reason);
        self.recorder.record(&bundle, reason)
    }

    /// Assemble a self-contained diagnostic bundle: current stats, hottest
    /// fingerprints, plan-change tail, metric history for the headline
    /// rates, the slow-query log, and the trace-ring tail.
    pub fn incident_bundle(&self, reason: &str) -> IncidentBundle {
        // An idle server may never have ticked; force one sample so the
        // history section is never empty in a bundle.
        if self.history.is_empty() {
            self.sample_tick();
        }
        let mut bundle = IncidentBundle::new(reason);
        let stats = self
            .snapshot()
            .stats_rows()
            .into_iter()
            .map(|(name, value)| format!("{name} {value}"))
            .collect::<Vec<_>>()
            .join("\n");
        bundle.section("stats", stats);
        let fingerprints = self
            .fingerprints
            .top(10)
            .into_iter()
            .map(|fp| {
                format!(
                    "{} calls={} errors={} p95_us={} rows_out={} plan={} :: {}",
                    fp.id,
                    fp.executions,
                    fp.errors,
                    fp.latency.quantile_us(0.95),
                    fp.rows_out,
                    fp.plan_label,
                    fp.text
                )
            })
            .collect::<Vec<_>>()
            .join("\n");
        bundle.section("fingerprints", fingerprints);
        let changes = self
            .fingerprints
            .plan_changes()
            .into_iter()
            .map(|c| {
                format!(
                    "seq={} fp={} {}({} rows) -> {}({} rows) stats_gen={} catalog_gen={} :: {}",
                    c.seq,
                    c.fingerprint,
                    c.before_label,
                    c.before_est_rows,
                    c.after_label,
                    c.after_est_rows,
                    c.stats_generation,
                    c.catalog_generation,
                    c.text
                )
            })
            .collect::<Vec<_>>()
            .join("\n");
        bundle.section("plan changes", changes);
        let mut history = String::new();
        for metric in ["query_ok", "query_err", "txn_conflicts", "query_read_latency_p95_us"] {
            let series = self
                .history
                .history(metric)
                .into_iter()
                .map(|(slot, v)| format!("{slot}:{v}"))
                .collect::<Vec<_>>()
                .join(" ");
            if !series.is_empty() {
                history.push_str(&format!("{metric}: {series}\n"));
            }
        }
        bundle.section("history", history);
        let slow = self
            .slow_log
            .snapshot()
            .into_iter()
            .map(|q| format!("{}us [{}] {} :: {}", q.latency_us, q.cache, q.plan, q.sql))
            .collect::<Vec<_>>()
            .join("\n");
        bundle.section("slow queries", slow);
        let trace = genalg_obs::tracer()
            .spans()
            .into_iter()
            .map(|r| r.render())
            .collect::<Vec<_>>()
            .join("\n");
        bundle.section("trace", trace);
        bundle
    }

    /// Open a session of the given kind.
    pub fn open_session(&self, kind: SessionKind) -> SessionId {
        self.sessions.open(kind)
    }

    /// Close a session (idempotent). A transaction left open by the
    /// session is rolled back — a disconnecting client must not keep a
    /// snapshot pinned.
    pub fn close_session(&self, id: SessionId) {
        if let Some(txn) = self.sessions.close(id) {
            let _ = self.db.txn_rollback(txn.id);
        }
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.count()
    }

    /// Roll back every transaction whose session has been idle past the
    /// timeout, regardless of whether that session ever speaks again.
    /// Returns how many were reaped. Runs automatically (rate-limited)
    /// from the statement path; public so harnesses and tests can force a
    /// deterministic sweep.
    ///
    /// This closes the gap the lazy per-session check leaves open: a
    /// session shed with `Busy` mid-transaction never reaches the service,
    /// so nothing touches its idle clock — and if the client gives up (or
    /// its connection drops without a close frame), the per-session reap
    /// never fires and the transaction would pin its MVCC snapshot
    /// forever. The sweep reaps on *other* sessions' traffic instead.
    pub fn reap_expired_txns(&self) -> usize {
        // SessionId 0 is never issued, so nothing is exempt.
        self.reap_except(SessionId(0))
    }

    fn reap_except(&self, speaking: SessionId) -> usize {
        let expired = self.sessions.take_expired_txns(self.txn_timeout_ms, speaking);
        for txn in &expired {
            let _ = self.db.txn_rollback(txn.id);
        }
        if !expired.is_empty() {
            self.metrics.txn_reaped.fetch_add(expired.len() as u64, Ordering::Relaxed);
        }
        expired.len()
    }

    /// Rate-limited global sweep, paid for by at most one statement per
    /// period (a quarter of the timeout, clamped to [10 ms, 2 s]).
    fn maybe_reap(&self, speaking: SessionId) {
        let now_ms = self.reap_epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        let period = (self.txn_timeout_ms / 4).clamp(10, 2_000);
        let last = self.last_reap_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < period {
            return;
        }
        // Losing the CAS means another statement is already sweeping.
        if self
            .last_reap_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.reap_except(speaking);
    }

    /// Execute one statement on behalf of a session.
    pub fn execute(&self, session: SessionId, lang: Lang, text: &str) -> ServerResult<ResultSet> {
        let result = self.execute_inner(session, lang, text);
        match &result {
            Ok(_) => {
                self.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.metrics.queries_err.fetch_add(1, Ordering::Relaxed);
                // Storage faults are the operator's problem, not the
                // client's — count them separately so `SHOW STATS` makes a
                // sick disk visible.
                if matches!(e, ServerError::Db(DbError::Io(_))) {
                    self.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        result
    }

    fn execute_inner(&self, session: SessionId, lang: Lang, text: &str) -> ServerResult<ResultSet> {
        let kind = self.sessions.kind(session).ok_or(ServerError::UnknownSession)?;
        // Abandoned transactions on *other* sessions are reaped by a
        // rate-limited global sweep riding on any statement (including the
        // SHOW family) — the owning session may never speak again (shed
        // with Busy mid-transaction, or its connection dropped), so its
        // own lazy check below would never run.
        self.maybe_reap(session);
        let tracer = genalg_obs::tracer();
        let sql = match lang {
            Lang::Sql => text.to_string(),
            Lang::Bql => {
                let _span = tracer.span("server.parse_bql");
                genalg_bql::parse(text)
                    .and_then(|q| q.to_sql())
                    .map_err(|e| ServerError::Bql(e.to_string()))?
            }
        };
        let normalized = normalize_sql(&sql);
        match normalized.as_str() {
            "show stats" => return Ok(self.stats_result()),
            "show metrics" => return Ok(self.metrics_result()),
            "show slow queries" => return Ok(self.slow_queries_result()),
            "show trace" => return Ok(self.trace_result()),
            "show workload" => return Ok(self.workload_result()),
            "show plan changes" => return Ok(self.plan_changes_result()),
            _ => {}
        }
        if let Some(rest) = normalized.strip_prefix("show history") {
            return self.history_result(rest.trim());
        }
        // The speaking session's reaping stays lazy and inline: the
        // deadline is checked when it next speaks. An expired transaction
        // is rolled back and the statement that found it fails, so the
        // client learns its `BEGIN` is gone before anything half-applies.
        if let Some(txn) = self.sessions.txn(session) {
            let idle_ms = txn.last_used.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
            if idle_ms >= self.txn_timeout_ms {
                self.sessions.clear_txn(session);
                let _ = self.db.txn_rollback(txn.id);
                return Err(ServerError::Db(DbError::Txn(format!(
                    "transaction timed out after {idle_ms} ms idle (limit {} ms) and was \
                     rolled back",
                    self.txn_timeout_ms
                ))));
            }
        }
        let is_read = normalized.starts_with("select") || normalized.starts_with("explain");
        if !is_read && !kind.can_write() {
            return Err(ServerError::ReadOnly(
                "public sessions may only run SELECT / EXPLAIN / SHOW STATS".into(),
            ));
        }
        let role = kind.role();
        match normalized.as_str() {
            "begin" => {
                if self.sessions.txn(session).is_some() {
                    return Err(ServerError::Db(DbError::Txn(
                        "nested transactions are not supported".into(),
                    )));
                }
                let txn_id = self.db.txn_begin();
                self.sessions.set_txn(session, txn_id);
                return Ok(empty_result());
            }
            "commit" | "rollback" => {
                let verb = if normalized == "commit" { "COMMIT" } else { "ROLLBACK" };
                let txn = self.sessions.clear_txn(session).ok_or_else(|| {
                    ServerError::Db(DbError::Txn(format!("{verb} without BEGIN")))
                })?;
                let outcome = if normalized == "commit" {
                    self.db.txn_commit(txn.id)
                } else {
                    self.db.txn_rollback(txn.id)
                };
                return outcome.map(|()| empty_result()).map_err(ServerError::Db);
            }
            _ => {}
        }
        let mut span = tracer.span("server.query");
        span.field("read", is_read);
        let mut path = QueryPath { plan: statement_tag(&normalized), cache: "bypass" };
        // Attribution inputs: the admission wait stamped by the worker that
        // picked this request up, and the engine's page counters before
        // execution (deltas are approximate under concurrency — shared
        // counters attribute *somebody's* pages to concurrent statements).
        let queue_wait_us = crate::queue::take_last_queue_wait_us();
        let pages_before = (self.db.scan_pages_read(), self.db.scan_pages_skipped());
        let start = Instant::now();
        let result = if let Some(txn) = self.sessions.txn(session) {
            // Inside an interactive transaction every statement goes to
            // its snapshot + write-set, bypassing both caches (a cached
            // latest-state result would violate snapshot isolation).
            path.cache = "txn";
            let _exec = tracer.span_with_parent("server.execute", span.id());
            let outcome = self.db.txn_execute_as(txn.id, &sql, &role).map_err(ServerError::Db);
            self.sessions.touch_txn(session);
            outcome
        } else if is_read {
            self.execute_read(&sql, normalized.clone(), &role, &mut path, span.id())
        } else {
            let _exec = tracer.span_with_parent("server.execute", span.id());
            self.db.execute_as(&sql, &role).map_err(ServerError::Db)
        };
        let elapsed = start.elapsed();
        let hist = if is_read { &self.metrics.read_latency } else { &self.metrics.write_latency };
        hist.record(elapsed);
        let latency_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        span.field("latency_us", latency_us);
        let rows_out = match &result {
            Ok(rs) if !rs.rows.is_empty() => rs.rows.len() as u64,
            Ok(rs) => rs.affected,
            Err(_) => 0,
        };
        self.fingerprints.record(&Execution {
            normalized: &normalized,
            latency_us,
            ok: result.is_ok(),
            tier: CacheTier::from_label(path.cache),
            rows_out,
            pages_read: self.db.scan_pages_read().saturating_sub(pages_before.0),
            pages_skipped: self.db.scan_pages_skipped().saturating_sub(pages_before.1),
            queue_wait_us,
        });
        if result.is_ok() && latency_us >= self.slow_threshold_us {
            self.slow_log.record(SlowQuery {
                sql: normalized,
                latency_us,
                role: kind_label(&kind),
                plan: std::mem::take(&mut path.plan),
                cache: path.cache,
            });
        }
        result
    }

    fn execute_read(
        &self,
        sql: &str,
        normalized: String,
        role: &unidb::Role,
        path: &mut QueryPath,
        parent: u64,
    ) -> ServerResult<ResultSet> {
        let tracer = genalg_obs::tracer();
        // EXPLAIN and other non-SELECT reads bypass the caches entirely.
        if !normalized.starts_with("select") || !self.caches_enabled {
            let _exec = tracer.span_with_parent("server.execute", parent);
            return self.db.execute_as(sql, role).map_err(ServerError::Db);
        }
        let key = StatementKey { normalized_sql: normalized, space: role.default_space().into() };
        let catalog_gen = self.db.catalog_generation();
        let lookup = tracer.span_with_parent("server.cache_lookup", parent);
        if let Some(cached) =
            self.result_cache.get(&key, catalog_gen, |ids| self.db.table_versions(ids))
        {
            self.metrics.result_cache_hits.fetch_add(1, Ordering::Relaxed);
            path.cache = "result";
            return Ok((*cached).clone());
        }
        drop(lookup);
        self.metrics.result_cache_misses.fetch_add(1, Ordering::Relaxed);

        // Two attempts: a plan can go stale between lookup and execution if
        // DDL slips in; re-prepare once and retry before giving up.
        for attempt in 0..2 {
            let catalog_gen = self.db.catalog_generation();
            let plan = match self.plan_cache.get(&key, catalog_gen) {
                Some(plan) => {
                    self.metrics.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                    path.cache = "plan";
                    plan
                }
                None => {
                    self.metrics.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
                    path.cache = "miss";
                    let plan = {
                        let _span = tracer.span_with_parent("server.plan", parent);
                        Arc::new(self.db.prepare_as(sql, role)?)
                    };
                    self.plan_cache.insert(key.clone(), Arc::clone(&plan));
                    plan
                }
            };
            path.plan = plan.root_label();
            // Every planned execution reports its plan hash; the registry
            // records an audit entry only when the hash flips. The audit
            // carries the access path, not the root label — an index
            // swapping in under an unchanged root is the interesting case.
            self.fingerprints.observe_plan(
                &key.normalized_sql,
                plan.plan_hash(),
                &plan.access_label(),
                plan.estimated_rows(),
                plan.stats_generation(),
                plan.catalog_generation(),
            );
            // Version snapshot *before* execution: a write landing in the
            // window makes the cached entry miss (safe), never hit stale.
            let versions = self.db.table_versions(plan.table_ids());
            let outcome = {
                let _span = tracer.span_with_parent("server.execute", parent);
                self.db.execute_prepared(&plan)
            };
            match outcome {
                Ok(rs) => {
                    let _span = tracer.span_with_parent("server.cache_fill", parent);
                    self.result_cache.insert(
                        key,
                        Arc::new(rs.clone()),
                        plan.table_ids().to_vec(),
                        versions,
                        plan.catalog_generation(),
                    );
                    return Ok(rs);
                }
                Err(DbError::Stale(_)) if attempt == 0 => continue,
                Err(e) => return Err(ServerError::Db(e)),
            }
        }
        unreachable!("second attempt either returns or errors")
    }

    /// The one snapshot both `SHOW STATS` and `SHOW METRICS` render: the
    /// server's own registry plus the engine-level (`pool_*`, `exec_*`,
    /// `wal_*`, `cache_*_entries`) and process-level (`etl_*`, `obs_*`)
    /// families. Public so harnesses can take phase baselines and diff
    /// them with [`Snapshot::delta_since`].
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new();
        self.metrics.collect_into(&mut s);
        let (pool_hits, pool_misses, pool_evictions) = self.db.pool_stats();
        s.counter("pool_hits", pool_hits);
        s.counter("pool_misses", pool_misses);
        s.counter("pool_evictions", pool_evictions);
        s.gauge("cache_plan_entries", self.plan_cache.len() as u64);
        s.gauge("cache_plan_bytes", self.plan_cache.bytes() as u64);
        s.gauge("cache_result_entries", self.result_cache.len() as u64);
        s.gauge("cache_result_bytes", self.result_cache.bytes() as u64);
        s.gauge("exec_parallelism", self.db.parallelism() as u64);
        s.counter("exec_scan_pages_read", self.db.scan_pages_read());
        s.counter("exec_scan_pages_skipped", self.db.scan_pages_skipped());
        s.counter("exec_stats_rebuilt", self.db.stats_rebuilt());
        let wal = self.db.wal_stats();
        s.counter("wal_appends", wal.appends);
        s.counter("wal_syncs", wal.syncs);
        s.counter("wal_sync_failures", wal.sync_failures);
        let txn = self.db.txn_stats();
        s.counter("txn_begun", txn.begun);
        s.counter("txn_committed", txn.committed);
        s.counter("txn_aborted", txn.aborted);
        s.counter("txn_conflicts", txn.conflicts);
        s.counter("txn_versions_pruned", txn.versions_pruned);
        s.histogram("txn_duration", self.db.txn_duration());
        let etl = genalg_obs::etl_counters();
        let g = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
        s.counter("etl_refresh_rounds", g(&etl.refresh_rounds));
        s.counter("etl_deltas", g(&etl.deltas));
        s.counter("etl_upserts", g(&etl.upserts));
        s.counter("etl_deletes", g(&etl.deletes));
        s.counter("etl_source_failures", g(&etl.source_failures));
        s.counter("etl_retries", g(&etl.retries));
        let tracer = genalg_obs::tracer();
        s.counter("obs_spans_recorded", tracer.recorded());
        s.counter("obs_spans_dropped", tracer.dropped());
        s.gauge("obs_tracing_enabled", u64::from(tracer.enabled()));
        s.gauge("obs_fingerprints", self.fingerprints.len() as u64);
        s.counter("obs_fingerprint_overflow", self.fingerprints.overflow());
        s.counter("obs_plan_changes", self.fingerprints.plan_change_count());
        s.gauge("obs_history_slots", self.history.len() as u64);
        s.counter("obs_incidents_written", self.recorder.written());
        // Per-fingerprint families carry only the stable 16-hex id as a
        // label (never the SQL text) so exposition output stays bounded;
        // the id → text mapping lives in `SHOW WORKLOAD`. Labeled samples
        // render in `SHOW METRICS` only — `stats_rows()` ignores them, so
        // the pinned golden stat-name list stays workload-independent.
        for fp in self.fingerprints.snapshot() {
            let labels: &[(&str, &str)] = &[("fingerprint", &fp.id)];
            s.labeled_counter("query_fingerprint_executions", labels, fp.executions);
            s.labeled_counter("query_fingerprint_errors", labels, fp.errors);
            s.labeled_counter("query_fingerprint_rows_out", labels, fp.rows_out);
        }
        s
    }

    /// `SHOW STATS` as a two-column result set, sorted by name (which
    /// groups counters by subsystem prefix).
    fn stats_result(&self) -> ResultSet {
        let rows = self
            .snapshot()
            .stats_rows()
            .into_iter()
            .map(|(name, value)| vec![Datum::Text(name), Datum::Int(value as i64)])
            .collect();
        ResultSet { columns: vec!["stat".into(), "value".into()], rows, affected: 0, explain: None }
    }

    /// `SHOW METRICS`: the same snapshot in Prometheus text exposition
    /// format, one line per row.
    fn metrics_result(&self) -> ResultSet {
        let text = self.snapshot().prometheus("genalg");
        let rows = text.lines().map(|l| vec![Datum::Text(l.to_string())]).collect();
        ResultSet { columns: vec!["metrics".into()], rows, affected: 0, explain: None }
    }

    /// `SHOW SLOW QUERIES`: the retained slowest statements, slowest first.
    fn slow_queries_result(&self) -> ResultSet {
        let rows = self
            .slow_log
            .snapshot()
            .into_iter()
            .map(|q| {
                vec![
                    Datum::Text(q.sql),
                    Datum::Int(q.latency_us as i64),
                    Datum::Text(q.role),
                    Datum::Text(q.plan),
                    Datum::Text(q.cache.to_string()),
                ]
            })
            .collect();
        ResultSet {
            columns: vec![
                "query".into(),
                "latency_us".into(),
                "role".into(),
                "plan".into(),
                "cache".into(),
            ],
            rows,
            affected: 0,
            explain: None,
        }
    }

    /// `SHOW WORKLOAD`: every tracked query fingerprint, hottest first —
    /// per-shape execution counts, latency quantiles, cache-tier hits, and
    /// cumulative resource attribution.
    fn workload_result(&self) -> ResultSet {
        let rows = self
            .fingerprints
            .snapshot()
            .into_iter()
            .map(|fp| {
                vec![
                    Datum::Text(fp.id),
                    Datum::Text(fp.text),
                    Datum::Int(fp.executions as i64),
                    Datum::Int(fp.errors as i64),
                    Datum::Int(fp.latency.quantile_us(0.5) as i64),
                    Datum::Int(fp.latency.quantile_us(0.95) as i64),
                    Datum::Int(fp.tiers[0] as i64),
                    Datum::Int(fp.tiers[1] as i64),
                    Datum::Int(fp.rows_out as i64),
                    Datum::Int(fp.pages_read as i64),
                    Datum::Int(fp.pages_skipped as i64),
                    Datum::Int(fp.queue_wait_us as i64),
                    Datum::Text(fp.plan_label),
                ]
            })
            .collect();
        ResultSet {
            columns: vec![
                "fingerprint".into(),
                "query".into(),
                "calls".into(),
                "errors".into(),
                "p50_us".into(),
                "p95_us".into(),
                "result_hits".into(),
                "plan_hits".into(),
                "rows_out".into(),
                "pages_read".into(),
                "pages_skipped".into(),
                "queue_wait_us".into(),
                "plan".into(),
            ],
            rows,
            affected: 0,
            explain: None,
        }
    }

    /// `SHOW PLAN CHANGES`: the plan-flip audit ring, oldest first — what
    /// the planner chose before and after, its row estimates, and the
    /// stats/catalog generations the new plan was built under.
    fn plan_changes_result(&self) -> ResultSet {
        let rows = self
            .fingerprints
            .plan_changes()
            .into_iter()
            .map(|c| {
                vec![
                    Datum::Int(c.seq as i64),
                    Datum::Text(c.fingerprint),
                    Datum::Text(c.text),
                    Datum::Text(c.before_label),
                    Datum::Text(c.after_label),
                    Datum::Text(format!("{:016x}", c.before_hash)),
                    Datum::Text(format!("{:016x}", c.after_hash)),
                    Datum::Int(c.before_est_rows as i64),
                    Datum::Int(c.after_est_rows as i64),
                    Datum::Int(c.stats_generation as i64),
                    Datum::Int(c.catalog_generation as i64),
                ]
            })
            .collect();
        ResultSet {
            columns: vec![
                "seq".into(),
                "fingerprint".into(),
                "query".into(),
                "before_plan".into(),
                "after_plan".into(),
                "before_hash".into(),
                "after_hash".into(),
                "before_est_rows".into(),
                "after_est_rows".into(),
                "stats_gen".into(),
                "catalog_gen".into(),
            ],
            rows,
            affected: 0,
            explain: None,
        }
    }

    /// `SHOW HISTORY <metric>`: the per-interval values of one metric from
    /// the sampler's ring, oldest slot first. Any name that appears in
    /// `SHOW STATS` works, including derived histogram rows.
    fn history_result(&self, metric: &str) -> ServerResult<ResultSet> {
        if metric.is_empty() {
            return Err(ServerError::Db(DbError::Unsupported(
                "SHOW HISTORY needs a metric name, e.g. SHOW HISTORY query_ok".into(),
            )));
        }
        // An idle or sampler-disabled server still answers: take one
        // sample on demand so the ring is never empty here.
        if self.history.is_empty() {
            self.sample_tick();
        }
        let series = self.history.history(metric);
        if series.is_empty() && !self.history.metric_names().iter().any(|n| n == metric) {
            return Err(ServerError::Db(DbError::Unsupported(format!(
                "unknown metric '{metric}' (try any SHOW STATS name, e.g. query_ok)"
            ))));
        }
        let rows = series
            .into_iter()
            .map(|(slot, v)| vec![Datum::Int(slot as i64), Datum::Int(v as i64)])
            .collect();
        Ok(ResultSet {
            columns: vec!["slot".into(), "value".into()],
            rows,
            affected: 0,
            explain: None,
        })
    }

    /// `SHOW TRACE`: the tracer's ring of finished spans, oldest first.
    /// Empty unless tracing is enabled (config or `GENALG_TRACE`).
    fn trace_result(&self) -> ResultSet {
        let rows = genalg_obs::tracer()
            .spans()
            .into_iter()
            .map(|r| vec![Datum::Text(r.render())])
            .collect();
        ResultSet { columns: vec!["span".into()], rows, affected: 0, explain: None }
    }
}

fn empty_result() -> ResultSet {
    ResultSet { columns: Vec::new(), rows: Vec::new(), affected: 0, explain: None }
}

/// Coarse statement tag for slow-log entries that never reach the planner
/// (writes, EXPLAIN, cache-bypass reads).
fn statement_tag(normalized: &str) -> String {
    normalized.split_whitespace().next().unwrap_or("statement").to_string()
}

fn kind_label(kind: &SessionKind) -> String {
    match kind {
        SessionKind::Public => "public".to_string(),
        SessionKind::User(name) => format!("user:{name}"),
        SessionKind::Maintainer => "maintainer".to_string(),
    }
}

/// Convenience: pull one named counter out of a `SHOW STATS` result.
pub fn stat_value(rs: &ResultSet, name: &str) -> Option<i64> {
    rs.rows.iter().find_map(|row| match (&row[0], &row[1]) {
        (Datum::Text(n), Datum::Int(v)) if n == name => Some(*v),
        _ => None,
    })
}
