//! The query service: sessions in, result sets out.
//!
//! [`QueryService::execute`] is the single entry point every transport
//! (TCP handler, in-process client, benches) funnels through. It:
//!
//! 1. resolves the session to a role (public sessions may only read);
//! 2. compiles BQL to the extended SQL of the Unifying Database (§6.4);
//! 3. intercepts `SHOW STATS`;
//! 4. routes reads through the plan + result caches, writes straight to
//!    the engine (whose generation counters invalidate cached state).

use crate::cache::{normalize_sql, PlanCache, ResultCache, StatementKey};
use crate::error::{ServerError, ServerResult};
use crate::metrics::Metrics;
use crate::protocol::Lang;
use crate::session::{SessionId, SessionKind, SessionManager};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use unidb::{Database, Datum, DbError, ResultSet};

/// Tuning knobs for [`QueryService`] and [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission-queue slots; submissions beyond this bounce with `Busy`.
    pub queue_capacity: usize,
    /// Prepared-plan LRU capacity.
    pub plan_cache_size: usize,
    /// Result LRU capacity.
    pub result_cache_size: usize,
    /// Master switch for both caches (off = every query plans + executes).
    pub caches_enabled: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_capacity: 64,
            plan_cache_size: 256,
            result_cache_size: 256,
            caches_enabled: true,
        }
    }
}

/// The transport-independent query engine front end.
pub struct QueryService {
    db: Arc<Database>,
    sessions: SessionManager,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    metrics: Arc<Metrics>,
    caches_enabled: bool,
}

impl QueryService {
    pub fn new(db: Arc<Database>, config: &ServerConfig) -> Self {
        let metrics = Arc::new(Metrics::default());
        QueryService {
            db,
            sessions: SessionManager::new(Arc::clone(&metrics)),
            plan_cache: PlanCache::new(config.plan_cache_size),
            result_cache: ResultCache::new(config.result_cache_size),
            metrics,
            caches_enabled: config.caches_enabled,
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Open a session of the given kind.
    pub fn open_session(&self, kind: SessionKind) -> SessionId {
        self.sessions.open(kind)
    }

    /// Close a session (idempotent).
    pub fn close_session(&self, id: SessionId) {
        self.sessions.close(id);
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.count()
    }

    /// Execute one statement on behalf of a session.
    pub fn execute(&self, session: SessionId, lang: Lang, text: &str) -> ServerResult<ResultSet> {
        let result = self.execute_inner(session, lang, text);
        match &result {
            Ok(_) => {
                self.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.metrics.queries_err.fetch_add(1, Ordering::Relaxed);
                // Storage faults are the operator's problem, not the
                // client's — count them separately so `SHOW STATS` makes a
                // sick disk visible.
                if matches!(e, ServerError::Db(DbError::Io(_))) {
                    self.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        result
    }

    fn execute_inner(&self, session: SessionId, lang: Lang, text: &str) -> ServerResult<ResultSet> {
        let kind = self.sessions.kind(session).ok_or(ServerError::UnknownSession)?;
        let sql = match lang {
            Lang::Sql => text.to_string(),
            Lang::Bql => genalg_bql::parse(text)
                .and_then(|q| q.to_sql())
                .map_err(|e| ServerError::Bql(e.to_string()))?,
        };
        let normalized = normalize_sql(&sql);
        if normalized == "show stats" {
            return Ok(self.stats_result());
        }
        let is_read = normalized.starts_with("select") || normalized.starts_with("explain");
        if !is_read && !kind.can_write() {
            return Err(ServerError::ReadOnly(
                "public sessions may only run SELECT / EXPLAIN / SHOW STATS".into(),
            ));
        }
        let role = kind.role();
        let start = Instant::now();
        let result = if is_read {
            self.execute_read(&sql, normalized, &role)
        } else {
            self.db.execute_as(&sql, &role).map_err(ServerError::Db)
        };
        let hist = if is_read { &self.metrics.read_latency } else { &self.metrics.write_latency };
        hist.record(start.elapsed());
        result
    }

    fn execute_read(
        &self,
        sql: &str,
        normalized: String,
        role: &unidb::Role,
    ) -> ServerResult<ResultSet> {
        // EXPLAIN and other non-SELECT reads bypass the caches entirely.
        if !normalized.starts_with("select") || !self.caches_enabled {
            return self.db.execute_as(sql, role).map_err(ServerError::Db);
        }
        let key = StatementKey { normalized_sql: normalized, space: role.default_space().into() };
        let catalog_gen = self.db.catalog_generation();
        if let Some(cached) =
            self.result_cache.get(&key, catalog_gen, |ids| self.db.table_versions(ids))
        {
            self.metrics.result_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((*cached).clone());
        }
        self.metrics.result_cache_misses.fetch_add(1, Ordering::Relaxed);

        // Two attempts: a plan can go stale between lookup and execution if
        // DDL slips in; re-prepare once and retry before giving up.
        for attempt in 0..2 {
            let catalog_gen = self.db.catalog_generation();
            let plan = match self.plan_cache.get(&key, catalog_gen) {
                Some(plan) => {
                    self.metrics.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                    plan
                }
                None => {
                    self.metrics.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
                    let plan = Arc::new(self.db.prepare_as(sql, role)?);
                    self.plan_cache.insert(key.clone(), Arc::clone(&plan));
                    plan
                }
            };
            // Version snapshot *before* execution: a write landing in the
            // window makes the cached entry miss (safe), never hit stale.
            let versions = self.db.table_versions(plan.table_ids());
            match self.db.execute_prepared(&plan) {
                Ok(rs) => {
                    self.result_cache.insert(
                        key,
                        Arc::new(rs.clone()),
                        plan.table_ids().to_vec(),
                        versions,
                        plan.catalog_generation(),
                    );
                    return Ok(rs);
                }
                Err(DbError::Stale(_)) if attempt == 0 => continue,
                Err(e) => return Err(ServerError::Db(e)),
            }
        }
        unreachable!("second attempt either returns or errors")
    }

    /// `SHOW STATS` as a two-column result set.
    fn stats_result(&self) -> ResultSet {
        let (pool_hits, pool_misses, pool_evictions) = self.db.pool_stats();
        let mut stats = self.metrics.snapshot();
        stats.push(("buffer_pool_hits".into(), pool_hits));
        stats.push(("buffer_pool_misses".into(), pool_misses));
        stats.push(("buffer_pool_evictions".into(), pool_evictions));
        stats.push(("plan_cache_entries".into(), self.plan_cache.len() as u64));
        stats.push(("result_cache_entries".into(), self.result_cache.len() as u64));
        stats.push(("parallelism".into(), self.db.parallelism() as u64));
        stats.push(("scan_pages_read".into(), self.db.scan_pages_read()));
        stats.sort();
        let rows = stats
            .into_iter()
            .map(|(name, value)| vec![Datum::Text(name), Datum::Int(value as i64)])
            .collect();
        ResultSet { columns: vec!["stat".into(), "value".into()], rows, affected: 0, explain: None }
    }
}

/// Convenience: pull one named counter out of a `SHOW STATS` result.
pub fn stat_value(rs: &ResultSet, name: &str) -> Option<i64> {
    rs.rows.iter().find_map(|row| match (&row[0], &row[1]) {
        (Datum::Text(n), Datum::Int(v)) if n == name => Some(*v),
        _ => None,
    })
}
