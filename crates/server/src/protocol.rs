//! Length-prefixed wire protocol.
//!
//! Every message is one **frame**: a `u32` big-endian payload length
//! followed by that many payload bytes. Payloads are a tagged binary
//! encoding (tag byte + fields); rows reuse the storage engine's tuple
//! format ([`unidb::tuple::encode_row`]), so a result row travels in
//! exactly the bytes it occupies on a page.
//!
//! ```text
//! frame    := len:u32_be payload[len]
//! request  := 0x01 kind:u8 name:str            -- OpenSession
//!           | 0x02 session:u64                 -- CloseSession
//!           | 0x03 session:u64 lang:u8 text:str-- Query (lang 0=SQL 1=BQL)
//! response := 0x01 session:u64                 -- SessionOpened
//!           | 0x02 resultset                   -- Ok
//!           | 0x03 code:u8 retry_ms:u64 msg:str-- Error
//! str      := len:u32_be utf8[len]
//! resultset:= ncols:u32 col:str* nrows:u32 (len:u32 rowbytes[len])*
//!             affected:u64 has_explain:u8 explain:str?
//! ```

use crate::error::ServerError;
use crate::session::SessionKind;
use std::io::{Read, Write};
use unidb::tuple::{decode_row, encode_row};
use unidb::ResultSet;

/// Frames larger than this are rejected as malformed (64 MiB).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Query language of a [`Request::Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    Sql,
    Bql,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    OpenSession { kind: SessionKind },
    CloseSession { session: u64 },
    Query { session: u64, lang: Lang, text: String },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    SessionOpened { session: u64 },
    Ok(ResultSet),
    Error(ServerError),
}

// -- frame transport ---------------------------------------------------------

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| std::io::Error::other("frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::other("frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the connection cleanly
/// (EOF before any length byte).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::other("frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// -- payload encoding --------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ServerError::Protocol("truncated frame".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ServerError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServerError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServerError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ServerError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServerError::Protocol("invalid UTF-8 in frame".into()))
    }

    fn finish(&self) -> Result<(), ServerError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServerError::Protocol("trailing bytes in frame".into()))
        }
    }
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::OpenSession { kind } => {
                out.push(0x01);
                match kind {
                    SessionKind::Public => {
                        out.push(0);
                        put_str(&mut out, "");
                    }
                    SessionKind::User(name) => {
                        out.push(1);
                        put_str(&mut out, name);
                    }
                    SessionKind::Maintainer => {
                        out.push(2);
                        put_str(&mut out, "");
                    }
                }
            }
            Request::CloseSession { session } => {
                out.push(0x02);
                out.extend_from_slice(&session.to_be_bytes());
            }
            Request::Query { session, lang, text } => {
                out.push(0x03);
                out.extend_from_slice(&session.to_be_bytes());
                out.push(match lang {
                    Lang::Sql => 0,
                    Lang::Bql => 1,
                });
                put_str(&mut out, text);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Request, ServerError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            0x01 => {
                let kind_tag = c.u8()?;
                let name = c.str()?;
                let kind = match kind_tag {
                    0 => SessionKind::Public,
                    1 => SessionKind::User(name),
                    2 => SessionKind::Maintainer,
                    other => {
                        return Err(ServerError::Protocol(format!("bad session kind {other}")))
                    }
                };
                Request::OpenSession { kind }
            }
            0x02 => Request::CloseSession { session: c.u64()? },
            0x03 => {
                let session = c.u64()?;
                let lang = match c.u8()? {
                    0 => Lang::Sql,
                    1 => Lang::Bql,
                    other => return Err(ServerError::Protocol(format!("bad lang {other}"))),
                };
                Request::Query { session, lang, text: c.str()? }
            }
            other => return Err(ServerError::Protocol(format!("bad request tag {other:#x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

fn encode_result(out: &mut Vec<u8>, rs: &ResultSet) {
    out.extend_from_slice(&(rs.columns.len() as u32).to_be_bytes());
    for col in &rs.columns {
        put_str(out, col);
    }
    out.extend_from_slice(&(rs.rows.len() as u32).to_be_bytes());
    for row in &rs.rows {
        let bytes = encode_row(row);
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&bytes);
    }
    out.extend_from_slice(&rs.affected.to_be_bytes());
    match &rs.explain {
        Some(text) => {
            out.push(1);
            put_str(out, text);
        }
        None => out.push(0),
    }
}

fn decode_result(c: &mut Cursor<'_>) -> Result<ResultSet, ServerError> {
    let ncols = c.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        columns.push(c.str()?);
    }
    let nrows = c.u32()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(1024));
    for _ in 0..nrows {
        let len = c.u32()? as usize;
        let bytes = c.take(len)?;
        rows.push(decode_row(bytes).map_err(|e| ServerError::Protocol(format!("bad row: {e}")))?);
    }
    let affected = c.u64()?;
    let explain = if c.u8()? == 1 { Some(c.str()?) } else { None };
    Ok(ResultSet { columns, rows, affected, explain })
}

/// Numeric error codes on the wire. Transaction-state errors (8) and
/// serialization conflicts (9) get their own codes so clients can
/// reconstruct the exact [`unidb::DbError`] variant — a retry loop must
/// distinguish "conflict, rerun from BEGIN" from everything else without
/// parsing message text. Other engine errors share code 2 and decode to
/// [`ServerError::Db`] with the message wrapped as an internal-format
/// string.
fn error_code(e: &ServerError) -> u8 {
    match e {
        ServerError::Busy { .. } => 1,
        ServerError::Db(unidb::DbError::Txn(_)) => 8,
        ServerError::Db(unidb::DbError::Conflict(_)) => 9,
        ServerError::Db(_) => 2,
        ServerError::UnknownSession => 3,
        ServerError::ReadOnly(_) => 4,
        ServerError::Bql(_) => 5,
        ServerError::Protocol(_) => 6,
        ServerError::Io(_) => 7,
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::SessionOpened { session } => {
                out.push(0x01);
                out.extend_from_slice(&session.to_be_bytes());
            }
            Response::Ok(rs) => {
                out.push(0x02);
                encode_result(&mut out, rs);
            }
            Response::Error(e) => {
                out.push(0x03);
                out.push(error_code(e));
                let retry = match e {
                    ServerError::Busy { retry_after_ms } => *retry_after_ms,
                    _ => 0,
                };
                out.extend_from_slice(&retry.to_be_bytes());
                // Exactly-reconstructable variants carry the bare inner
                // message; the decoder re-wraps it in the right variant.
                let msg = match e {
                    ServerError::Db(unidb::DbError::Txn(m))
                    | ServerError::Db(unidb::DbError::Conflict(m)) => m.clone(),
                    other => other.to_string(),
                };
                put_str(&mut out, &msg);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Response, ServerError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            0x01 => Response::SessionOpened { session: c.u64()? },
            0x02 => Response::Ok(decode_result(&mut c)?),
            0x03 => {
                let code = c.u8()?;
                let retry = c.u64()?;
                let message = c.str()?;
                let err = match code {
                    1 => ServerError::Busy { retry_after_ms: retry },
                    2 => ServerError::Db(unidb::DbError::External(message)),
                    3 => ServerError::UnknownSession,
                    4 => ServerError::ReadOnly(message),
                    5 => ServerError::Bql(message),
                    7 => ServerError::Io(message),
                    8 => ServerError::Db(unidb::DbError::Txn(message)),
                    9 => ServerError::Db(unidb::DbError::Conflict(message)),
                    _ => ServerError::Protocol(message),
                };
                Response::Error(err)
            }
            other => return Err(ServerError::Protocol(format!("bad response tag {other:#x}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidb::Datum;

    #[test]
    fn request_round_trip() {
        let reqs = [
            Request::OpenSession { kind: SessionKind::Public },
            Request::OpenSession { kind: SessionKind::User("alice".into()) },
            Request::OpenSession { kind: SessionKind::Maintainer },
            Request::CloseSession { session: 42 },
            Request::Query { session: 7, lang: Lang::Sql, text: "SELECT 1".into() },
            Request::Query { session: 7, lang: Lang::Bql, text: "FIND sequences".into() },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip_with_rows() {
        let rs = ResultSet {
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                vec![Datum::Int(1), Datum::Text("ata".into())],
                vec![Datum::Int(2), Datum::Null],
            ],
            affected: 0,
            explain: None,
        };
        let resp = Response::Ok(rs);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);

        let busy = Response::Error(ServerError::Busy { retry_after_ms: 25 });
        assert_eq!(Response::decode(&busy.encode()).unwrap(), busy);
    }

    /// Transaction-state errors and serialization conflicts survive the
    /// wire as their exact `DbError` variants — clients branch on them.
    #[test]
    fn txn_errors_round_trip_exactly() {
        let txn =
            Response::Error(ServerError::Db(unidb::DbError::Txn("COMMIT without BEGIN".into())));
        assert_eq!(Response::decode(&txn.encode()).unwrap(), txn);
        let conflict = Response::Error(ServerError::Db(unidb::DbError::Conflict(
            "row was modified by a concurrent transaction".into(),
        )));
        assert_eq!(Response::decode(&conflict.encode()).unwrap(), conflict);
    }

    #[test]
    fn frame_round_trip_over_a_pipe() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(Request::decode(&[0xff]).is_err());
        assert!(Request::decode(&[]).is_err());
        // Trailing garbage after a valid request.
        let mut bytes = Request::CloseSession { session: 1 }.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        // Oversized frame length.
        let mut r = &[0xff, 0xff, 0xff, 0xff, 0][..];
        assert!(read_frame(&mut r).is_err());
    }
}
