//! # genalg-server — the concurrent query-service layer
//!
//! §5 of the paper puts the Unifying Database at the center of a *Genomics
//! Research Warehouse* that many researchers query at once: the public
//! space holds curated data every user reads, user spaces hold private
//! work, and the maintainer loads new releases. This crate is that service
//! tier — everything between a client connection and
//! [`unidb::Database::execute_as`]:
//!
//! * **sessions** ([`SessionManager`]) with the §5.1 role split: public
//!   (anonymous, read-only), user, maintainer;
//! * a **worker pool** ([`WorkerPool`]) behind a *bounded* admission queue —
//!   a saturated server rejects with a structured [`ServerError::Busy`]
//!   carrying a retry hint instead of queueing unboundedly;
//! * **plan and result caches** ([`PlanCache`], [`ResultCache`]) keyed on
//!   normalized statement text and invalidated by the engine's catalog /
//!   table generation counters — repeated public-space queries (the
//!   warehouse's dominant workload) skip parse, plan, and execution;
//! * a **wire protocol** ([`protocol`]) of length-prefixed binary frames
//!   carrying SQL or BQL text out and tuple-encoded rows back, served over
//!   TCP ([`Server::listen`]) or in process ([`Server::client`]);
//! * **observability** — one [`genalg_obs::Snapshot`] feeds both
//!   `SHOW STATS` (counters, grouped by `<subsystem>_` prefix) and
//!   `SHOW METRICS` (Prometheus text exposition); `SHOW SLOW QUERIES`
//!   returns the N slowest statements with plan and cache attribution, and
//!   `SHOW TRACE` drains the structured span ring when tracing is on;
//! * a **workload observatory** — `SHOW WORKLOAD` lists per-fingerprint
//!   statistics (normalized query shapes with latency quantiles, cache-tier
//!   hits, and resource attribution), `SHOW PLAN CHANGES` renders the
//!   plan-flip audit ring, `SHOW HISTORY <metric>` reads the background
//!   sampler's per-second delta ring, and an incident flight recorder dumps
//!   self-contained diagnostic bundles to `target/incidents/` on worker
//!   panics, conflict storms, and load-harness SLO violations.
//!
//! The engine itself runs reads concurrently (shared read lock; see
//! [`unidb::Database`]), so the pool translates directly into parallel
//! SELECT throughput.
//!
//! ```
//! use genalg_server::{Server, ServerConfig, SessionKind};
//! use std::sync::Arc;
//! use unidb::Database;
//!
//! let db = Arc::new(Database::in_memory());
//! db.execute("CREATE TABLE public.t (x INT)").ok();
//! let server = Server::new(db, &ServerConfig::default());
//! let client = server.client();
//! let session = client.open(SessionKind::Public);
//! let rs = client.query(session, "SELECT 1 + 1").unwrap();
//! assert_eq!(rs.rows[0][0], unidb::Datum::Int(2));
//! client.close(session);
//! ```

pub mod cache;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;
pub mod session;

pub use cache::{normalize_sql, PlanCache, ResultCache, StatementKey};
pub use error::{ServerError, ServerResult};
pub use metrics::{Histogram, Metrics};
pub use protocol::{Lang, Request, Response};
pub use queue::WorkerPool;
pub use server::{Client, Server, ServerHandle, TcpClient};
pub use service::{stat_value, QueryService, ServerConfig, SlowQuery};
pub use session::{SessionId, SessionKind, SessionManager};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unidb::{Database, Datum};

    fn seeded_server(config: &ServerConfig) -> Server {
        let db = Arc::new(Database::in_memory());
        db.execute_as("CREATE TABLE public.genes (id INT, name TEXT)", &unidb::Role::Maintainer)
            .unwrap();
        db.execute_as(
            "INSERT INTO public.genes VALUES (1, 'lacZ'), (2, 'recA'), (3, 'rpoB')",
            &unidb::Role::Maintainer,
        )
        .unwrap();
        Server::new(db, config)
    }

    #[test]
    fn end_to_end_select_in_process() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        let rs = client.query(s, "SELECT name FROM public.genes WHERE id = 2").unwrap();
        assert_eq!(rs.rows, vec![vec![Datum::Text("recA".into())]]);
        client.close(s);
    }

    #[test]
    fn public_sessions_cannot_write() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        let err = client.query(s, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap_err();
        assert!(matches!(err, ServerError::ReadOnly(_)), "got {err:?}");
        // User sessions hit the engine's ACL instead (public is curated).
        let u = client.open(SessionKind::User("alice".into()));
        let err = client.query(u, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap_err();
        assert!(matches!(err, ServerError::Db(unidb::DbError::AccessDenied(_))), "got {err:?}");
        // The maintainer may write.
        let m = client.open(SessionKind::Maintainer);
        let rs = client.query(m, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap();
        assert_eq!(rs.affected, 1);
    }

    #[test]
    fn repeated_query_hits_plan_and_result_cache() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        let sql = "SELECT id, name FROM public.genes WHERE id <= 2";
        let first = client.query(s, sql).unwrap();
        // Same text modulo case/whitespace must share the cache entry.
        let second = client.query(s, "select  id, name from public.genes where id <= 2").unwrap();
        let third = client.query(s, sql).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, third);

        let stats = client.query(s, "SHOW STATS").unwrap();
        assert_eq!(stat_value(&stats, "cache_result_hits"), Some(2));
        assert_eq!(stat_value(&stats, "cache_result_misses"), Some(1));
        assert_eq!(stat_value(&stats, "cache_plan_misses"), Some(1));
        assert_eq!(stat_value(&stats, "query_ok"), Some(3));
    }

    #[test]
    fn dml_invalidates_cached_results() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let reader = client.open(SessionKind::Public);
        let writer = client.open(SessionKind::Maintainer);
        let sql = "SELECT count(*) FROM public.genes";
        let before = client.query(reader, sql).unwrap();
        assert_eq!(before.rows[0][0], Datum::Int(3));
        client.query(writer, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap();
        // The cached result must not survive the write.
        let after = client.query(reader, sql).unwrap();
        assert_eq!(after.rows[0][0], Datum::Int(4));
    }

    #[test]
    fn ddl_invalidates_cached_plans() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let m = client.open(SessionKind::Maintainer);
        let sql = "SELECT count(*) FROM public.genes";
        client.query(m, sql).unwrap();
        client.query(m, "CREATE TABLE public.other (x INT)").unwrap();
        // The plan was prepared under the old catalog; the service must
        // re-prepare transparently rather than surface a Stale error.
        let rs = client.query(m, sql).unwrap();
        assert_eq!(rs.rows[0][0], Datum::Int(3));
    }

    #[test]
    fn bql_is_compiled_and_dispatched() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        // Invalid BQL surfaces as a typed Bql error.
        let err = client.query_bql(s, "FROB the database").unwrap_err();
        assert!(matches!(err, ServerError::Bql(_)), "got {err:?}");
        // Valid BQL compiles to SQL and reaches the engine; without the
        // warehouse schema installed the engine reports what is missing,
        // proving the text made it through compilation and dispatch.
        let err = client.query_bql(s, "COUNT sequences BY organism").unwrap_err();
        assert!(matches!(err, ServerError::Db(_)), "got {err:?}");
    }

    #[test]
    fn caches_can_be_disabled() {
        let config = ServerConfig { caches_enabled: false, ..ServerConfig::default() };
        let server = seeded_server(&config);
        let client = server.client();
        let s = client.open(SessionKind::Public);
        let sql = "SELECT id FROM public.genes";
        client.query(s, sql).unwrap();
        client.query(s, sql).unwrap();
        let stats = client.query(s, "SHOW STATS").unwrap();
        assert_eq!(stat_value(&stats, "cache_result_hits"), Some(0));
        assert_eq!(stat_value(&stats, "cache_result_misses"), Some(0));
        assert_eq!(stat_value(&stats, "cache_plan_entries"), Some(0));
    }

    #[test]
    fn tcp_round_trip() {
        let server = seeded_server(&ServerConfig::default());
        let handle = server.listen("127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(handle.addr()).unwrap();
        let session = client.open(SessionKind::User("remote".into())).unwrap();
        let rs =
            client.query(session, Lang::Sql, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        assert_eq!(rs.rows, vec![vec![Datum::Text("lacZ".into())]]);
        // Errors travel as structured responses, not dropped connections.
        let err = client.query(session, Lang::Sql, "SELEC oops").unwrap_err();
        assert!(matches!(err, ServerError::Db(_)), "got {err:?}");
        // Unknown sessions are rejected.
        let err = client.query(9999, Lang::Sql, "SELECT 1").unwrap_err();
        assert!(matches!(err, ServerError::UnknownSession), "got {err:?}");
        client.close(session).unwrap();
        handle.stop();
    }

    #[test]
    fn saturated_queue_returns_busy_to_clients() {
        // One worker, one queue slot: park the worker, fill the slot, then
        // the next query must bounce with Busy — deterministically.
        let config = ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() };
        let server = seeded_server(&config);
        let client = server.client();
        let s = client.open(SessionKind::Public);

        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        server
            .pool()
            .submit(move || {
                started_tx.send(()).unwrap();
                let _ = release_rx.recv();
            })
            .unwrap();
        started_rx.recv().unwrap(); // the only worker is now parked
        server.pool().submit(|| ()).unwrap(); // fills the single queue slot

        let err = client.query(s, "SELECT 1").unwrap_err();
        match err {
            ServerError::Busy { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected Busy, got {other:?}"),
        }
        release_tx.send(()).unwrap();

        // The server recovers once the queue drains — which takes a moment,
        // so honor the Busy retry hint — and the rejection is visible in
        // SHOW STATS.
        let rs = loop {
            match client.query(s, "SELECT count(*) FROM public.genes") {
                Ok(rs) => break rs,
                Err(ServerError::Busy { retry_after_ms }) => {
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(20)));
                }
                Err(other) => panic!("expected Busy or success, got {other:?}"),
            }
        };
        assert_eq!(rs.rows[0][0], Datum::Int(3));
        let stats = client.query(s, "SHOW STATS").unwrap();
        assert!(stat_value(&stats, "server_rejected_busy").unwrap() >= 1);
        assert!(stat_value(&stats, "server_queue_peak").unwrap() >= 1);
    }

    /// Satellite: `SHOW STATS` rows group by subsystem prefix. The exact
    /// name list is the golden contract — adding a counter means updating
    /// this list *and* keeping its `<subsystem>_<name>` shape.
    #[test]
    fn show_stats_names_are_grouped_by_subsystem() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        let stats = client.query(s, "SHOW STATS").unwrap();
        let names: Vec<String> = stats
            .rows
            .iter()
            .map(|r| match &r[0] {
                Datum::Text(n) => n.clone(),
                other => panic!("stat name should be text, got {other:?}"),
            })
            .collect();
        let golden = vec![
            "cache_plan_bytes",
            "cache_plan_entries",
            "cache_plan_hits",
            "cache_plan_misses",
            "cache_result_bytes",
            "cache_result_entries",
            "cache_result_hits",
            "cache_result_misses",
            "etl_deletes",
            "etl_deltas",
            "etl_refresh_rounds",
            "etl_retries",
            "etl_source_failures",
            "etl_upserts",
            "exec_parallelism",
            "exec_scan_pages_read",
            "exec_scan_pages_skipped",
            "exec_stats_rebuilt",
            "obs_fingerprint_overflow",
            "obs_fingerprints",
            "obs_history_slots",
            "obs_incidents_written",
            "obs_plan_changes",
            "obs_spans_dropped",
            "obs_spans_recorded",
            "obs_tracing_enabled",
            "pool_evictions",
            "pool_hits",
            "pool_misses",
            "query_err",
            "query_ok",
            "query_queue_wait_count",
            "query_queue_wait_mean_us",
            "query_queue_wait_p50_us",
            "query_queue_wait_p95_us",
            "query_read_latency_count",
            "query_read_latency_mean_us",
            "query_read_latency_p50_us",
            "query_read_latency_p95_us",
            "query_write_latency_count",
            "query_write_latency_mean_us",
            "query_write_latency_p50_us",
            "query_write_latency_p95_us",
            "server_active_sessions",
            "server_io_errors",
            "server_jobs_completed",
            "server_jobs_submitted",
            "server_queue_depth",
            "server_queue_peak",
            "server_rejected_busy",
            "server_worker_panics",
            "txn_aborted",
            "txn_begun",
            "txn_committed",
            "txn_conflicts",
            "txn_duration_count",
            "txn_duration_mean_us",
            "txn_duration_p50_us",
            "txn_duration_p95_us",
            "txn_reaped",
            "txn_versions_pruned",
            "wal_appends",
            "wal_sync_failures",
            "wal_syncs",
        ];
        assert_eq!(names, golden, "SHOW STATS names changed — update the golden list");
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "rows must stay lexicographically sorted");
    }

    #[test]
    fn show_metrics_emits_parseable_prometheus() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        client.query(s, "SELECT count(*) FROM public.genes").unwrap();
        let rs = client.query(s, "SHOW METRICS").unwrap();
        assert_eq!(rs.columns, vec!["metrics".to_string()]);
        let text: Vec<String> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Datum::Text(l) => l.clone(),
                other => panic!("metrics line should be text, got {other:?}"),
            })
            .collect();
        let text = text.join("\n");
        assert!(text.contains("# TYPE genalg_query_ok counter"));
        assert!(text.contains("# TYPE genalg_query_read_latency_us histogram"));
        assert!(text.contains("genalg_query_read_latency_us_bucket{le=\"+Inf\"}"));
        // Every line is either a TYPE comment or `name{labels?} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(name.starts_with("genalg_"), "unprefixed family: {line}");
            assert!(value.parse::<u64>().is_ok(), "bad value: {line}");
        }
    }

    #[test]
    fn slow_queries_are_captured_with_attribution() {
        // Threshold 0: every successful statement counts as slow, so the
        // test needs no sleeps; capacity 2 exercises the bound.
        let config = ServerConfig {
            slow_query_threshold_us: 0,
            slow_query_capacity: 2,
            ..ServerConfig::default()
        };
        let server = seeded_server(&config);
        let client = server.client();
        let s = client.open(SessionKind::User("alice".into()));
        client.query(s, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        client.query(s, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        client.query(s, "SELECT count(*) FROM public.genes").unwrap();
        let rs = client.query(s, "SHOW SLOW QUERIES").unwrap();
        assert_eq!(rs.columns, vec!["query", "latency_us", "role", "plan", "cache"]);
        assert_eq!(rs.rows.len(), 2, "log keeps only the slowest N");
        // Slowest first, and every entry carries full attribution.
        let lat = |row: &Vec<Datum>| match row[1] {
            Datum::Int(v) => v,
            _ => panic!("latency should be an int"),
        };
        assert!(lat(&rs.rows[0]) >= lat(&rs.rows[1]));
        for row in &rs.rows {
            assert_eq!(row[2], Datum::Text("user:alice".into()));
            match (&row[0], &row[3], &row[4]) {
                (Datum::Text(sql), Datum::Text(plan), Datum::Text(cache)) => {
                    assert!(sql.starts_with("select"), "normalized sql: {sql}");
                    assert!(!plan.is_empty());
                    assert!(["result", "plan", "miss", "bypass"].contains(&cache.as_str()));
                }
                other => panic!("bad slow-query row: {other:?}"),
            }
        }
        // SHOW statements themselves never land in the log.
        let again = client.query(s, "SHOW SLOW QUERIES").unwrap();
        assert!(again
            .rows
            .iter()
            .all(|r| !matches!(&r[0], Datum::Text(q) if q.starts_with("show"))));
    }

    /// Tentpole: interactive BEGIN/COMMIT/ROLLBACK over the wire. A
    /// transaction pins its session, its buffered writes stay invisible to
    /// other sessions (and to the result cache) until COMMIT, and ROLLBACK
    /// discards them.
    #[test]
    fn wire_transactions_begin_commit_rollback() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let writer = client.open(SessionKind::Maintainer);
        let reader = client.open(SessionKind::Public);
        let count_sql = "SELECT count(*) FROM public.genes";

        client.query(writer, "BEGIN").unwrap();
        client.query(writer, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap();
        // The writer sees its own buffered insert; the reader must not —
        // and its (cacheable) count must stay pinned at the committed state.
        let own = client.query(writer, count_sql).unwrap();
        assert_eq!(own.rows[0][0], Datum::Int(4));
        let other = client.query(reader, count_sql).unwrap();
        assert_eq!(other.rows[0][0], Datum::Int(3));
        client.query(writer, "COMMIT").unwrap();
        // COMMIT advances the commit epoch, so the cached count is stale
        // and the reader observes the new row.
        let after = client.query(reader, count_sql).unwrap();
        assert_eq!(after.rows[0][0], Datum::Int(4));

        // ROLLBACK discards buffered work without a trace.
        client.query(writer, "BEGIN").unwrap();
        client.query(writer, "DELETE FROM public.genes WHERE id = 4").unwrap();
        client.query(writer, "ROLLBACK").unwrap();
        let still = client.query(reader, count_sql).unwrap();
        assert_eq!(still.rows[0][0], Datum::Int(4));

        let stats = client.query(reader, "SHOW STATS").unwrap();
        assert_eq!(stat_value(&stats, "txn_begun"), Some(2));
        assert_eq!(stat_value(&stats, "txn_committed"), Some(1));
        assert_eq!(stat_value(&stats, "txn_aborted"), Some(1));
        assert_eq!(stat_value(&stats, "txn_conflicts"), Some(0));
    }

    /// Satellite: transaction-control misuse and write-write conflicts
    /// travel the TCP wire as structured, exactly-typed errors — never as
    /// dropped connections.
    #[test]
    fn txn_misuse_and_conflicts_are_structured_over_tcp() {
        let server = seeded_server(&ServerConfig::default());
        let handle = server.listen("127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(handle.addr()).unwrap();
        let a = client.open(SessionKind::Maintainer).unwrap();
        let b = client.open(SessionKind::Maintainer).unwrap();

        // COMMIT / ROLLBACK without BEGIN are structured Txn errors.
        let err = client.query(a, Lang::Sql, "COMMIT").unwrap_err();
        assert!(
            matches!(&err, ServerError::Db(unidb::DbError::Txn(m)) if m == "COMMIT without BEGIN"),
            "got {err:?}"
        );
        let err = client.query(a, Lang::Sql, "ROLLBACK").unwrap_err();
        assert!(matches!(err, ServerError::Db(unidb::DbError::Txn(_))), "got {err:?}");

        // Nested BEGIN on the same session is rejected, txn survives.
        client.query(a, Lang::Sql, "BEGIN").unwrap();
        let err = client.query(a, Lang::Sql, "begin").unwrap_err();
        assert!(matches!(err, ServerError::Db(unidb::DbError::Txn(_))), "got {err:?}");

        // Two sessions race an update of the same row: the first committer
        // wins, the loser's COMMIT decodes as a retryable Conflict.
        client.query(b, Lang::Sql, "BEGIN").unwrap();
        client.query(a, Lang::Sql, "UPDATE public.genes SET name = 'a' WHERE id = 1").unwrap();
        client.query(b, Lang::Sql, "UPDATE public.genes SET name = 'b' WHERE id = 1").unwrap();
        client.query(a, Lang::Sql, "COMMIT").unwrap();
        let err = client.query(b, Lang::Sql, "COMMIT").unwrap_err();
        assert!(matches!(err, ServerError::Db(unidb::DbError::Conflict(_))), "got {err:?}");
        let rs = client.query(a, Lang::Sql, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        assert_eq!(rs.rows, vec![vec![Datum::Text("a".into())]]);

        // Public sessions cannot open transactions at all.
        let p = client.open(SessionKind::Public).unwrap();
        let err = client.query(p, Lang::Sql, "BEGIN").unwrap_err();
        assert!(matches!(err, ServerError::ReadOnly(_)), "got {err:?}");
        handle.stop();
    }

    /// Satellite: an abandoned transaction is reaped lazily — the next
    /// statement finds it expired, the engine rolls it back, and the
    /// session learns via a structured Txn error.
    #[test]
    fn abandoned_transactions_time_out_and_roll_back() {
        let config = ServerConfig { txn_timeout_ms: 0, ..ServerConfig::default() };
        let server = seeded_server(&config);
        let client = server.client();
        let m = client.open(SessionKind::Maintainer);
        client.query(m, "BEGIN").unwrap();
        let err = client.query(m, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap_err();
        assert!(
            matches!(&err, ServerError::Db(unidb::DbError::Txn(msg)) if msg.contains("timed out")),
            "got {err:?}"
        );
        // The pin is gone: COMMIT now reports there is nothing to commit,
        // and no buffered work leaked into the table.
        let err = client.query(m, "COMMIT").unwrap_err();
        assert!(matches!(err, ServerError::Db(unidb::DbError::Txn(_))), "got {err:?}");
        let rs = client.query(m, "SELECT count(*) FROM public.genes").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Int(3));
    }

    /// Closing (or dropping) a session rolls back its open transaction.
    #[test]
    fn closing_a_session_rolls_back_its_transaction() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let m = client.open(SessionKind::Maintainer);
        client.query(m, "BEGIN").unwrap();
        client.query(m, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap();
        client.close(m);
        let s = client.open(SessionKind::Public);
        let rs = client.query(s, "SELECT count(*) FROM public.genes").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Int(3));
        let stats = client.query(s, "SHOW STATS").unwrap();
        assert_eq!(stat_value(&stats, "txn_aborted"), Some(1));
    }

    /// Tentpole: `SHOW WORKLOAD` collapses literal-differing statements
    /// into one fingerprint with cumulative attribution.
    #[test]
    fn show_workload_groups_statements_by_fingerprint() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        client.query(s, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        client.query(s, "SELECT name FROM public.genes WHERE id = 2").unwrap();
        client.query(s, "SELECT name FROM public.genes WHERE id = 2").unwrap();
        let rs = client.query(s, "SHOW WORKLOAD").unwrap();
        assert_eq!(rs.columns[0], "fingerprint");
        let row = rs
            .rows
            .iter()
            .find(|r| {
                matches!(&r[1], Datum::Text(q) if q == "select name from public.genes where id = ?")
            })
            .expect("literal-differing statements share one fingerprint");
        assert_eq!(row[2], Datum::Int(3), "calls");
        assert_eq!(row[3], Datum::Int(0), "errors");
        // Third execution repeated the second's text, so the result cache
        // answered it.
        assert_eq!(row[6], Datum::Int(1), "result_hits");
        // Rows out accumulate across executions (one row each).
        assert_eq!(row[8], Datum::Int(3), "rows_out");
        match &row[0] {
            Datum::Text(id) => {
                assert_eq!(id.len(), 16, "fingerprint id is 16 hex digits: {id}");
                assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
            }
            other => panic!("fingerprint should be text, got {other:?}"),
        }
        // Errors are attributed too (same shape, bad table ⇒ new shape;
        // use a failing statement of the *same* shape instead: a type
        // error inside the where clause still parses the same text).
        // SHOW statements themselves never register.
        assert!(rs.rows.iter().all(|r| !matches!(&r[1], Datum::Text(q) if q.starts_with("show"))));
    }

    /// Tentpole: DDL that flips a fingerprint's plan (seq scan → index
    /// scan) lands in the audit ring with both sides attributed.
    #[test]
    fn show_plan_changes_records_plan_flips() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let m = client.open(SessionKind::Maintainer);
        let sql = "SELECT name FROM public.genes WHERE id = 2";
        client.query(m, sql).unwrap();
        let before = client.query(m, "SHOW PLAN CHANGES").unwrap();
        assert!(before.rows.is_empty(), "no flip yet");
        client.query(m, "CREATE INDEX ON public.genes (id)").unwrap();
        client.query(m, sql).unwrap();
        let rs = client.query(m, "SHOW PLAN CHANGES").unwrap();
        assert_eq!(rs.rows.len(), 1, "exactly one flip recorded");
        let row = &rs.rows[0];
        assert_eq!(row[0], Datum::Int(1), "seq");
        match (&row[3], &row[4], &row[5], &row[6]) {
            (
                Datum::Text(before_plan),
                Datum::Text(after_plan),
                Datum::Text(before_hash),
                Datum::Text(after_hash),
            ) => {
                assert_ne!(before_plan, after_plan, "plan label changed");
                assert!(after_plan.contains("Index"), "index plan after DDL: {after_plan}");
                assert_ne!(before_hash, after_hash);
            }
            other => panic!("bad plan-change row: {other:?}"),
        }
        // Re-running the same (now stable) plan adds nothing.
        client.query(m, sql).unwrap();
        let again = client.query(m, "SHOW PLAN CHANGES").unwrap();
        assert_eq!(again.rows.len(), 1);
        let stats = client.query(m, "SHOW STATS").unwrap();
        assert_eq!(stat_value(&stats, "obs_plan_changes"), Some(1));
    }

    /// Tentpole: `SHOW HISTORY <metric>` reads the sampler ring; an
    /// explicit tick makes the test deterministic (no background timing).
    #[test]
    fn show_history_returns_per_slot_deltas() {
        // Sampler off: ticks happen only where the test forces them.
        let config = ServerConfig { sampler_interval_ms: 0, ..ServerConfig::default() };
        let server = seeded_server(&config);
        let client = server.client();
        let s = client.open(SessionKind::Public);
        client.query(s, "SELECT count(*) FROM public.genes").unwrap();
        server.service().sample_tick();
        client.query(s, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        client.query(s, "SELECT name FROM public.genes WHERE id = 2").unwrap();
        server.service().sample_tick();
        let rs = client.query(s, "SHOW HISTORY query_ok").unwrap();
        assert_eq!(rs.columns, vec!["slot".to_string(), "value".to_string()]);
        assert_eq!(rs.rows.len(), 2);
        // First slot holds everything since start (1 query), the second
        // the delta between ticks (2 queries).
        assert_eq!(rs.rows[0], vec![Datum::Int(1), Datum::Int(1)]);
        assert_eq!(rs.rows[1], vec![Datum::Int(2), Datum::Int(2)]);
        // Derived histogram rows work too.
        let hist = client.query(s, "SHOW HISTORY query_read_latency_count").unwrap();
        assert_eq!(hist.rows.len(), 2);
        // Unknown metrics fail with a hint; a bare SHOW HISTORY also fails.
        let err = client.query(s, "SHOW HISTORY no_such_metric").unwrap_err();
        assert!(matches!(err, ServerError::Db(unidb::DbError::Unsupported(_))), "got {err:?}");
        let err = client.query(s, "SHOW HISTORY").unwrap_err();
        assert!(matches!(err, ServerError::Db(unidb::DbError::Unsupported(_))), "got {err:?}");
    }

    /// Even with the sampler disabled and no prior tick, `SHOW HISTORY`
    /// self-primes rather than returning an empty ring.
    #[test]
    fn show_history_self_primes_an_idle_ring() {
        let config = ServerConfig { sampler_interval_ms: 0, ..ServerConfig::default() };
        let server = seeded_server(&config);
        let client = server.client();
        let s = client.open(SessionKind::Public);
        let rs = client.query(s, "SHOW HISTORY query_ok").unwrap();
        assert_eq!(rs.rows.len(), 1, "on-demand tick primes the ring");
    }

    /// Satellite: per-fingerprint Prometheus families carry the stable id
    /// as a label and render under one `# TYPE` line per family.
    #[test]
    fn show_metrics_carries_per_fingerprint_labels() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        client.query(s, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        client.query(s, "SELECT name FROM public.genes WHERE id = 7").unwrap();
        let rs = client.query(s, "SHOW METRICS").unwrap();
        let text = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Datum::Text(l) => l.as_str(),
                other => panic!("metrics line should be text, got {other:?}"),
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(text.matches("# TYPE genalg_query_fingerprint_executions counter").count(), 1);
        let sample = text
            .lines()
            .find(|l| l.starts_with("genalg_query_fingerprint_executions{fingerprint=\""))
            .expect("labeled executions sample");
        let (_, value) = sample.rsplit_once(' ').unwrap();
        // Both literal variants collapsed into one fingerprint's counter.
        assert_eq!(value.parse::<u64>().unwrap(), 2);
        // SHOW STATS stays label-free: no per-fingerprint rows leak in.
        let stats = client.query(s, "SHOW STATS").unwrap();
        assert!(stats
            .rows
            .iter()
            .all(|r| !matches!(&r[0], Datum::Text(n) if n.contains("fingerprint{"))));
    }

    /// Satellite: the caches report their heap footprint in bytes, and the
    /// gauge moves with the cached payload.
    #[test]
    fn cache_byte_gauges_track_cached_payload() {
        let server = seeded_server(&ServerConfig::default());
        let client = server.client();
        let s = client.open(SessionKind::Public);
        let stats = client.query(s, "SHOW STATS").unwrap();
        assert_eq!(stat_value(&stats, "cache_plan_bytes"), Some(0));
        assert_eq!(stat_value(&stats, "cache_result_bytes"), Some(0));
        client.query(s, "SELECT id, name FROM public.genes").unwrap();
        let stats = client.query(s, "SHOW STATS").unwrap();
        let plan_bytes = stat_value(&stats, "cache_plan_bytes").unwrap();
        let result_bytes = stat_value(&stats, "cache_result_bytes").unwrap();
        assert!(plan_bytes > 0, "cached plan accounts bytes");
        // 3 rows × (one Datum-sized int cell + a text cell with payload).
        assert!(result_bytes > 0, "cached result accounts bytes");
        assert!(
            stat_value(&stats, "cache_plan_entries") == Some(1)
                && stat_value(&stats, "cache_result_entries") == Some(1)
        );
    }

    /// Tentpole: an incident bundle assembles every observatory section.
    #[test]
    fn incident_bundle_contains_all_sections() {
        let config = ServerConfig { sampler_interval_ms: 0, ..ServerConfig::default() };
        let server = seeded_server(&config);
        let client = server.client();
        let s = client.open(SessionKind::Public);
        client.query(s, "SELECT name FROM public.genes WHERE id = 1").unwrap();
        let bundle = server.service().incident_bundle("test_reason");
        assert_eq!(
            bundle.section_titles(),
            vec!["stats", "fingerprints", "plan changes", "history", "slow queries", "trace"]
        );
        let text = bundle.render();
        assert!(text.starts_with("incident: test_reason"));
        assert!(text.contains("select name from public.genes where id = ?"));
        // The history section self-primed even though no sampler ran.
        assert!(text.contains("query_ok: 1:"), "history series present:\n{text}");
    }

    #[test]
    fn show_trace_surfaces_spans_when_tracing_enabled() {
        let config = ServerConfig { tracing: true, ..ServerConfig::default() };
        let server = seeded_server(&config);
        let client = server.client();
        let s = client.open(SessionKind::Public);
        client.query(s, "SELECT count(*) FROM public.genes").unwrap();
        let rs = client.query(s, "SHOW TRACE").unwrap();
        assert_eq!(rs.columns, vec!["span".to_string()]);
        let spans: Vec<String> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Datum::Text(t) => t.clone(),
                other => panic!("span row should be text, got {other:?}"),
            })
            .collect();
        assert!(
            spans.iter().any(|l| l.starts_with("server.query")),
            "expected a server.query span in {spans:?}"
        );
        assert!(
            spans.iter().any(|l| l.starts_with("exec.query")),
            "expected an exec.query span in {spans:?}"
        );
    }
}
