//! Error surface of the service layer.

use std::fmt;
use unidb::DbError;

/// Errors a client can receive from the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The admission queue is full. The request was *not* executed; the
    /// client should wait roughly `retry_after_ms` and resubmit.
    Busy { retry_after_ms: u64 },
    /// The engine rejected or failed the statement.
    Db(DbError),
    /// The session id is unknown (never opened, or already closed).
    UnknownSession,
    /// A public (anonymous) session attempted a write statement.
    ReadOnly(String),
    /// BQL text failed to parse or compile.
    Bql(String),
    /// Malformed wire frame or request.
    Protocol(String),
    /// Transport-level failure (connection dropped, I/O error).
    Io(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Busy { retry_after_ms } => {
                write!(f, "server busy: admission queue full, retry after {retry_after_ms} ms")
            }
            ServerError::Db(e) => write!(f, "{e}"),
            ServerError::UnknownSession => write!(f, "unknown session"),
            ServerError::ReadOnly(m) => write!(f, "read-only session: {m}"),
            ServerError::Bql(m) => write!(f, "BQL error: {m}"),
            ServerError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServerError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DbError> for ServerError {
    fn from(e: DbError) -> Self {
        ServerError::Db(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e.to_string())
    }
}

/// Result alias for the service layer.
pub type ServerResult<T> = Result<T, ServerError>;
