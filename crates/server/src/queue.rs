//! Worker pool with bounded admission and backpressure.
//!
//! Requests enter through [`WorkerPool::submit`], which *never blocks*: if
//! the queue has room the job is accepted, otherwise the caller immediately
//! gets [`ServerError::Busy`] with a retry hint. Saturation therefore sheds
//! load at the door instead of letting latency grow without bound — the
//! client sees a structured error it can back off on.

use crate::error::{ServerError, ServerResult};
use crate::metrics::Metrics;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Queue wait of the job currently running on this worker thread, in
    /// microseconds. Set at pickup, consumed by the query service so
    /// per-fingerprint attribution can include admission delay without
    /// threading a value through every job closure.
    static LAST_QUEUE_WAIT_US: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Take (and reset) the queue wait recorded for the job running on the
/// current thread. Returns 0 off worker threads or when already consumed —
/// the reset is what keeps a worker's next, differently-routed statement
/// from inheriting a stale wait.
pub(crate) fn take_last_queue_wait_us() -> u64 {
    LAST_QUEUE_WAIT_US.with(|c| c.replace(0))
}

/// A fixed-size pool of worker threads fed by a bounded queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    metrics: Arc<Metrics>,
}

impl WorkerPool {
    /// Spawn `workers` threads behind a queue of `queue_capacity` slots.
    pub fn new(workers: usize, queue_capacity: usize, metrics: Arc<Metrics>) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(queue_capacity >= 1, "need at least one queue slot");
        let (tx, rx) = bounded::<Job>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("genalg-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &metrics))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers: handles, queue_capacity, metrics }
    }

    /// Enqueue a job, or reject immediately with [`ServerError::Busy`] if
    /// the queue is full.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> ServerResult<()> {
        let tx = self.tx.as_ref().expect("pool not shut down");
        self.metrics.jobs_submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.metrics.enqueue();
        // Stamp admission time so pickup can record how long the job sat in
        // the queue — the latency component `queue_depth` only hints at.
        let metrics = Arc::clone(&self.metrics);
        let enqueued = std::time::Instant::now();
        let job = move || {
            let waited = enqueued.elapsed();
            metrics.queue_wait.record(waited);
            let us = waited.as_micros().min(u128::from(u64::MAX)) as u64;
            LAST_QUEUE_WAIT_US.with(|c| c.set(us));
            job();
        };
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(err) => {
                self.metrics.dequeue();
                match err {
                    TrySendError::Full(_) => {
                        self.metrics
                            .rejected_busy
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        // Hint scales with how much work one full queue
                        // represents; a floor keeps tight retry loops polite.
                        let hint = (self.queue_capacity as u64).max(10);
                        Err(ServerError::Busy { retry_after_ms: hint })
                    }
                    TrySendError::Disconnected(_) => {
                        Err(ServerError::Io("worker pool shut down".into()))
                    }
                }
            }
        }
    }

    /// Run a job on the pool and block the *calling* thread until it
    /// finishes, returning its value. Admission still applies: a full queue
    /// rejects with `Busy` without blocking.
    pub fn run<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> ServerResult<T> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit(move || {
            let _ = tx.send(job());
        })?;
        rx.recv().map_err(|_| ServerError::Io("worker died before replying".into()))
    }

    /// Queue capacity this pool admits up to.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Drain the queue and join every worker.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Dropping the sender disconnects the channel; workers exit once the
        // queue drains.
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, metrics: &Metrics) {
    loop {
        // Take the lock only to pull one job; run it with the lock released
        // so other workers keep draining the queue.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        metrics.dequeue();
        // A job that panics (a bug in one session's statement, a poisoned
        // engine invariant) must not take the worker thread down with it —
        // that would shrink the pool until the whole server wedges. The
        // panicking caller's reply channel drops, so *its* client gets a
        // structured error; everyone else keeps their worker.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            metrics.worker_panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        } else {
            metrics.jobs_completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_jobs_and_returns_values() {
        let pool = WorkerPool::new(4, 16, Arc::new(Metrics::default()));
        let results: Vec<u64> = (0..10).map(|i| pool.run(move || i * 2).unwrap()).collect();
        assert_eq!(results, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn saturation_rejects_with_busy() {
        let metrics = Arc::new(Metrics::default());
        let pool = WorkerPool::new(1, 1, Arc::clone(&metrics));
        // Park the single worker so the queue backs up.
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        pool.submit(move || {
            let _ = block_rx.recv();
        })
        .unwrap();
        // Fill the one queue slot, then overflow. With the worker parked at
        // most 2 submissions are in flight; keep trying until one bounces.
        let mut saw_busy = None;
        for _ in 0..4 {
            match pool.submit(|| ()) {
                Ok(()) => continue,
                Err(e) => {
                    saw_busy = Some(e);
                    break;
                }
            }
        }
        match saw_busy {
            Some(ServerError::Busy { retry_after_ms }) => assert!(retry_after_ms > 0),
            other => panic!("expected Busy rejection, got {other:?}"),
        }
        assert!(metrics.rejected_busy.load(Ordering::Relaxed) >= 1);
        block_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_poison_the_pool() {
        let metrics = Arc::new(Metrics::default());
        // One worker: if the panic killed it, every later job would hang.
        let pool = WorkerPool::new(1, 8, Arc::clone(&metrics));
        let err = pool.run(|| -> u64 { panic!("boom") });
        assert!(
            matches!(err, Err(ServerError::Io(_))),
            "caller of a panicked job must get a structured error, got {err:?}"
        );
        // The sole worker survived and still runs jobs.
        assert_eq!(pool.run(|| 7u64).unwrap(), 7);
        assert_eq!(metrics.worker_panics.load(Ordering::Relaxed), 1);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        let metrics = Arc::new(Metrics::default());
        let pool = WorkerPool::new(2, 32, Arc::clone(&metrics));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 20);
        // Job conservation at quiescence: everything submitted completed,
        // and every admitted job left a queue-wait sample.
        assert_eq!(metrics.jobs_submitted.load(Ordering::Relaxed), 20);
        assert_eq!(metrics.jobs_completed.load(Ordering::Relaxed), 20);
        assert_eq!(metrics.queue_wait.count(), 20);
    }
}
