//! Fingerprint determinism under intra-query parallelism.
//!
//! The workload registry is first-come bounded (no eviction), fingerprints
//! are a pure function of statement text, and plan hashes are FxHash over
//! deterministic `EXPLAIN` trees — so running the *same* seeded qdiff
//! statement stream against engines at parallelism 1 and parallelism 4
//! must produce identical fingerprint sets and identical per-fingerprint
//! plan hashes. Divergence would mean some part of the observatory keyed
//! on execution scheduling instead of the statement stream.

use genalg_server::{Lang, QueryService, ServerConfig, SessionKind};
use qdiff::gen_scenario;
use std::collections::BTreeMap;
use std::sync::Arc;
use unidb::Database;

/// Drive one scenario through a fresh service whose engine runs at the
/// given parallelism; return `fingerprint id -> (text, plan_hash)`.
fn run_stream(seed: u64, parallelism: usize) -> BTreeMap<String, (String, u64)> {
    let db = Arc::new(Database::in_memory());
    db.set_parallelism(parallelism);
    let svc = QueryService::new(db, &ServerConfig::default());
    let s = svc.open_session(SessionKind::Maintainer);
    let sc = gen_scenario(seed);
    for ddl in sc.setup_sql() {
        svc.execute(s, Lang::Sql, &ddl).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
    for op in &sc.ops {
        // Errors are part of the stream too: a failing statement still
        // registers its fingerprint, identically on both sides.
        let _ = svc.execute(s, Lang::Sql, &sc.op_sql(op));
    }
    svc.fingerprints().snapshot().into_iter().map(|fp| (fp.id, (fp.text, fp.plan_hash))).collect()
}

#[test]
fn fingerprints_and_plan_hashes_ignore_parallelism() {
    for seed in 0..8u64 {
        let serial = run_stream(seed, 1);
        let parallel = run_stream(seed, 4);
        assert!(!serial.is_empty(), "seed {seed}: scenario registered no fingerprints");
        assert_eq!(
            serial.keys().collect::<Vec<_>>(),
            parallel.keys().collect::<Vec<_>>(),
            "seed {seed}: fingerprint sets diverged across parallelism"
        );
        for (id, (text, hash)) in &serial {
            let (ptext, phash) = &parallel[id];
            assert_eq!(text, ptext, "seed {seed}: fingerprint {id} text diverged");
            assert_eq!(hash, phash, "seed {seed}: fingerprint {id} plan hash diverged: {text}");
        }
    }
}

#[test]
fn repeated_runs_are_identical() {
    // Same stream, same parallelism, twice: byte-for-byte identical
    // registry contents (guards against any ambient nondeterminism —
    // time, hashing, iteration order — leaking into the observatory).
    let a = run_stream(3, 4);
    let b = run_stream(3, 4);
    assert_eq!(a, b);
}
