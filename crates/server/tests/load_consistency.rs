//! Accounting invariants under sustained concurrent load with cache churn
//! (ISSUE 7 satellite). The worker pool's conservation law must hold at
//! quiescence no matter how the run went — jobs can complete, panic, or
//! be shed, but never vanish:
//!
//! * `jobs_submitted == jobs_completed + worker_panics + rejected_busy`
//! * `queue_wait_count == jobs_completed + worker_panics` — the
//!   queue-wait histogram samples every *admitted* job exactly once;
//! * `query_ok + query_err == jobs_completed` — every job that ran to
//!   completion answered exactly one statement.

use genalg_server::{Server, ServerConfig, ServerError, SessionKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use unidb::{Database, Datum, DbResult, Role};

const CHURNERS: usize = 2;
const READERS: usize = 6;
const OPS_PER_THREAD: usize = 150;

#[test]
fn pool_accounting_survives_churn_panics_and_shedding() {
    let db = Arc::new(Database::in_memory());
    db.execute_script_as(
        "CREATE TABLE public.genes (id INT, name TEXT);
         INSERT INTO public.genes VALUES (1, 'lacZ'), (2, 'recA'), (3, 'rpoB');",
        &Role::Maintainer,
    )
    .unwrap();
    // A scalar that always panics: the deterministic way to exercise the
    // worker-panic leg of the conservation law from the statement path.
    db.register_scalar(
        "boom",
        Arc::new(|_: &[Datum]| -> DbResult<Datum> { panic!("injected worker panic") }),
    )
    .unwrap();

    // Two workers behind two queue slots, eight client threads: the queue
    // saturates constantly, so the shed leg gets real traffic too.
    let config = ServerConfig { workers: 2, queue_capacity: 2, ..ServerConfig::default() };
    let server = Server::new(Arc::clone(&db), &config);
    let client = server.client();

    let shed = Arc::new(AtomicU64::new(0));
    let panicked = Arc::new(AtomicU64::new(0));

    let mut threads = Vec::new();
    // Churners: DDL (create/drop) bumps the catalog generation and every
    // cached plan; DML on genes bumps its table version and every cached
    // result — the cache-hostile half of the workload.
    for t in 0..CHURNERS {
        let client = client.clone();
        let shed = Arc::clone(&shed);
        threads.push(std::thread::spawn(move || {
            let s = client.open(SessionKind::Maintainer);
            for i in 0..OPS_PER_THREAD {
                let sql = match i % 3 {
                    0 => format!("CREATE TABLE public.churn_{t}_{i} (x INT)"),
                    1 => format!("INSERT INTO public.genes VALUES ({}, 'g')", 100 + t * 1000 + i),
                    _ => format!("DROP TABLE public.churn_{t}_{}", i - 2),
                };
                match client.query(s, &sql) {
                    Ok(_) => {}
                    Err(ServerError::Busy { .. }) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    // A shed CREATE makes the paired DROP fail: structured
                    // Db errors are part of normal churn here.
                    Err(ServerError::Db(_)) => {}
                    Err(other) => panic!("unexpected error: {other:?}"),
                }
            }
            client.close(s);
        }));
    }
    // Readers: mostly cacheable reads, plus a panicking statement every
    // 30th op.
    for r in 0..READERS {
        let client = client.clone();
        let shed = Arc::clone(&shed);
        let panicked = Arc::clone(&panicked);
        threads.push(std::thread::spawn(move || {
            let s = client.open(SessionKind::Public);
            for i in 0..OPS_PER_THREAD {
                let sql = match i % 30 {
                    29 => "SELECT boom()".to_string(),
                    n if n % 2 == 0 => "SELECT count(*) FROM public.genes".to_string(),
                    n => format!("SELECT name FROM public.genes WHERE id = {}", n + r),
                };
                match client.query(s, &sql) {
                    Ok(_) => {}
                    Err(ServerError::Busy { .. }) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Err(ServerError::Io(_)) if sql == "SELECT boom()" => {
                        panicked.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ServerError::Db(_)) => {}
                    Err(other) => panic!("unexpected error: {other:?}"),
                }
            }
            client.close(s);
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    // Quiescence: every client call has returned, so every admitted job
    // has run. The worker bumps its completion/panic counter *after*
    // replying (a panic can only be counted once the unwind finishes), so
    // give the final increments a moment to land, then read the snapshot
    // straight from the service (not through the pool) so no in-flight
    // job skews the counters.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let snap = loop {
        let snap = server.service().snapshot();
        let v = |name: &str| snap.value(name).unwrap_or(0);
        let accounted =
            v("server_jobs_completed") + v("server_worker_panics") + v("server_rejected_busy");
        if accounted == v("server_jobs_submitted") || std::time::Instant::now() > deadline {
            break snap;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let v = |name: &str| snap.value(name).unwrap_or_else(|| panic!("missing stat {name}"));

    let submitted = v("server_jobs_submitted");
    let completed = v("server_jobs_completed");
    let panics = v("server_worker_panics");
    let busy = v("server_rejected_busy");
    assert_eq!(
        submitted,
        completed + panics + busy,
        "pool conservation law violated: {submitted} submitted vs {completed} completed + \
         {panics} panicked + {busy} shed"
    );
    assert_eq!(
        snap.hist("query_queue_wait").expect("queue_wait histogram").count,
        completed + panics,
        "queue_wait must sample every admitted job exactly once"
    );
    assert_eq!(
        v("query_ok") + v("query_err"),
        completed,
        "every completed job answers exactly one statement"
    );

    // The run really exercised all three legs and really churned the
    // caches.
    assert_eq!(panics, panicked.load(Ordering::Relaxed), "client saw every panic");
    assert!(panics >= 1, "panic leg never ran");
    assert_eq!(busy, shed.load(Ordering::Relaxed), "client saw every shed");
    assert!(busy >= 1, "shed leg never ran (queue never saturated)");
    assert!(v("cache_plan_misses") > 1, "DDL churn should invalidate plans");
    assert!(v("cache_result_misses") > 1, "DML churn should invalidate results");
    assert_eq!(v("server_queue_depth"), 0, "queue drained at quiescence");
}
