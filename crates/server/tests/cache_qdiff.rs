//! qdiff-driven result-cache correctness.
//!
//! Two [`QueryService`]s over the *same* database: one with caches on, one
//! with caches off (ground truth — every query replans and re-executes).
//! We drive generated scenarios through the cached service and, after every
//! DML statement, replay every SELECT seen so far on both services. If the
//! generation-counter invalidation ever serves a stale cached result, the
//! two sides disagree and the seed pinpoints the statement interleaving.

use genalg_server::{Lang, QueryService, ServerConfig, SessionKind};
use qdiff::{gen_scenario, Op};
use std::sync::Arc;
use unidb::Database;

fn services() -> (QueryService, QueryService) {
    let db = Arc::new(Database::in_memory());
    let cached = QueryService::new(
        Arc::clone(&db),
        &ServerConfig { caches_enabled: true, ..ServerConfig::default() },
    );
    let uncached =
        QueryService::new(db, &ServerConfig { caches_enabled: false, ..ServerConfig::default() });
    (cached, uncached)
}

#[test]
fn cached_selects_never_go_stale_under_fuzzed_dml() {
    for seed in 0..24u64 {
        let sc = gen_scenario(seed);
        let (cached, uncached) = services();
        let cs = cached.open_session(SessionKind::Maintainer);
        let us = uncached.open_session(SessionKind::Maintainer);

        for ddl in sc.setup_sql() {
            cached.execute(cs, Lang::Sql, &ddl).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }

        let mut seen_selects: Vec<String> = Vec::new();
        for op in &sc.ops {
            let sql = sc.op_sql(op);
            if let Op::Query(_) = op {
                // Run it twice through the cached side so the second run is
                // a cache hit, then once uncached; all three must agree.
                let first = cached.execute(cs, Lang::Sql, &sql);
                let hit = cached.execute(cs, Lang::Sql, &sql);
                let truth = uncached.execute(us, Lang::Sql, &sql);
                match (&first, &hit, &truth) {
                    (Ok(a), Ok(b), Ok(t)) => {
                        assert_eq!(a.rows, b.rows, "seed {seed}: cache hit differs: {sql}");
                        assert_eq!(
                            sorted(&a.rows),
                            sorted(&t.rows),
                            "seed {seed}: cached vs uncached differ: {sql}"
                        );
                    }
                    (Err(_), Err(_), Err(_)) => {}
                    _ => panic!(
                        "seed {seed}: error disagreement on {sql}: first={first:?} hit={hit:?} truth={truth:?}"
                    ),
                }
                seen_selects.push(sql);
            } else {
                // DML goes through the cached service (shared database, so
                // it must run exactly once); afterwards every previously
                // cached SELECT must reflect the new state.
                let r = cached.execute(cs, Lang::Sql, &sql);
                if r.is_err() {
                    // Generated DML only errors when a filter errors, in
                    // which case the statement was a no-op on both sides.
                    continue;
                }
                for sel in &seen_selects {
                    let c = cached.execute(cs, Lang::Sql, sel);
                    let t = uncached.execute(us, Lang::Sql, sel);
                    match (&c, &t) {
                        (Ok(c), Ok(t)) => assert_eq!(
                            sorted(&c.rows),
                            sorted(&t.rows),
                            "seed {seed}: stale cached result after `{sql}` for `{sel}`"
                        ),
                        (Err(_), Err(_)) => {}
                        _ => panic!(
                            "seed {seed}: error disagreement replaying `{sel}` after `{sql}`"
                        ),
                    }
                }
            }
        }
    }
}

/// Order-insensitive comparison: scan order is legitimate nondeterminism,
/// staleness is not. Debug strings give a total order without requiring
/// `Ord` on datums (no NaNs are generated).
fn sorted(rows: &[Vec<unidb::Datum>]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}
