//! Stress: many sessions hammering one server with a mixed
//! SELECT / INSERT / UPDATE workload. Checks three properties:
//!
//! * **no deadlocks** — the test completes (threads join);
//! * **no lost updates** — every INSERT lands, every UPDATE increment is
//!   reflected in the final counter;
//! * **result-cache coherence** — readers hitting the cached count never
//!   observe it going backwards, and the final cached read equals the true
//!   row count.

use genalg_server::{stat_value, Server, ServerConfig, ServerError, SessionKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use unidb::{Database, Datum, Role};

const WRITERS: usize = 4;
const READERS: usize = 4;
const OPS_PER_WRITER: i64 = 50;

fn retrying<T>(mut f: impl FnMut() -> Result<T, ServerError>) -> T {
    loop {
        match f() {
            Ok(v) => return v,
            Err(ServerError::Busy { retry_after_ms }) => {
                std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.min(5)));
            }
            Err(e) => panic!("unexpected server error: {e}"),
        }
    }
}

#[test]
fn mixed_workload_under_contention() {
    let db = Arc::new(Database::in_memory());
    db.execute_script_as(
        "CREATE TABLE public.events (tid INT, seq INT);
         CREATE TABLE public.counters (id INT, n INT);
         INSERT INTO public.counters VALUES (0, 0);",
        &Role::Maintainer,
    )
    .unwrap();
    let config = ServerConfig { workers: 8, queue_capacity: 128, ..ServerConfig::default() };
    let server = Server::new(Arc::clone(&db), &config);
    let client = server.client();

    let done = Arc::new(AtomicBool::new(false));

    // 4 writer sessions: interleave inserts with read-modify-write updates.
    let writers: Vec<_> = (0..WRITERS)
        .map(|tid| {
            let client = client.clone();
            std::thread::spawn(move || {
                let s = client.open(SessionKind::Maintainer);
                for seq in 0..OPS_PER_WRITER {
                    retrying(|| {
                        client.query(s, &format!("INSERT INTO public.events VALUES ({tid}, {seq})"))
                    });
                    retrying(|| {
                        client.query(s, "UPDATE public.counters SET n = n + 1 WHERE id = 0")
                    });
                }
                client.close(s);
            })
        })
        .collect();

    // 4 reader sessions: the same two queries over and over, so most runs
    // come from the result cache. Coherence check: counts never regress.
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let client = client.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let s = client.open(SessionKind::Public);
                let mut last_events = 0i64;
                let mut last_counter = 0i64;
                let mut observations = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let rs = retrying(|| client.query(s, "SELECT count(*) FROM public.events"));
                    let events = rs.rows[0][0].as_int().unwrap();
                    let rs =
                        retrying(|| client.query(s, "SELECT n FROM public.counters WHERE id = 0"));
                    let counter = rs.rows[0][0].as_int().unwrap();
                    assert!(events >= last_events, "events regressed: {events} < {last_events}");
                    assert!(
                        counter >= last_counter,
                        "counter regressed: {counter} < {last_counter}"
                    );
                    last_events = events;
                    last_counter = counter;
                    observations += 1;
                }
                client.close(s);
                observations
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer thread panicked (deadlock or lost update?)");
    }
    done.store(true, Ordering::Relaxed);
    let mut total_observations = 0;
    for r in readers {
        total_observations += r.join().expect("reader thread panicked");
    }
    assert!(total_observations > 0, "readers never observed anything");

    // No lost updates, through the same (possibly cached) read path.
    let s = client.open(SessionKind::Public);
    let expected = (WRITERS as i64) * OPS_PER_WRITER;
    let rs = retrying(|| client.query(s, "SELECT count(*) FROM public.events"));
    assert_eq!(rs.rows[0][0], Datum::Int(expected), "lost INSERTs");
    let rs = retrying(|| client.query(s, "SELECT n FROM public.counters WHERE id = 0"));
    assert_eq!(rs.rows[0][0], Datum::Int(expected), "lost UPDATE increments");
    // Per-writer rows all present.
    for tid in 0..WRITERS {
        let rs = retrying(|| {
            client.query(s, &format!("SELECT count(*) FROM public.events WHERE tid = {tid}"))
        });
        assert_eq!(rs.rows[0][0], Datum::Int(OPS_PER_WRITER), "writer {tid} lost rows");
    }

    // The cache did real work during the run and agrees with the engine:
    // bypassing the service gives the same counts.
    let stats = retrying(|| client.query(s, "SHOW STATS"));
    assert!(stat_value(&stats, "query_ok").unwrap() > 0);
    let direct = db.execute("SELECT count(*) FROM public.events").unwrap();
    assert_eq!(direct.rows[0][0], Datum::Int(expected));
}

#[test]
fn sixteen_concurrent_readonly_sessions_complete() {
    // 16 read-only sessions each running a scan-heavy query repeatedly;
    // exercises the shared read lock end to end. (Speedup vs sequential is
    // measured by the server bench; here we only require correctness.)
    let db = Arc::new(Database::in_memory());
    db.execute_as("CREATE TABLE public.seqs (id INT, gc FLOAT)", &Role::Maintainer).unwrap();
    for chunk in 0..4 {
        let rows: Vec<String> = (0..64)
            .map(|i| {
                let id = chunk * 64 + i;
                format!("({id}, 0.{:02})", id % 100)
            })
            .collect();
        db.execute_as(
            &format!("INSERT INTO public.seqs VALUES {}", rows.join(", ")),
            &Role::Maintainer,
        )
        .unwrap();
    }
    let config = ServerConfig {
        workers: 16,
        queue_capacity: 64,
        caches_enabled: false, // force every query through the engine
        ..ServerConfig::default()
    };
    let server = Server::new(db, &config);
    let client = server.client();
    let handles: Vec<_> = (0..16)
        .map(|_| {
            let client = client.clone();
            std::thread::spawn(move || {
                let s = client.open(SessionKind::Public);
                for _ in 0..20 {
                    let rs = retrying(|| {
                        client.query(
                            s,
                            "SELECT count(*) FROM public.seqs WHERE gc > 0.25 AND id < 200",
                        )
                    });
                    assert_eq!(rs.rows.len(), 1);
                }
                client.close(s);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
