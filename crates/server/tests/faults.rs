//! Graceful degradation under storage faults: a session whose statement
//! hits an injected IO error gets a structured [`ServerError::Db`] reply,
//! the worker pool stays healthy, other sessions keep being served, and
//! once the "disk" recovers the same server accepts writes again — no
//! restart required.

use genalg_server::{stat_value, Server, ServerConfig, ServerError, SessionKind};
use std::path::Path;
use std::sync::Arc;
use unidb::{Database, DbError, FaultConfig, FaultVfs};

fn faulty_server(vfs: &FaultVfs) -> Server {
    vfs.disarm();
    let db = Database::open_with_vfs(Path::new("/srvdb"), Arc::new(vfs.clone()))
        .expect("open with faults disarmed");
    db.recover().expect("recover with faults disarmed");
    db.execute_as("CREATE TABLE public.genes (id INT, name TEXT)", &unidb::Role::Maintainer)
        .unwrap();
    db.execute_as("INSERT INTO public.genes VALUES (1, 'lacZ')", &unidb::Role::Maintainer).unwrap();
    Server::new(Arc::new(db), &ServerConfig { workers: 2, ..ServerConfig::default() })
}

#[test]
fn io_faults_degrade_to_structured_errors_not_dead_workers() {
    let vfs = FaultVfs::new(FaultConfig::transient(0x5E4E));
    let server = faulty_server(&vfs);
    let client = server.client();
    let writer = client.open(SessionKind::Maintainer);
    let reader = client.open(SessionKind::Public);

    // Hammer writes with faults armed: some fail, and every failure must
    // surface as the engine's structured Io error — never a panic, a hung
    // worker, or a dropped session.
    vfs.arm();
    let mut io_errors = 0;
    for i in 0..120 {
        match client.query(writer, &format!("INSERT INTO public.genes VALUES ({}, 'g{i}')", i + 2))
        {
            Ok(_) => {}
            Err(ServerError::Db(DbError::Io(_))) => io_errors += 1,
            Err(other) => panic!("expected structured Io error, got {other:?}"),
        }
    }
    assert!(io_errors > 0, "fault config injected nothing; test proves nothing");

    // A different session still gets answers while the disk is bad — reads
    // are served from the buffer pool and caches.
    let rs = client.query(reader, "SELECT count(*) FROM public.genes").unwrap();
    assert!(rs.rows[0][0].as_int().unwrap() >= 1);

    // The fault counter is operator-visible.
    let stats = client.query(reader, "SHOW STATS").unwrap();
    assert_eq!(stat_value(&stats, "server_io_errors"), Some(io_errors));
    assert_eq!(stat_value(&stats, "server_worker_panics"), Some(0));

    // Disk recovers: the same server, same sessions, writes flow again.
    vfs.disarm();
    let rs = client.query(writer, "INSERT INTO public.genes VALUES (9999, 'post')").unwrap();
    assert_eq!(rs.affected, 1);
    let rs = client.query(reader, "SELECT name FROM public.genes WHERE id = 9999").unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn database_reopens_cleanly_after_service_under_faults() {
    let vfs = FaultVfs::new(FaultConfig::transient(0xC0FF));
    let mut ok_ids = Vec::new();
    {
        let server = faulty_server(&vfs);
        let client = server.client();
        let writer = client.open(SessionKind::Maintainer);
        vfs.arm();
        for i in 0..80i64 {
            if client
                .query(writer, &format!("INSERT INTO public.genes VALUES ({}, 'x')", i + 2))
                .is_ok()
            {
                ok_ids.push(i + 2);
            }
        }
        vfs.disarm();
    } // server drops; pool drains

    // A fresh open on the surviving image recovers every acknowledged row.
    let db = Database::open_with_vfs(Path::new("/srvdb"), Arc::new(vfs.clone())).unwrap();
    db.recover().unwrap();
    for id in &ok_ids {
        let rs = db.execute(&format!("SELECT id FROM public.genes WHERE id = {id}")).unwrap();
        assert_eq!(rs.rows.len(), 1, "acknowledged insert of id {id} lost after reopen");
    }
}
