//! The Busy-mid-transaction pin bug (ISSUE 7 satellite): admission
//! rejection happens *before* a statement reaches the service, so a
//! session shed with `Busy` inside an open transaction never touches its
//! transaction's idle clock — and the old lazy, per-session reap only ran
//! when that same session spoke again. A client that gave up after Busy
//! (or whose connection dropped without a close frame) left its
//! transaction pinning an MVCC snapshot forever.
//!
//! The fix is the global sweep ([`genalg_server::QueryService::
//! reap_expired_txns`]): *any* session's traffic reaps other sessions'
//! expired transactions, rate-limited so at most one statement per period
//! pays for the scan.

use genalg_server::{stat_value, Lang, Server, ServerConfig, ServerError, SessionKind, TcpClient};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unidb::{Database, Datum, Role};

fn seeded_server(config: &ServerConfig) -> Server {
    let db = Arc::new(Database::in_memory());
    db.execute_script_as(
        "CREATE TABLE public.genes (id INT, name TEXT);
         INSERT INTO public.genes VALUES (1, 'lacZ'), (2, 'recA'), (3, 'rpoB');",
        &Role::Maintainer,
    )
    .unwrap();
    Server::new(db, config)
}

/// Full end-to-end repro: a transaction whose owner was shed with `Busy`
/// and never returns is reaped by other sessions' traffic.
#[test]
fn busy_shed_mid_transaction_is_reaped_by_other_traffic() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        txn_timeout_ms: 50,
        ..ServerConfig::default()
    };
    let server = seeded_server(&config);
    let client = server.client();

    // Session A opens a transaction and buffers a write.
    let a = client.open(SessionKind::Maintainer);
    client.query(a, "BEGIN").unwrap();
    client.query(a, "INSERT INTO public.genes VALUES (4, 'gyrA')").unwrap();

    // Saturate the pool: park the only worker, fill the only queue slot.
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    server
        .pool()
        .submit(move || {
            started_tx.send(()).unwrap();
            let _ = release_rx.recv();
        })
        .unwrap();
    started_rx.recv().unwrap();
    server.pool().submit(|| ()).unwrap();

    // A's next in-transaction statement is shed at admission — it never
    // reaches the service, so nothing touches the transaction's idle
    // clock. A gives up here: no COMMIT, no ROLLBACK, no close.
    let err = client.query(a, "INSERT INTO public.genes VALUES (5, 'rpoC')").unwrap_err();
    assert!(matches!(err, ServerError::Busy { .. }), "got {err:?}");
    release_tx.send(()).unwrap();

    // Other sessions keep talking. Once A's transaction has sat idle past
    // the timeout, their traffic must reap it — A never speaks again.
    let b = client.open(SessionKind::Public);
    let deadline = Instant::now() + Duration::from_secs(10);
    let reaped = loop {
        std::thread::sleep(Duration::from_millis(20));
        let stats = match client.query(b, "SHOW STATS") {
            Ok(rs) => rs,
            Err(ServerError::Busy { .. }) => continue, // queue still draining
            Err(other) => panic!("unexpected error {other:?}"),
        };
        if stat_value(&stats, "txn_reaped") == Some(1) {
            break stats;
        }
        assert!(Instant::now() < deadline, "transaction was never reaped: {stats:?}");
    };
    assert_eq!(stat_value(&reaped, "txn_begun"), Some(1));
    assert_eq!(stat_value(&reaped, "txn_aborted"), Some(1));
    assert_eq!(stat_value(&reaped, "txn_committed"), Some(0));

    // The buffered insert died with the transaction...
    let rs = client.query(b, "SELECT count(*) FROM public.genes").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Int(3));
    // ...and the engine is fully open for new writers on the same rows.
    let w = client.open(SessionKind::Maintainer);
    client.query(w, "BEGIN").unwrap();
    client.query(w, "UPDATE public.genes SET name = 'fresh' WHERE id = 1").unwrap();
    client.query(w, "COMMIT").unwrap();
    let rs = client.query(b, "SELECT name FROM public.genes WHERE id = 1").unwrap();
    assert_eq!(rs.rows, vec![vec![Datum::Text("fresh".into())]]);
}

/// A TCP connection that drops mid-transaction without a close frame is
/// the same leak through a different door: no close, no further
/// statements, nothing to trigger the per-session check.
#[test]
fn dropped_connection_mid_transaction_is_reaped() {
    let config = ServerConfig { txn_timeout_ms: 50, ..ServerConfig::default() };
    let server = seeded_server(&config);
    let handle = server.listen("127.0.0.1:0").unwrap();

    {
        let mut doomed = TcpClient::connect(handle.addr()).unwrap();
        let s = doomed.open(SessionKind::Maintainer).unwrap();
        doomed.query(s, Lang::Sql, "BEGIN").unwrap();
        doomed.query(s, Lang::Sql, "DELETE FROM public.genes WHERE id = 2").unwrap();
        // Connection drops here — no CloseSession frame ever arrives.
    }

    let mut survivor = TcpClient::connect(handle.addr()).unwrap();
    let s = survivor.open(SessionKind::Public).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let stats = survivor.query(s, Lang::Sql, "SHOW STATS").unwrap();
        if stat_value(&stats, "txn_reaped") == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "dropped connection's txn never reaped");
    }
    // The buffered delete is gone with its transaction.
    let rs = survivor.query(s, Lang::Sql, "SELECT count(*) FROM public.genes").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Int(3));
    handle.stop();
}

/// The public sweep API reaps deterministically without waiting for
/// traffic, doesn't touch unexpired transactions, and is idempotent.
#[test]
fn explicit_sweep_reaps_only_expired_transactions() {
    let config = ServerConfig { txn_timeout_ms: 40, ..ServerConfig::default() };
    let server = seeded_server(&config);
    let client = server.client();

    let stale = client.open(SessionKind::Maintainer);
    client.query(stale, "BEGIN").unwrap();
    client.query(stale, "INSERT INTO public.genes VALUES (10, 'stale')").unwrap();

    // Not yet expired: the sweep must leave it alone.
    assert_eq!(server.service().reap_expired_txns(), 0);

    // No traffic while the transaction ages past the timeout, so only the
    // explicit call below can reap it.
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(server.service().reap_expired_txns(), 1);
    assert_eq!(server.service().reap_expired_txns(), 0, "sweep is idempotent");

    // The stale session learns its transaction is gone on next use, and
    // its buffered insert never landed.
    let err = client.query(stale, "COMMIT").unwrap_err();
    assert!(matches!(err, ServerError::Db(unidb::DbError::Txn(_))), "got {err:?}");
    let r = client.open(SessionKind::Public);
    let rs = client.query(r, "SELECT count(*) FROM public.genes").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Int(3));

    // A fresh transaction on the same table commits cleanly afterwards.
    let live = client.open(SessionKind::Maintainer);
    client.query(live, "BEGIN").unwrap();
    client.query(live, "INSERT INTO public.genes VALUES (11, 'live')").unwrap();
    client.query(live, "COMMIT").unwrap();
    let rs = client.query(r, "SELECT count(*) FROM public.genes").unwrap();
    assert_eq!(rs.rows[0][0], Datum::Int(4));
}
