//! Regenerates the **Figure 1 vs Figure 3** architectural comparison: the
//! query-driven mediator pays per-query source round-trips and central
//! re-computation; the warehouse answers from materialized, reconciled
//! data and pays at refresh time.
//!
//! For each simulated source latency the harness measures, over the same
//! workload:
//!   * point lookup latency (mediator vs warehouse),
//!   * containment search latency,
//!   * aggregate-query latency,
//!   * source requests consumed per query (the data-shipping cost),
//!   * warehouse refresh cost after a batch of source changes (the price
//!     the warehouse pays instead).
//!
//! ```sh
//! cargo run -q -p genalg-bench --bin fig13
//! ```

use genalg::prelude::*;
use genalg_bench::{
    build_mediator, build_warehouse, probe_patterns, shared_accession, ArchWorkload,
};
use std::time::{Duration, Instant};

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

fn micros(d: Duration) -> String {
    format!("{:>10.1}", d.as_secs_f64() * 1e6)
}

fn main() {
    println!("Figure 1 (query-driven mediator) vs Figure 3 (unifying warehouse)");
    println!("workload: 2 sources x 200 records, 50% overlap, 30% conflicts\n");
    println!(
        "{:<28} {:>11} {:>11} {:>9} {:>15}",
        "query (source latency)", "mediator us", "warehouse us", "speedup", "mediator req/q"
    );

    for latency_ms in [0u64, 1, 5] {
        let w = ArchWorkload { latency: Duration::from_millis(latency_ms), ..Default::default() };
        let mediator = build_mediator(&w);
        let warehouse = build_warehouse(&w);
        // The deployed warehouse carries its genomic index (§6.5).
        warehouse
            .adapter()
            .attach_kmer_index(warehouse.db(), "public.sequences", "seq", 8)
            .expect("index attaches");
        let (present, _) = probe_patterns(&w);
        let accession = shared_accession(&w);
        let pattern = DnaSeq::from_text(&present).expect("valid");

        // Warm both paths once.
        let _ = mediator.lookup(&accession).unwrap();
        let _ = warehouse
            .db()
            .execute(&format!(
                "SELECT accession FROM public.sequences WHERE accession = '{accession}'"
            ))
            .unwrap();

        let db = warehouse.db();
        type Query<'a> = Box<dyn Fn() -> usize + 'a>;
        let rows: Vec<(&str, Query, Query)> = vec![
            (
                "point lookup",
                Box::new(|| mediator.lookup(&accession).unwrap().len()),
                Box::new(|| {
                    db.execute(&format!(
                        "SELECT accession, confidence FROM public.sequences \
                         WHERE accession = '{accession}'"
                    ))
                    .unwrap()
                    .len()
                }),
            ),
            (
                "containment search",
                Box::new(|| mediator.find_containing(&pattern).unwrap().len()),
                Box::new(|| {
                    db.execute(&format!(
                        "SELECT accession FROM public.sequences WHERE contains(seq, '{present}')"
                    ))
                    .unwrap()
                    .len()
                }),
            ),
            (
                "organism census",
                Box::new(|| mediator.count_by_organism().expect("sources reachable").len()),
                Box::new(|| {
                    db.execute("SELECT organism, count(*) FROM public.sequences GROUP BY organism")
                        .unwrap()
                        .len()
                }),
            ),
        ];

        for (name, med_q, wh_q) in &rows {
            let requests_before = mediator.total_requests();
            let (mt, _) = time(med_q);
            let requests = mediator.total_requests() - requests_before;
            let (wt, _) = time(wh_q);
            let speedup = mt.as_secs_f64() / wt.as_secs_f64().max(1e-9);
            println!(
                "{:<28} {} {} {:>8.1}x {:>15}",
                format!("{name} ({latency_ms}ms)"),
                micros(mt),
                micros(wt),
                speedup,
                requests
            );
        }
    }

    // --- The warehouse's side of the bargain: refresh cost ---------------------
    println!("\nwarehouse refresh cost (the price paid instead, off the query path):");
    println!("{:<34} {:>14} {:>14}", "changes at sources", "incremental us", "full reload us");
    for changes in [5usize, 25, 100] {
        let w = ArchWorkload::default();
        let mut warehouse = build_warehouse(&w);
        {
            let repo = warehouse.source_mut("genbank-sim").expect("registered");
            let mut generator =
                RepoGenerator::new(GeneratorConfig { seed: 77, ..Default::default() });
            generator.mutation_round(repo, changes);
        }
        let (inc, report) = time(|| warehouse.refresh().unwrap());

        let mut warehouse2 = build_warehouse(&w);
        {
            let repo = warehouse2.source_mut("genbank-sim").expect("registered");
            let mut g2 = RepoGenerator::new(GeneratorConfig { seed: 77, ..Default::default() });
            g2.mutation_round(repo, changes);
        }
        let (full, _) = time(|| warehouse2.full_reload().unwrap());
        println!(
            "{:<34} {} {}   ({} deltas applied)",
            format!("{changes} source changes"),
            micros(inc),
            micros(full),
            report.deltas
        );
    }

    println!(
        "\nshape check (the paper's claim): mediator latency grows with source latency and\n\
         ships data per query; warehouse queries are source-independent, and incremental\n\
         refresh undercuts full reloads as the change batch shrinks."
    );
}
