//! Regenerates **Table 1** of the paper: data-management capabilities of
//! the six surveyed integration systems versus requirements C1–C15 — with
//! a seventh column for this implementation whose every cell is backed by
//! a live probe (the probe actually exercises the feature before the cell
//! prints ✓).
//!
//! ```sh
//! cargo run -p genalg-bench --bin table1
//! ```

use genalg::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// The paper's published cells for the six systems (condensed wording).
const LITERATURE: &[(&str, [&str; 6])] = &[
    ("C1 shield from sources", ["yes", "yes", "yes", "yes", "yes", "yes"]),
    (
        "C2 common representation",
        ["HTML", "HTML", "OO schema", "rel. schema", "descr. logic", "rel. schema"],
    ),
    ("C3 single access point", ["yes", "yes", "yes", "yes", "yes", "yes"]),
    ("C4 user-level interface", ["visual", "visual", "no", "needs SQL", "visual", "needs SQL"]),
    ("C5 query capability", ["limited", "none", "full", "full", "full", "full"]),
    ("C6 new operations", ["no", "no", "on views", "on views", "on views", "on warehouse"]),
    (
        "C7 re-usable results",
        ["no", "no", "re-organize", "re-organize", "re-organize", "re-organize"],
    ),
    ("C8 reconciliation", ["no", "no", "no", "no", "partial", "cleansed"]),
    ("C9 uncertainty", ["no", "no", "no", "no", "no", "no"]),
    (
        "C10 combine sources",
        ["web only", "web only", "wrappers", "wrappers", "wrappers", "integrated"],
    ),
    ("C11 new knowledge", ["no", "no", "no", "no", "no", "annotations"]),
    ("C12 high-level GDTs", ["no", "no", "no", "no", "no", "no"]),
    ("C13 own data", ["no", "no", "no", "no", "no", "yes"]),
    ("C14 own functions", ["no", "no", "no", "no", "no", "no"]),
    ("C15 archival", ["no", "no", "no", "no", "no", "yes"]),
];

const SYSTEMS: [&str; 6] = ["SRS", "BioNav.", "K2/Kleisli", "Disc.Link", "TAMBIS", "GUS"];

struct Probed {
    warehouse: Warehouse,
}

impl Probed {
    fn build() -> Self {
        let mut w = Warehouse::new().expect("warehouse boots");
        w.add_source(SimulatedRepository::new(
            "genbank-sim",
            Representation::FlatFile,
            Capability::NonQueryable,
        ))
        .expect("register");
        w.add_source(SimulatedRepository::new(
            "embl-sim",
            Representation::Relational,
            Capability::Queryable,
        ))
        .expect("register");
        let mut generator = RepoGenerator::new(GeneratorConfig { seed: 33, ..Default::default() });
        let (a, b) = generator.overlapping_pair(30, 0.5, 0.4);
        for rec in a {
            w.source_mut("genbank-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
        }
        for rec in b {
            w.source_mut("embl-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
        }
        w.refresh().expect("refresh");
        Probed { warehouse: w }
    }

    fn count(&self, sql: &str) -> i64 {
        self.warehouse
            .db()
            .execute(sql)
            .unwrap_or_else(|e| panic!("probe query failed: {e}\n  {sql}"))
            .rows[0][0]
            .as_int()
            .unwrap_or(0)
    }

    /// Run the probe for one requirement; returns the cell text. Panics if
    /// a capability is not actually demonstrated — the column cannot lie.
    fn probe(&self, requirement: &str) -> String {
        let db = self.warehouse.db();
        match &requirement[..3] {
            "C1 " | "C3 " => {
                assert!(self.count("SELECT count(*) FROM public.sequences") > 0);
                "one SQL/BQL endpoint".into()
            }
            "C2 " => {
                let rs = db.execute("SELECT seq FROM public.sequences LIMIT 1").unwrap();
                let v = self.warehouse.adapter().to_value(&rs.rows[0][0]).unwrap();
                let xml = genalg::xml::to_xml(std::slice::from_ref(&v));
                assert_eq!(genalg::xml::from_xml(&xml).unwrap(), vec![v]);
                "GDTs + GenAlgXML".into()
            }
            "C4 " => {
                let q = QueryBuilder::find_sequences().longer_than(100).top(3).to_bql();
                assert!(genalg::bql::run(db, &q).is_ok());
                "BQL + visual builder".into()
            }
            "C5 " => {
                assert!(!genalg::bql::run(db, "COUNT SEQUENCES BY organism").unwrap().is_empty());
                "full (SQL + BQL)".into()
            }
            "C6 " => {
                assert!(
                    self.count("SELECT count(*) FROM public.sequences WHERE gc_content(seq) > 0.5")
                        >= 0
                );
                "genomic ops in queries".into()
            }
            "C7 " => {
                let rs = db.execute("SELECT seq FROM public.sequences LIMIT 1").unwrap();
                let v = self.warehouse.adapter().to_value(&rs.rows[0][0]).unwrap();
                assert!(!v.render().is_empty());
                "results are GDT values".into()
            }
            "C8 " => {
                assert!(
                    self.count("SELECT count(*) FROM public.sequences WHERE n_sources = 2") > 0
                );
                "merged + corroborated".into()
            }
            "C9 " => {
                assert!(
                    self.count("SELECT count(*) FROM public.sequences WHERE disputed = true") > 0
                );
                "alternatives kept".into()
            }
            "C10" => {
                assert!(
                    self.count(
                        "SELECT count(*) FROM public.sequences s \
                         JOIN public.sequence_alternatives a ON s.accession = a.accession"
                    ) > 0
                );
                "one integrated schema".into()
            }
            "C11" => {
                let alice = Role::User("alice".into());
                db.execute_as("CREATE TABLE t1notes (acc TEXT, note TEXT)", &alice).unwrap();
                db.execute_as("INSERT INTO t1notes VALUES ('SYN000001', 'hm')", &alice).unwrap();
                let rs = db
                    .execute_as(
                        "SELECT count(*) FROM public.sequences s \
                         JOIN alice.t1notes n ON s.accession = n.acc",
                        &alice,
                    )
                    .unwrap();
                assert_eq!(rs.rows[0][0].as_int(), Some(1));
                "user annotations".into()
            }
            "C12" => {
                assert!(
                    self.count(
                        "SELECT count(*) FROM public.sequences \
                         WHERE contains(seq, 'ATG') AND seq_length(seq) > 50"
                    ) > 0
                );
                "gene/protein/dna GDTs".into()
            }
            "C13" => {
                let alice = Role::User("alice".into());
                db.execute_as("CREATE TABLE t1own (s dna)", &alice).unwrap();
                db.execute_as("INSERT INTO t1own VALUES (dna('ATGGCCTTTAAG'))", &alice).unwrap();
                let rs = db.execute_as("SELECT gc_content(s) FROM alice.t1own", &alice).unwrap();
                assert!(rs.rows[0][0].as_float().is_some());
                "user spaces, same ops".into()
            }
            "C14" => {
                db.register_scalar(
                    "t1_is_palindrome",
                    Arc::new(|args: &[genalg::unidb::Datum]| {
                        let Some((_, bytes)) = args[0].as_opaque() else {
                            return Ok(genalg::unidb::Datum::Null);
                        };
                        let v = genalg::core::compact::value_from_bytes(bytes)
                            .map_err(|e| genalg::unidb::DbError::External(e.to_string()))?;
                        let genalg::core::algebra::Value::Dna(s) = v else {
                            return Ok(genalg::unidb::Datum::Null);
                        };
                        Ok(genalg::unidb::Datum::Bool(s == s.reverse_complement()))
                    }),
                )
                .unwrap();
                assert!(
                    self.count(
                        "SELECT count(*) FROM public.sequences WHERE t1_is_palindrome(seq) = false"
                    ) > 0
                );
                "UDFs + UDAs + UDIs".into()
            }
            "C15" => {
                // Warehouse retains loaded data regardless of source fate,
                // and the engine checkpoints/recovers (verified in the
                // integration suite); here: data present with no further
                // source contact.
                assert!(self.count("SELECT count(*) FROM public.sequences") > 0);
                "snapshot + WAL".into()
            }
            other => panic!("unknown requirement {other}"),
        }
    }
}

fn main() {
    println!("Table 1 — data-management capabilities of integration systems");
    println!("(six literature columns as published; the GenAlg+UniDB column is probed live)\n");

    let probed = Probed::build();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header: Vec<String> = vec!["requirement".into()];
    header.extend(SYSTEMS.iter().map(|s| s.to_string()));
    header.push("GenAlg+UniDB (probed)".into());
    rows.push(header);

    let mut aliases_seen: HashMap<&str, ()> = HashMap::new();
    for (req, cells) in LITERATURE {
        aliases_seen.insert(req, ());
        let mut row: Vec<String> = vec![req.to_string()];
        row.extend(cells.iter().map(|c| c.to_string()));
        row.push(format!("✓ {}", probed.probe(req)));
        rows.push(row);
    }

    // Column widths.
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    for (ri, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        println!("{}", line.join(" | "));
        if ri == 0 {
            println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * (cols - 1)));
        }
    }
    println!(
        "\nall {} GenAlg+UniDB cells were demonstrated by live probes in this process.",
        LITERATURE.len()
    );
}
