//! Regenerates **Figure 2** with measurements: for every (source
//! capability × data representation) cell, run the prescribed
//! change-detection technique over the same mutation workload and report
//! its cost and yield.
//!
//! ```sh
//! cargo run -q -p genalg-bench --bin fig2
//! ```

use genalg::etl::monitor::log::LogMonitor;
use genalg::etl::monitor::poll::{DumpMonitor, PollMonitor};
use genalg::etl::monitor::trigger::TriggerMonitor;
use genalg::etl::monitor::{effective_strategy, pick_strategy, Strategy};
use genalg::prelude::*;
use std::time::Instant;

const RECORDS: usize = 300;
const CHANGES: usize = 30;

fn main() {
    println!("Figure 2 — change detection per (capability x representation)");
    println!("workload: {RECORDS} records per source, {CHANGES} mutations per round, 3 rounds\n");
    println!(
        "{:<13} {:<13} {:<22} {:>8} {:>12} {:>12}",
        "capability", "representation", "technique", "deltas", "detect us", "src requests"
    );

    for capability in
        [Capability::Active, Capability::Logged, Capability::Queryable, Capability::NonQueryable]
    {
        for representation in
            [Representation::Relational, Representation::FlatFile, Representation::Hierarchical]
        {
            let strategy = effective_strategy(capability, representation);
            let figure_says = pick_strategy(capability, representation);
            let cell_label = match figure_says {
                Some(s) => format!("{s:?}"),
                None => format!("(N/A) {strategy:?}"),
            };

            // Build and seed the source.
            let mut repo = SimulatedRepository::new("cell", representation, capability);
            let mut generator = RepoGenerator::new(GeneratorConfig {
                seed: 11,
                error_rate: 0.0,
                ..Default::default()
            });
            generator.populate(&mut repo, RECORDS);

            // Attach the monitor and take the baseline observation.
            enum M {
                Trigger(TriggerMonitor),
                Log(LogMonitor),
                Poll(PollMonitor),
                Dump(DumpMonitor),
            }
            let mut monitor = match strategy {
                Strategy::DatabaseTrigger | Strategy::ProgramTrigger => {
                    M::Trigger(TriggerMonitor::attach(&mut repo).expect("active"))
                }
                Strategy::InspectLog => {
                    let mut m = LogMonitor::new();
                    let _ = m.poll(&repo).expect("logged");
                    M::Log(m)
                }
                Strategy::SnapshotDifferential => {
                    let mut m = PollMonitor::new();
                    let _ = m.poll(&repo);
                    M::Poll(m)
                }
                Strategy::EditSequence | Strategy::LcsDiff => {
                    let mut m = DumpMonitor::new();
                    let _ = m.poll(&repo).expect("dump parses");
                    M::Dump(m)
                }
            };

            // Mutation rounds with observation after each.
            let requests_before = repo.requests_served();
            let mut total_deltas = 0usize;
            let mut detect_time = std::time::Duration::ZERO;
            for round in 0..3u64 {
                let mut g = RepoGenerator::new(GeneratorConfig {
                    seed: 100 + round,
                    error_rate: 0.0,
                    ..Default::default()
                });
                g.mutation_round(&mut repo, CHANGES);
                let start = Instant::now();
                let n = match &mut monitor {
                    M::Trigger(m) => m.drain().len(),
                    M::Log(m) => m.poll(&repo).expect("logged").len(),
                    M::Poll(m) => m.poll(&repo).expect("snapshot").len(),
                    M::Dump(m) => m.poll(&repo).expect("dump parses").0.len(),
                };
                detect_time += start.elapsed();
                total_deltas += n;
            }
            // mutation_round itself snapshots once per operation; subtract
            // that bookkeeping so the column shows pure monitoring cost.
            let requests = repo.requests_served() - requests_before - (3 * CHANGES) as u64;
            println!(
                "{:<13} {:<13} {:<22} {:>8} {:>12.1} {:>12}",
                format!("{capability:?}"),
                format!("{representation:?}"),
                cell_label,
                total_deltas,
                detect_time.as_secs_f64() * 1e6,
                requests
            );
        }
    }

    println!(
        "\nreading the shape: triggers and logs recover every change at near-zero\n\
         detection cost; snapshot differentials and dump diffs (LCS / tree edit\n\
         sequences) pay re-shipping plus diff time and collapse rapid updates —\n\
         exactly why the paper shades those cells as the interesting ones."
    );

    // Mutation-round bookkeeping: snapshot() calls inside mutation_round
    // also hit the request counter, so report the honest per-technique diff
    // cost separately for the two dump techniques at growing sizes.
    println!("\nedit-script cost scaling (non-queryable sources, one update in N records):");
    println!("{:<10} {:>16} {:>16}", "records", "LCS diff us", "tree diff us");
    for n in [100usize, 400, 1600] {
        let mut flat =
            SimulatedRepository::new("flat", Representation::FlatFile, Capability::NonQueryable);
        let mut hier = SimulatedRepository::new(
            "hier",
            Representation::Hierarchical,
            Capability::NonQueryable,
        );
        let mut g =
            RepoGenerator::new(GeneratorConfig { seed: 5, error_rate: 0.0, ..Default::default() });
        let records = g.records(n);
        for rec in &records {
            flat.apply(ChangeKind::Insert, rec.clone()).unwrap();
            hier.apply(ChangeKind::Insert, rec.clone()).unwrap();
        }
        let mut flat_monitor = DumpMonitor::new();
        let mut hier_monitor = DumpMonitor::new();
        let _ = flat_monitor.poll(&flat).unwrap();
        let _ = hier_monitor.poll(&hier).unwrap();

        let target = g.mutate_record(&records[n / 2]);
        flat.apply(ChangeKind::Update, target.clone()).unwrap();
        hier.apply(ChangeKind::Update, target).unwrap();

        let start = Instant::now();
        let (d1, _) = flat_monitor.poll(&flat).unwrap();
        let lcs_time = start.elapsed();
        let start = Instant::now();
        let (d2, _) = hier_monitor.poll(&hier).unwrap();
        let tree_time = start.elapsed();
        assert_eq!(d1.len(), 1);
        assert_eq!(d2.len(), 1);
        println!(
            "{:<10} {:>16.1} {:>16.1}",
            n,
            lcs_time.as_secs_f64() * 1e6,
            tree_time.as_secs_f64() * 1e6
        );
    }
}
