//! Transaction engine throughput: committed transactions/sec for N
//! concurrent writers in three contention regimes — disjoint key ranges
//! (no conflicts possible, measures commit-path serialization), a hot
//! 8-key set (first-committer-wins aborts, measures retry cost), and
//! snapshot readers scanning while writers churn (measures reader
//! isolation from the write path).
//!
//! Emits one JSON document on stdout:
//!
//! ```json
//! {"bench":"txn","results":[
//!   {"mode":"disjoint","writers":4,"committed":8000,"conflict_retries":0,
//!    "elapsed_ms":420.0,"commits_per_sec":19047.6}]}
//! ```
//!
//! Environment:
//!
//! * `BENCH_TXN_WRITERS` — comma-separated writer-thread counts
//!   (default `1,2,4`); CI smoke uses `1,2`.
//! * `BENCH_TXN_OPS` — committed transactions per writer (default `2000`).
//!
//! Run with `cargo bench -p genalg-bench --bench txn`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use unidb::{Database, DbError};

/// Seeded rows: enough that snapshot scans do real work, small enough
/// that setup stays out of the measured window.
const SEED_ROWS: i64 = 1024;
/// Contended mode hammers this many keys from every writer.
const HOT_KEYS: i64 = 8;

fn env_list(name: &str, default: &str) -> Vec<u64> {
    let raw = std::env::var(name).unwrap_or_else(|_| default.to_string());
    raw.split(',').filter_map(|s| s.trim().parse().ok()).collect()
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.trim().parse().ok()).unwrap_or(default)
}

fn build_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("CREATE UNIQUE INDEX ON t (k)").unwrap();
    let mut batch = String::new();
    for k in 0..SEED_ROWS {
        if batch.is_empty() {
            batch.push_str("INSERT INTO t VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({k}, 0)"));
        if (k + 1) % 256 == 0 || k + 1 == SEED_ROWS {
            db.execute(&batch).unwrap();
            batch.clear();
        }
    }
    Arc::new(db)
}

/// Run one committed single-UPDATE transaction against `key`, retrying on
/// serialization conflicts. Returns the number of retries it took.
fn commit_update(db: &Database, key: i64, val: i64) -> u64 {
    let mut retries = 0;
    loop {
        let id = db.txn_begin();
        let staged = db.txn_execute(id, &format!("UPDATE t SET v = {val} WHERE k = {key}"));
        let outcome = match staged {
            Ok(_) => db.txn_commit(id),
            Err(e) => {
                let _ = db.txn_rollback(id);
                Err(e)
            }
        };
        match outcome {
            Ok(()) => return retries,
            Err(DbError::Conflict(_)) => retries += 1,
            Err(e) => panic!("unexpected transaction failure: {e}"),
        }
    }
}

/// `writers` threads each committing `ops` transactions; `key_of` maps
/// (writer, op) to the key that transaction updates. Returns
/// (elapsed_ms, total conflict retries).
fn run_writers(
    db: &Arc<Database>,
    writers: u64,
    ops: u64,
    key_of: impl Fn(u64, u64) -> i64 + Copy + Send,
) -> (f64, u64) {
    let retries = AtomicU64::new(0);
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let db = Arc::clone(db);
            let retries = &retries;
            s.spawn(move || {
                for i in 0..ops {
                    let r = commit_update(&db, key_of(w, i), (w * ops + i) as i64);
                    if r > 0 {
                        retries.fetch_add(r, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    (t.elapsed().as_secs_f64() * 1e3, retries.load(Ordering::Relaxed))
}

/// Disjoint writers racing `writers` snapshot readers; each reader runs
/// full-table aggregate scans inside read-only transactions until the
/// writers finish. Returns (elapsed_ms, conflict retries, reader scans).
fn run_read_while_write(db: &Arc<Database>, writers: u64, ops: u64) -> (f64, u64, u64) {
    let retries = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let db = Arc::clone(db);
            let retries = &retries;
            let done = &done;
            s.spawn(move || {
                for i in 0..ops {
                    let key = (w as i64) * (SEED_ROWS / writers.max(1) as i64) + (i as i64 % 4);
                    let r = commit_update(&db, key, i as i64);
                    if r > 0 {
                        retries.fetch_add(r, Ordering::Relaxed);
                    }
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..writers {
            let db = Arc::clone(db);
            let scans = &scans;
            let done = &done;
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let id = db.txn_begin();
                    let rs = db.txn_execute(id, "SELECT count(*), sum(v) FROM t").unwrap();
                    std::hint::black_box(rs);
                    db.txn_commit(id).unwrap();
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    (
        t.elapsed().as_secs_f64() * 1e3,
        retries.load(Ordering::Relaxed),
        scans.load(Ordering::Relaxed),
    )
}

fn main() {
    let writer_counts = env_list("BENCH_TXN_WRITERS", "1,2,4");
    let ops = env_u64("BENCH_TXN_OPS", 2000);
    let mut results = Vec::new();
    for &writers in &writer_counts {
        let shard = SEED_ROWS / writers.max(1) as i64;
        // Disjoint: writer w owns keys [w*shard, (w+1)*shard) — conflicts
        // are impossible, so retries > 0 here would be an engine bug.
        let db = build_db();
        let (ms, retries) =
            run_writers(&db, writers, ops, |w, i| (w as i64) * shard + (i as i64 % shard));
        assert_eq!(retries, 0, "disjoint writers must never conflict");
        let committed = writers * ops;
        results.push(format!(
            concat!(
                "{{\"mode\":\"disjoint\",\"writers\":{},\"committed\":{},",
                "\"conflict_retries\":{},\"elapsed_ms\":{:.1},\"commits_per_sec\":{:.0}}}"
            ),
            writers,
            committed,
            retries,
            ms,
            committed as f64 / (ms / 1e3),
        ));

        // Contended: every writer updates the same HOT_KEYS keys;
        // first-committer-wins aborts the losers, who retry to completion.
        let db = build_db();
        let (ms, retries) = run_writers(&db, writers, ops, |w, i| (w + i) as i64 % HOT_KEYS);
        results.push(format!(
            concat!(
                "{{\"mode\":\"contended\",\"writers\":{},\"committed\":{},",
                "\"conflict_retries\":{},\"elapsed_ms\":{:.1},\"commits_per_sec\":{:.0}}}"
            ),
            writers,
            committed,
            retries,
            ms,
            committed as f64 / (ms / 1e3),
        ));

        // Snapshot readers racing disjoint writers: scans/sec is the
        // headline — readers must not serialize behind the commit path.
        let db = build_db();
        let (ms, retries, scans) = run_read_while_write(&db, writers, ops);
        results.push(format!(
            concat!(
                "{{\"mode\":\"read_while_write\",\"writers\":{},\"committed\":{},",
                "\"conflict_retries\":{},\"reader_scans\":{},\"elapsed_ms\":{:.1},",
                "\"commits_per_sec\":{:.0},\"scans_per_sec\":{:.0}}}"
            ),
            writers,
            committed,
            retries,
            scans,
            ms,
            committed as f64 / (ms / 1e3),
            scans as f64 / (ms / 1e3),
        ));
    }
    println!("{{\"bench\":\"txn\",\"results\":[{}]}}", results.join(","));
}
