//! Criterion bench for the Figure 2 change-detection techniques: cost of
//! one observation round per grid cell, same mutation workload everywhere.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use genalg::etl::monitor::log::LogMonitor;
use genalg::etl::monitor::poll::{DumpMonitor, PollMonitor};
use genalg::etl::monitor::trigger::TriggerMonitor;
use genalg::prelude::*;

const RECORDS: usize = 100;
const CHANGES: usize = 10;

fn seeded_repo(representation: Representation, capability: Capability) -> SimulatedRepository {
    let mut repo = SimulatedRepository::new("bench", representation, capability);
    let mut generator =
        RepoGenerator::new(GeneratorConfig { seed: 11, error_rate: 0.0, ..Default::default() });
    generator.populate(&mut repo, RECORDS);
    repo
}

fn mutate(repo: &mut SimulatedRepository) {
    let mut g =
        RepoGenerator::new(GeneratorConfig { seed: 99, error_rate: 0.0, ..Default::default() });
    g.mutation_round(repo, CHANGES);
}

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/detect_round");
    group.sample_size(10);

    // Active × relational: database trigger.
    group.bench_function("trigger_active_relational", |b| {
        b.iter_batched(
            || {
                let mut repo = seeded_repo(Representation::Relational, Capability::Active);
                let monitor = TriggerMonitor::attach(&mut repo).expect("active");
                mutate(&mut repo);
                (repo, monitor)
            },
            |(_repo, mut monitor)| monitor.drain().len(),
            BatchSize::PerIteration,
        )
    });

    // Logged × flat file: inspect log.
    group.bench_function("inspect_log_flatfile", |b| {
        b.iter_batched(
            || {
                let mut repo = seeded_repo(Representation::FlatFile, Capability::Logged);
                let mut monitor = LogMonitor::new();
                let _ = monitor.poll(&repo).expect("baseline");
                mutate(&mut repo);
                (repo, monitor)
            },
            |(repo, mut monitor)| monitor.poll(&repo).expect("logged").len(),
            BatchSize::PerIteration,
        )
    });

    // Queryable × relational: snapshot differential.
    group.bench_function("snapshot_differential_relational", |b| {
        b.iter_batched(
            || {
                let mut repo = seeded_repo(Representation::Relational, Capability::Queryable);
                let mut monitor = PollMonitor::new();
                let _ = monitor.poll(&repo);
                mutate(&mut repo);
                (repo, monitor)
            },
            |(repo, mut monitor)| monitor.poll(&repo).expect("snapshot").len(),
            BatchSize::PerIteration,
        )
    });

    // Non-queryable × flat file: LCS diff of dumps.
    group.bench_function("lcs_diff_flatfile", |b| {
        b.iter_batched(
            || {
                let mut repo = seeded_repo(Representation::FlatFile, Capability::NonQueryable);
                let mut monitor = DumpMonitor::new();
                let _ = monitor.poll(&repo).expect("baseline");
                mutate(&mut repo);
                (repo, monitor)
            },
            |(repo, mut monitor)| monitor.poll(&repo).expect("dump parses").0.len(),
            BatchSize::PerIteration,
        )
    });

    // Non-queryable × hierarchical: tree edit sequence.
    group.bench_function("tree_diff_hierarchical", |b| {
        b.iter_batched(
            || {
                let mut repo = seeded_repo(Representation::Hierarchical, Capability::NonQueryable);
                let mut monitor = DumpMonitor::new();
                let _ = monitor.poll(&repo).expect("baseline");
                mutate(&mut repo);
                (repo, monitor)
            },
            |(repo, mut monitor)| monitor.poll(&repo).expect("dump parses").0.len(),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    use genalg::etl::formats::{genbank, hier};
    use genalg::etl::monitor::{lcs, treediff};

    let mut generator =
        RepoGenerator::new(GeneratorConfig { seed: 3, error_rate: 0.0, ..Default::default() });
    let records = generator.records(100);
    let mut changed = records.clone();
    changed[50] = generator.mutate_record(&changed[50]);

    let old_flat = genbank::write(&records);
    let new_flat = genbank::write(&changed);
    let old_tree = hier::from_records(&records);
    let new_tree = hier::from_records(&changed);

    let mut group = c.benchmark_group("fig2/diff_primitive");
    group.sample_size(10);
    group.bench_function("lcs_line_diff_100_records", |b| {
        b.iter(|| lcs::diff_lines(&old_flat, &new_flat).len())
    });
    group.bench_function("tree_edit_script_100_records", |b| {
        b.iter(|| treediff::diff_forest(&old_tree, &new_tree).len())
    });
    group.finish();
}

criterion_group!(benches, bench_cells, bench_primitives);
criterion_main!(benches);
