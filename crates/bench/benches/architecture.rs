//! Criterion bench for the Figure 1 vs Figure 3 comparison (compute costs;
//! the `fig13` binary adds simulated source latency on top).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use genalg::prelude::*;
use genalg_bench::{
    build_mediator, build_warehouse, probe_patterns, shared_accession, ArchWorkload,
};

fn workload() -> ArchWorkload {
    ArchWorkload { records_per_source: 100, ..Default::default() }
}

fn bench_queries(c: &mut Criterion) {
    let w = workload();
    let mediator = build_mediator(&w);
    let warehouse = build_warehouse(&w);
    warehouse
        .adapter()
        .attach_kmer_index(warehouse.db(), "public.sequences", "seq", 8)
        .expect("index attaches");
    let (present, _) = probe_patterns(&w);
    let accession = shared_accession(&w);
    let pattern = DnaSeq::from_text(&present).expect("valid");

    let mut group = c.benchmark_group("fig1_vs_fig3/query");
    group.sample_size(20);
    group.bench_function("mediator_point_lookup", |b| {
        b.iter(|| mediator.lookup(&accession).unwrap().len())
    });
    group.bench_function("warehouse_point_lookup", |b| {
        let sql = format!(
            "SELECT accession, confidence FROM public.sequences WHERE accession = '{accession}'"
        );
        b.iter(|| warehouse.db().execute(&sql).unwrap().len())
    });
    group.bench_function("mediator_containment", |b| {
        b.iter(|| mediator.find_containing(&pattern).unwrap().len())
    });
    group.bench_function("warehouse_containment_indexed", |b| {
        let sql =
            format!("SELECT accession FROM public.sequences WHERE contains(seq, '{present}')");
        b.iter(|| warehouse.db().execute(&sql).unwrap().len())
    });
    group.bench_function("mediator_census", |b| {
        b.iter(|| mediator.count_by_organism().expect("sources reachable").len())
    });
    group.bench_function("warehouse_census", |b| {
        b.iter(|| {
            warehouse
                .db()
                .execute("SELECT organism, count(*) FROM public.sequences GROUP BY organism")
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_vs_fig3/maintenance");
    group.sample_size(10);
    let w = ArchWorkload { records_per_source: 50, ..Default::default() };

    let mutated_warehouse = |seed: u64| {
        let mut warehouse = build_warehouse(&w);
        let mut generator = RepoGenerator::new(GeneratorConfig { seed, ..Default::default() });
        {
            let repo = warehouse.source_mut("genbank-sim").expect("registered");
            generator.mutation_round(repo, 10);
        }
        warehouse
    };

    group.bench_function("incremental_refresh_10_changes", |b| {
        b.iter_batched(
            || mutated_warehouse(77),
            |mut warehouse| warehouse.refresh().unwrap(),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("full_reload_10_changes", |b| {
        b.iter_batched(
            || mutated_warehouse(77),
            |mut warehouse| warehouse.full_reload().unwrap(),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_refresh);
criterion_main!(benches);
