//! Criterion bench for §6.5: genomic index structures and the optimizer's
//! use of them — `contains` with and without the k-mer access method, the
//! underlying index primitives, and B-tree versus scan for scalar lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genalg::core::index::{KmerIndex, SuffixArray};
use genalg::prelude::*;

fn seeded_db(rows: usize, with_index: bool) -> (Database, String) {
    let db = Database::in_memory();
    let adapter = Adapter::install(&db).expect("adapter installs");
    db.execute("CREATE TABLE frags (id INT, seq dna)").expect("ddl");
    let mut generator = RepoGenerator::new(GeneratorConfig {
        seed: 21,
        error_rate: 0.0,
        min_len: 200,
        max_len: 300,
        ..Default::default()
    });
    let records = generator.records(rows);
    db.execute("BEGIN").expect("txn");
    for (i, rec) in records.iter().enumerate() {
        db.execute(&format!("INSERT INTO frags VALUES ({i}, dna('{}'))", rec.sequence.to_text()))
            .expect("insert");
    }
    db.execute("COMMIT").expect("txn");
    if with_index {
        adapter.attach_kmer_index(&db, "frags", "seq", 8).expect("index attaches");
    }
    let donor = &records[rows / 2].sequence;
    let pattern = donor.subseq(50, 66).expect("long enough").to_text();
    (db, pattern)
}

fn bench_contains_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("genomic_index/contains");
    group.sample_size(10);
    for rows in [500usize, 2000] {
        let (scan_db, pattern) = seeded_db(rows, false);
        let (indexed_db, _) = seeded_db(rows, true);
        let sql = format!("SELECT id FROM frags WHERE contains(seq, '{pattern}')");
        group.bench_with_input(BenchmarkId::new("seqscan", rows), &rows, |b, _| {
            b.iter(|| scan_db.execute(&sql).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("kmer_udi", rows), &rows, |b, _| {
            b.iter(|| indexed_db.execute(&sql).unwrap().len())
        });
    }
    group.finish();
}

fn bench_btree_vs_scan(c: &mut Criterion) {
    let db = Database::in_memory();
    Adapter::install(&db).unwrap();
    db.execute("CREATE TABLE t (id INT, payload TEXT)").unwrap();
    db.execute("BEGIN").unwrap();
    for i in 0..5000 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 'row {i}')")).unwrap();
    }
    db.execute("COMMIT").unwrap();

    let mut group = c.benchmark_group("genomic_index/scalar_lookup_5k");
    group.sample_size(10);
    group.bench_function("seqscan", |b| {
        b.iter(|| db.execute("SELECT payload FROM t WHERE id = 4321").unwrap().len())
    });
    db.execute("CREATE UNIQUE INDEX ON t (id)").unwrap();
    group.bench_function("btree", |b| {
        b.iter(|| db.execute("SELECT payload FROM t WHERE id = 4321").unwrap().len())
    });
    group.bench_function("btree_range_100", |b| {
        b.iter(|| db.execute("SELECT payload FROM t WHERE id BETWEEN 2000 AND 2099").unwrap().len())
    });
    group.finish();
}

fn bench_index_primitives(c: &mut Criterion) {
    let mut generator = RepoGenerator::new(GeneratorConfig {
        seed: 13,
        error_rate: 0.0,
        min_len: 250,
        max_len: 250,
        ..Default::default()
    });
    let seqs: Vec<DnaSeq> = (0..1000).map(|_| generator.random_dna(250)).collect();
    let pattern = seqs[500].subseq(100, 116).unwrap();

    let mut group = c.benchmark_group("genomic_index/primitives");
    group.sample_size(10);
    group.bench_function("kmer_build_1000x250", |b| {
        b.iter(|| {
            let mut idx = KmerIndex::new(8);
            for (i, s) in seqs.iter().enumerate() {
                idx.add(i as u64, s);
            }
            idx.distinct_kmers()
        })
    });
    let mut idx = KmerIndex::new(8);
    for (i, s) in seqs.iter().enumerate() {
        idx.add(i as u64, s);
    }
    group.bench_function("kmer_candidates", |b| {
        b.iter(|| idx.candidates(&pattern).map_or(0, |c| c.len()))
    });
    group.bench_function("naive_scan_1000", |b| {
        b.iter(|| seqs.iter().filter(|s| s.contains(&pattern)).count())
    });

    let genome = generator.random_dna(50_000);
    group.bench_function("suffix_array_build_50kb", |b| {
        b.iter(|| SuffixArray::build(&genome).len())
    });
    let sa = SuffixArray::build(&genome);
    let probe = genome.subseq(25_000, 25_020).unwrap().to_text();
    group.bench_function("suffix_array_find", |b| b.iter(|| sa.find_all(probe.as_bytes()).len()));
    group.bench_function("naive_find_50kb", |b| {
        let p = DnaSeq::from_text(&probe).unwrap();
        b.iter(|| genome.find_all(&p).len())
    });
    group.finish();
}

criterion_group!(benches, bench_contains_plans, bench_btree_vs_scan, bench_index_primitives);
criterion_main!(benches);
