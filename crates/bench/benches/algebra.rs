//! Criterion bench for §4.2's algebra: the central-dogma pipeline at
//! several gene complexities, term-evaluation overhead, and the similarity
//! machinery behind `resembles`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genalg::core::algebra::{KernelAlgebra, Term, Value};
use genalg::core::align::{global_align, local_align, seed_and_extend, NucleotideScore};
use genalg::core::codon::GeneticCode;
use genalg::core::seq::ops::find_orfs;
use genalg::prelude::*;

fn bench_dogma(c: &mut Criterion) {
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 1, ..Default::default() });
    let mut group = c.benchmark_group("algebra/express");
    for (n_exons, exon_len) in [(1usize, 90usize), (5, 90), (20, 90)] {
        let gene = generator.gene_with_structure(&format!("g{n_exons}"), n_exons, exon_len);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_exons}x{exon_len}nt")),
            &gene,
            |b, gene| b.iter(|| express(gene).unwrap().sequence().len()),
        );
    }
    group.finish();
}

fn bench_term_overhead(c: &mut Criterion) {
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 2, ..Default::default() });
    let gene = generator.gene_with_structure("tg", 5, 90);
    let algebra = KernelAlgebra::standard();
    let term = Term::apply(
        "translate",
        vec![Term::apply(
            "splice",
            vec![Term::apply(
                "transcribe",
                vec![Term::constant(Value::Gene(Box::new(gene.clone())))],
            )],
        )],
    );

    let mut group = c.benchmark_group("algebra/dispatch");
    group.bench_function("direct_rust_calls", |b| {
        b.iter(|| express(&gene).unwrap().sequence().len())
    });
    group.bench_function("term_evaluation", |b| {
        b.iter(|| algebra.eval(&term).unwrap().render().len())
    });
    group.finish();
}

fn bench_alignment(c: &mut Criterion) {
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 3, ..Default::default() });
    let scoring = NucleotideScore::default();
    let mut group = c.benchmark_group("algebra/alignment");
    group.sample_size(20);
    for len in [200usize, 800] {
        let a = generator.random_dna(len);
        let b_seq = {
            let mut rec = SeqRecord::new("x", a.clone());
            rec = SeqRecord::new("x", generator.mutate_record(&rec).sequence);
            rec.sequence
        };
        let at = a.to_text();
        let bt = b_seq.to_text();
        group.bench_with_input(BenchmarkId::new("global", len), &len, |bench, _| {
            bench.iter(|| global_align(at.as_bytes(), bt.as_bytes(), &scoring).score)
        });
        group.bench_with_input(BenchmarkId::new("local", len), &len, |bench, _| {
            bench.iter(|| local_align(at.as_bytes(), bt.as_bytes(), &scoring).score)
        });
        group.bench_with_input(BenchmarkId::new("seed_extend", len), &len, |bench, _| {
            bench.iter(|| seed_and_extend(&a, &b_seq, 11, &scoring, 20).len())
        });
        group.bench_with_input(BenchmarkId::new("resembles", len), &len, |bench, _| {
            bench.iter(|| resembles(&a, &b_seq, 0.9, 0.9))
        });
    }
    group.finish();
}

fn bench_sequence_ops(c: &mut Criterion) {
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 4, ..Default::default() });
    let seq = generator.random_dna(10_000);
    let code = GeneticCode::standard();
    let mut group = c.benchmark_group("algebra/sequence_ops_10kb");
    group.bench_function("reverse_complement", |b| b.iter(|| seq.reverse_complement().len()));
    group.bench_function("gc_content", |b| b.iter(|| seq.gc_content()));
    group.bench_function("find_orfs_min300", |b| b.iter(|| find_orfs(&seq, &code, 300).len()));
    group.bench_function("six_frame_decode", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for frame in 0..3 {
                total += genalg::core::dogma::decode(&seq, frame, &code).unwrap().len();
            }
            total
        })
    });
    let pattern = seq.subseq(6000, 6018).unwrap();
    group.bench_function("contains_18mer", |b| b.iter(|| seq.contains(&pattern)));
    group.finish();
}

criterion_group!(benches, bench_dogma, bench_term_overhead, bench_alignment, bench_sequence_ops);
criterion_main!(benches);
