//! Observability overhead: the same scan-filter-project shape the executor
//! bench measures, with the span tracer disabled (the production default),
//! enabled, under `EXPLAIN ANALYZE` (per-operator counters on), and with
//! the metrics sampler ticking in the background (tracing off, a
//! [`genalg_obs::Sampler`] pushing snapshot deltas into a
//! [`genalg_obs::MetricRing`] at 10 ms — 100× the server's 1 s cadence, so
//! any hot-path interference is amplified, not hidden).
//!
//! The disabled path is the contract: instrumentation is compiled in
//! everywhere, so "tracing off" here *is* the plain execution path of the
//! exec bench — CI runs both at the same row count in one job and fails if
//! the disabled path drifts more than 5% from the exec baseline.
//!
//! Emits one JSON document on stdout:
//!
//! ```json
//! {"bench":"obs","results":[
//!   {"query":"scan_filter_project","rows":100000,"mode":"tracing_off",
//!    "elapsed_ms":20.0,"rows_per_sec":5000000}],
//!  "enabled_overhead_pct":3.1,"sampler_overhead_pct":0.4}
//! ```
//!
//! Environment:
//!
//! * `BENCH_OBS_ROWS` — table size (default `100000`).
//! * `BENCH_OBS_ITERS` — best-of iterations per mode (default `5`).
//!
//! Run with `cargo bench -p genalg-bench --bench obs`.

use genalg_obs::{MetricRing, Sampler, Snapshot, DEFAULT_HISTORY_SLOTS};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unidb::Database;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Deterministic but well-shuffled value in `0..m`.
fn scramble(i: u64, m: u64) -> u64 {
    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)) % m
}

fn build_db(rows: u64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    let mut batch = String::new();
    for i in 0..rows {
        if batch.is_empty() {
            batch.push_str("INSERT INTO t VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({i}, {})", scramble(i, rows.max(1))));
        if (i + 1) % 1000 == 0 || i + 1 == rows {
            db.execute(&batch).unwrap();
            batch.clear();
        }
    }
    db
}

/// Best-of-`iters` wall time for one statement, in milliseconds.
fn time_query(db: &Database, sql: &str, iters: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let rs = db.execute(sql).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(rs);
        best = best.min(ms);
    }
    best
}

/// A sampler mirroring the server's: each tick reads the engine's
/// cumulative counters plus a latency-histogram snapshot and pushes the
/// delta into a bounded ring. Runs at `interval` until dropped.
fn spawn_sampler(db: &Arc<Database>, ring: &Arc<MetricRing>, interval: Duration) -> Sampler {
    let db = Arc::clone(db);
    let ring = Arc::clone(ring);
    let hist = genalg_obs::hist::Histogram::default();
    for i in 0..1024u64 {
        hist.record_us(i * 7 % 50_000); // populated histogram: realistic snapshot cost
    }
    Sampler::spawn(interval, move || {
        let mut s = Snapshot::new();
        s.counter("scan_pages_read", db.scan_pages_read());
        s.counter("scan_pages_skipped", db.scan_pages_skipped());
        s.counter("stats_rebuilt", db.stats_rebuilt());
        s.histogram("query_read_latency", hist.snapshot());
        ring.push(s);
        true
    })
}

fn main() {
    let rows = env_u64("BENCH_OBS_ROWS", 100_000);
    let iters = env_u64("BENCH_OBS_ITERS", 5);
    let db = Arc::new(build_db(rows));
    let sql = format!("SELECT a, a + b FROM t WHERE b < {}", rows / 2);
    let tracer = genalg_obs::tracer();

    // Warm the buffer pool and caches so mode ordering doesn't bias the
    // comparison (the first measured mode would otherwise pay cold pages).
    for _ in 0..2 {
        std::hint::black_box(db.execute(&sql).unwrap());
    }

    // Interleave the modes each round instead of timing them in blocks:
    // on a shared/single-core box, slow phases (scheduler, thermal, page
    // reclaim) then hit both paths equally and best-of picks clean rounds.
    let analyze_sql = format!("EXPLAIN ANALYZE {sql}");
    let (mut off_ms, mut on_ms, mut analyze_ms, mut sampler_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let ring = Arc::new(MetricRing::new(DEFAULT_HISTORY_SLOTS));
    for _ in 0..iters {
        tracer.set_enabled(false);
        off_ms = off_ms.min(time_query(&db, &sql, 1));
        tracer.set_enabled(true);
        on_ms = on_ms.min(time_query(&db, &sql, 1));
        tracer.set_enabled(false);
        analyze_ms = analyze_ms.min(time_query(&db, &analyze_sql, 1));
        {
            // Sampler mode: tracing stays off, the tick thread runs at
            // 100× the production cadence while the query executes.
            let sampler = spawn_sampler(&db, &ring, Duration::from_millis(10));
            sampler_ms = sampler_ms.min(time_query(&db, &sql, 1));
            drop(sampler);
        }
    }

    let entry = |mode: &str, ms: f64| {
        format!(
            concat!(
                "{{\"query\":\"scan_filter_project\",\"rows\":{},\"mode\":\"{}\",",
                "\"elapsed_ms\":{:.1},\"rows_per_sec\":{:.0}}}"
            ),
            rows,
            mode,
            ms,
            rows as f64 / (ms / 1e3),
        )
    };
    let results = [
        entry("tracing_off", off_ms),
        entry("tracing_on", on_ms),
        entry("explain_analyze", analyze_ms),
        entry("sampler_on", sampler_ms),
    ];
    let overhead = (on_ms / off_ms - 1.0) * 100.0;
    let sampler_overhead = (sampler_ms / off_ms - 1.0) * 100.0;
    println!(
        concat!(
            "{{\"bench\":\"obs\",\"results\":[{}],\"enabled_overhead_pct\":{:.1},",
            "\"sampler_overhead_pct\":{:.1},\"sampler_ticks\":{}}}"
        ),
        results.join(","),
        overhead,
        sampler_overhead,
        ring.pushed(),
    );
}
