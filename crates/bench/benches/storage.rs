//! Criterion bench for the §4.4 storage-design decisions:
//! * compact pointer-free encodings versus a naive text codec (the
//!   "enormous conversion costs" the paper warns about);
//! * packed 4-bit sequences versus plain ASCII for in-memory operations;
//! * heap-file behaviour, including overflow chains for page-sized
//!   genomic payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genalg::core::compact::Compact;
use genalg::prelude::*;
use genalg::unidb::index::btree::BTreeIndex;
use genalg::unidb::storage::buffer::BufferPool;
use genalg::unidb::storage::heap::HeapFile;
use genalg::unidb::storage::store::MemStore;
use genalg::unidb::{Database, Datum, FaultVfs};
use std::path::Path;
use std::sync::Arc;

fn bench_encodings(c: &mut Criterion) {
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 1, ..Default::default() });
    let mut group = c.benchmark_group("storage/dna_codec");
    for len in [1_000usize, 100_000] {
        let seq = generator.random_dna(len);
        // Compact §4.4 encoding: packed payload, varint framing.
        group.bench_with_input(BenchmarkId::new("compact_roundtrip", len), &seq, |b, seq| {
            b.iter(|| {
                let bytes = seq.to_bytes();
                DnaSeq::from_bytes(&bytes).unwrap().len()
            })
        });
        // Naive alternative: ASCII text out, full re-parse in.
        group.bench_with_input(BenchmarkId::new("text_roundtrip", len), &seq, |b, seq| {
            b.iter(|| {
                let text = seq.to_text();
                DnaSeq::from_text(&text).unwrap().len()
            })
        });
    }
    group.finish();

    // Size comparison is part of the claim; print it once.
    let seq = generator.random_dna(100_000);
    println!(
        "payload sizes for 100 kb DNA: compact = {} bytes, text = {} bytes",
        seq.to_bytes().len(),
        seq.to_text().len()
    );
}

fn bench_gene_codec(c: &mut Criterion) {
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 2, ..Default::default() });
    let gene = generator.gene_with_structure("big", 20, 300);
    let mut group = c.benchmark_group("storage/gene_codec");
    group.bench_function("compact_encode", |b| b.iter(|| gene.to_bytes().len()));
    let bytes = gene.to_bytes();
    group.bench_function("compact_decode", |b| {
        b.iter(|| genalg::core::gdt::Gene::from_bytes(&bytes).unwrap().exonic_len())
    });
    group.bench_function("xml_roundtrip", |b| {
        b.iter(|| {
            let xml =
                genalg::xml::to_xml(&[genalg::core::algebra::Value::Gene(Box::new(gene.clone()))]);
            genalg::xml::from_xml(&xml).unwrap().len()
        })
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/heap");
    group.sample_size(10);
    group.bench_function("insert_1000_small", |b| {
        b.iter(|| {
            let mut heap = HeapFile::new(BufferPool::new(Box::new(MemStore::new()), 64));
            for i in 0..1000u32 {
                heap.insert(&i.to_le_bytes()).unwrap();
            }
            heap.len()
        })
    });
    group.bench_function("insert_20_overflow_100kb", |b| {
        let payload = vec![7u8; 100_000];
        b.iter(|| {
            let mut heap = HeapFile::new(BufferPool::new(Box::new(MemStore::new()), 64));
            for _ in 0..20 {
                heap.insert(&payload).unwrap();
            }
            heap.len()
        })
    });
    // Scan over a prebuilt heap.
    let mut heap = HeapFile::new(BufferPool::new(Box::new(MemStore::new()), 256));
    for i in 0..5000u32 {
        heap.insert(&i.to_le_bytes()).unwrap();
    }
    group.bench_function("scan_5000", |b| b.iter(|| heap.scan().unwrap().len()));
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/btree");
    group.sample_size(10);
    group.bench_function("insert_10k_ints", |b| {
        b.iter(|| {
            let mut tree = BTreeIndex::new(false);
            for i in 0..10_000i64 {
                tree.insert(
                    Datum::Int((i * 7919) % 10_000),
                    genalg::unidb::Rid { page: i as u32, slot: 0 },
                )
                .unwrap();
            }
            tree.len()
        })
    });
    let mut tree = BTreeIndex::new(false);
    for i in 0..10_000i64 {
        tree.insert(Datum::Int(i), genalg::unidb::Rid { page: i as u32, slot: 0 }).unwrap();
    }
    group.bench_function("point_lookup", |b| b.iter(|| tree.get(&Datum::Int(7321)).len()));
    group.bench_function("range_scan_100", |b| {
        b.iter(|| {
            tree.range(
                std::ops::Bound::Included(&Datum::Int(5000)),
                std::ops::Bound::Excluded(&Datum::Int(5100)),
            )
            .len()
        })
    });
    group.finish();
}

/// Build a durable database whose WAL holds `n` logged inserts (no
/// checkpoint), entirely on an in-memory fault-free VFS.
fn db_with_wal(vfs: &FaultVfs, n: usize) -> genalg::unidb::DbResult<()> {
    let db = Database::open_with_vfs(Path::new("/replaybench"), Arc::new(vfs.clone()))?;
    db.recover()?;
    db.execute_as("CREATE TABLE public.t (id INT, val TEXT)", &genalg::unidb::Role::Maintainer)?;
    for i in 0..n {
        db.execute_as(
            &format!("INSERT INTO public.t VALUES ({i}, 'r{i}')"),
            &genalg::unidb::Role::Maintainer,
        )?;
    }
    Ok(())
}

/// Recovery cost as a function of WAL length: reopen + replay, no faults.
/// Prints one JSON document so CI can track replay latency over time.
fn bench_wal_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/wal_replay");
    group.sample_size(10);
    let mut json_rows = Vec::new();
    for n in [100usize, 1_000, 4_000] {
        let vfs = FaultVfs::reliable();
        db_with_wal(&vfs, n).expect("reliable VFS");
        group.bench_with_input(BenchmarkId::new("open_and_recover", n), &n, |b, _| {
            b.iter(|| {
                let db = Database::open_with_vfs(Path::new("/replaybench"), Arc::new(vfs.clone()))
                    .unwrap();
                db.recover().unwrap();
                db
            })
        });
        // One timed sample outside criterion for the JSON summary.
        let start = std::time::Instant::now();
        let db = Database::open_with_vfs(Path::new("/replaybench"), Arc::new(vfs.clone())).unwrap();
        db.recover().unwrap();
        let micros = start.elapsed().as_micros();
        json_rows.push(format!("{{\"wal_records\": {n}, \"replay_us\": {micros}}}"));
    }
    group.finish();
    println!(
        "{{\"bench\": \"wal_replay\", \"unit\": \"us\", \"points\": [{}]}}",
        json_rows.join(", ")
    );
}

criterion_group!(
    benches,
    bench_encodings,
    bench_gene_codec,
    bench_heap,
    bench_btree,
    bench_wal_replay
);
criterion_main!(benches);
