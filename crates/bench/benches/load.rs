//! The sustained-load proving ground: runs the full `genalg-loadgen`
//! scenario suite against a live wire-protocol server, asserts every
//! scenario's SLO, and emits the trajectory two ways —
//!
//! * one JSON document on stdout (last line, like every other bench here,
//!   so CI can `tail -1`), and
//! * the same document written to `BENCH_load.json` at the workspace root
//!   (override with `BENCH_LOAD_OUT=<path>`), the committed trajectory.
//!
//! A human-readable summary table goes to stdout above the JSON.
//!
//! Environment: all `LOADGEN_*` knobs (see `genalg_loadgen::LoadConfig::
//! from_env`) plus the server's `GENALG_*` overrides. `LOADGEN_SMOKE=1`
//! shrinks the scale and skips latency SLOs (error, shed-rate, and hang
//! SLOs still gate). `LOADGEN_INJECT_SLO_FAILURE=1` demonstrates the
//! gate by forcing an impossible p99 bound.
//!
//! Run with `cargo bench -p genalg-bench --bench load`. The process
//! exits nonzero (panics) on any SLO violation — after writing both
//! reports, so a red run still leaves its evidence behind.

use genalg_loadgen::{report, run_suite, LoadConfig};

fn main() {
    let cfg = LoadConfig::from_env();
    eprintln!(
        "load suite starting: seed={} clients={} ops/client={} smoke={}",
        cfg.seed, cfg.clients, cfg.ops_per_client, cfg.smoke
    );
    let suite = run_suite(&cfg);

    let json = report::to_json(&suite);
    let out = std::env::var("BENCH_LOAD_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json").to_string()
    });
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    print!("{}", report::table(&suite));
    println!("{json}");

    // Gate last: both reports are already on disk/stdout.
    suite.assert_slos();
}
