//! Executor throughput: rows/sec through the shapes that dominate
//! analytical load — scan-filter-project, a zone-map-pruned selective
//! scan, a narrow projection over a wide table, hash join, grouped
//! aggregation, and ORDER BY + LIMIT (Top-N) — at each requested table
//! size, serial vs parallel.
//!
//! Emits one JSON document on stdout:
//!
//! ```json
//! {"bench":"exec","results":[
//!   {"query":"scan_filter_project","rows":100000,"parallelism":1,
//!    "elapsed_ms":120.0,"rows_per_sec":833333.3,"pages_skipped":0}]}
//! ```
//!
//! `pages_skipped` is the per-execution count of heap pages the fused
//! scan refuted via zone maps — the CI smoke gate asserts it is non-zero
//! for `scan_selective` (pruning must actually engage, not just exist).
//!
//! Environment:
//!
//! * `BENCH_EXEC_ROWS` — comma-separated table sizes (default
//!   `100000,1000000`); CI smoke uses a small value to catch bit-rot.
//! * `BENCH_EXEC_PAR` — comma-separated parallelism levels (default `1,4`).
//!
//! Run with `cargo bench -p genalg-bench --bench exec`.

use std::time::Instant;
use unidb::Database;

const DIM_ROWS: u64 = 10_000;
/// Column count of the wide table `w` (its rows are `rows / 5`).
const WIDE_COLS: u64 = 12;

fn env_list(name: &str, default: &str) -> Vec<u64> {
    let raw = std::env::var(name).unwrap_or_else(|_| default.to_string());
    raw.split(',').filter_map(|s| s.trim().parse().ok()).collect()
}

/// Deterministic but well-shuffled value in `0..m`.
fn scramble(i: u64, m: u64) -> u64 {
    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)) % m
}

fn build_db(rows: u64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, b INT, g INT, k INT)").unwrap();
    db.execute("CREATE TABLE d (id INT, name TEXT)").unwrap();
    let mut batch = String::new();
    for i in 0..rows {
        if batch.is_empty() {
            batch.push_str("INSERT INTO t VALUES ");
        } else {
            batch.push(',');
        }
        let b = scramble(i, rows.max(1));
        batch.push_str(&format!("({i}, {b}, {}, {})", i % 100, scramble(i, DIM_ROWS)));
        if (i + 1) % 1000 == 0 || i + 1 == rows {
            db.execute(&batch).unwrap();
            batch.clear();
        }
    }
    for i in 0..DIM_ROWS {
        if batch.is_empty() {
            batch.push_str("INSERT INTO d VALUES ");
        } else {
            batch.push(',');
        }
        batch.push_str(&format!("({i}, 'dim{i}')"));
        if (i + 1) % 1000 == 0 || i + 1 == DIM_ROWS {
            db.execute(&batch).unwrap();
            batch.clear();
        }
    }
    // Wide table: WIDE_COLS int columns at a fifth of the fact rows —
    // a narrow projection should decode only the referenced segments.
    let wide_rows = (rows / 5).max(1);
    let cols: Vec<String> = (0..WIDE_COLS).map(|c| format!("c{c} INT")).collect();
    db.execute(&format!("CREATE TABLE w ({})", cols.join(", "))).unwrap();
    for i in 0..wide_rows {
        if batch.is_empty() {
            batch.push_str("INSERT INTO w VALUES ");
        } else {
            batch.push(',');
        }
        batch.push('(');
        for c in 0..WIDE_COLS {
            if c > 0 {
                batch.push(',');
            }
            batch.push_str(&(i.wrapping_mul(c + 1) % 10_000).to_string());
        }
        batch.push(')');
        if (i + 1) % 1000 == 0 || i + 1 == wide_rows {
            db.execute(&batch).unwrap();
            batch.clear();
        }
    }
    db
}

/// Best-of-`iters` wall time for one query, in milliseconds.
fn time_query(db: &Database, sql: &str, iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let rs = db.execute(sql).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(rs);
        best = best.min(ms);
    }
    best
}

fn main() {
    let sizes = env_list("BENCH_EXEC_ROWS", "100000,1000000");
    let pars = env_list("BENCH_EXEC_PAR", "1,4");
    let mut results = Vec::new();
    for &rows in &sizes {
        let db = build_db(rows);
        let half = rows / 2;
        // `a` increases in insert order, so per-page [min,max] zones are
        // disjoint and this 1% cutoff lets zone maps refute ~99% of pages.
        let hi = rows - rows / 100;
        let wide_rows = (rows / 5).max(1);
        let queries = [
            ("scan_filter_project", format!("SELECT a, a + b FROM t WHERE b < {half}"), rows),
            ("scan_selective", format!("SELECT a, b FROM t WHERE a >= {hi}"), rows),
            ("scan_wide_projection", format!("SELECT c{} FROM w", WIDE_COLS - 1), wide_rows),
            ("hash_join", "SELECT count(*) FROM t JOIN d ON t.k = d.id".to_string(), rows),
            ("group_agg", "SELECT g, count(*), sum(b) FROM t GROUP BY g".to_string(), rows),
            ("order_by_limit", "SELECT a, b FROM t ORDER BY b LIMIT 100".to_string(), rows),
        ];
        for &par in &pars {
            db.set_parallelism(par as usize);
            for (name, sql, table_rows) in &queries {
                const ITERS: u32 = 3;
                let skipped_before = db.scan_pages_skipped();
                let ms = time_query(&db, sql, ITERS);
                let skipped = (db.scan_pages_skipped() - skipped_before) / u64::from(ITERS);
                results.push(format!(
                    concat!(
                        "{{\"query\":\"{}\",\"rows\":{},\"parallelism\":{},",
                        "\"elapsed_ms\":{:.1},\"rows_per_sec\":{:.0},\"pages_skipped\":{}}}"
                    ),
                    name,
                    table_rows,
                    par,
                    ms,
                    *table_rows as f64 / (ms / 1e3),
                    skipped,
                ));
            }
        }
    }
    println!("{{\"bench\":\"exec\",\"results\":[{}]}}", results.join(","));
}
