//! Throughput of the differential-testing harness itself: how many fuzzed
//! scenarios (and individual SQL statements) per second the generate →
//! execute-on-engine → execute-on-oracle → compare loop sustains. This is
//! the number that decides how wide the CI seed matrix can be.
//!
//! Emits one JSON document on stdout:
//!
//! ```json
//! {"bench":"qdiff_throughput","results":[
//!   {"phase":"generate","scenarios":400,"elapsed_ms":12.0,"per_sec":33333.3},
//!   {"phase":"check","scenarios":400,"statements":3800,"elapsed_ms":900.0,
//!    "per_sec":444.4}]}
//! ```
//!
//! Run with `cargo bench -p genalg-bench --bench qdiff`.

use qdiff::{check_scenario, gen_scenario};
use std::time::Instant;

const SCENARIOS: u64 = 400;

fn main() {
    // Generation alone (pure, no database).
    let t = Instant::now();
    let mut statements = 0usize;
    for seed in 0..SCENARIOS {
        let sc = gen_scenario(seed);
        statements += sc.ops.len() + sc.setup_sql().len();
    }
    let gen_ms = t.elapsed().as_secs_f64() * 1e3;

    // Full differential check: engine + oracle + comparison per statement.
    let t = Instant::now();
    let mut divergences = 0usize;
    for seed in 0..SCENARIOS {
        if check_scenario(&gen_scenario(seed)).is_some() {
            divergences += 1;
        }
    }
    let check_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(divergences, 0, "bench range must be divergence-free");

    println!(
        concat!(
            "{{\"bench\":\"qdiff_throughput\",\"results\":[",
            "{{\"phase\":\"generate\",\"scenarios\":{sc},\"statements\":{st},",
            "\"elapsed_ms\":{gms:.1},\"per_sec\":{gps:.1}}},",
            "{{\"phase\":\"check\",\"scenarios\":{sc},\"statements\":{st},",
            "\"elapsed_ms\":{cms:.1},\"per_sec\":{cps:.1}}}]}}"
        ),
        sc = SCENARIOS,
        st = statements,
        gms = gen_ms,
        gps = SCENARIOS as f64 / (gen_ms / 1e3),
        cms = check_ms,
        cps = SCENARIOS as f64 / (check_ms / 1e3),
    );
}
