//! Criterion bench for §6.3: genomic operators embedded in SQL, exercised
//! in every clause position over a realistic warehouse table.

use criterion::{criterion_group, criterion_main, Criterion};
use genalg::prelude::*;

const ROWS: usize = 1000;

fn seeded_db() -> (Database, String) {
    let db = Database::in_memory();
    let _adapter = Adapter::install(&db).expect("adapter installs");
    db.execute("CREATE TABLE frags (id INT, organism TEXT, seq dna)").expect("ddl");
    let mut generator = RepoGenerator::new(GeneratorConfig {
        seed: 8,
        error_rate: 0.0,
        min_len: 150,
        max_len: 400,
        ..Default::default()
    });
    let records = generator.records(ROWS);
    db.execute("BEGIN").expect("txn");
    for (i, rec) in records.iter().enumerate() {
        db.execute(&format!(
            "INSERT INTO frags VALUES ({i}, '{}', dna('{}'))",
            rec.organism.as_deref().unwrap_or("?"),
            rec.sequence.to_text()
        ))
        .expect("insert");
    }
    db.execute("COMMIT").expect("txn");
    // A pattern present in the data.
    let donor = &records[ROWS / 2].sequence;
    let pattern = donor.subseq(30, 45).expect("long enough").to_text();
    (db, pattern)
}

fn bench_clauses(c: &mut Criterion) {
    let (db, pattern) = seeded_db();
    let mut group = c.benchmark_group("sql_embedding");
    group.sample_size(10);

    group.bench_function("where_contains_scan_1k", |b| {
        let sql = format!("SELECT id FROM frags WHERE contains(seq, '{pattern}')");
        b.iter(|| db.execute(&sql).unwrap().len())
    });
    group.bench_function("select_gc_projection_1k", |b| {
        b.iter(|| db.execute("SELECT id, gc_content(seq) FROM frags").unwrap().len())
    });
    group.bench_function("group_by_with_genomic_agg_1k", |b| {
        b.iter(|| {
            db.execute(
                "SELECT organism, avg(gc_content(seq)), max(seq_length(seq)) \
                 FROM frags GROUP BY organism",
            )
            .unwrap()
            .len()
        })
    });
    group.bench_function("order_by_genomic_expr_top10", |b| {
        b.iter(|| {
            db.execute("SELECT id FROM frags ORDER BY gc_content(seq) DESC LIMIT 10").unwrap().len()
        })
    });
    group.bench_function("resembles_predicate_100rows", |b| {
        let (db2, pattern2) = {
            // Smaller table: resembles is quadratic per row.
            let db = Database::in_memory();
            Adapter::install(&db).unwrap();
            db.execute("CREATE TABLE f (id INT, seq dna)").unwrap();
            let mut generator = RepoGenerator::new(GeneratorConfig {
                seed: 9,
                error_rate: 0.0,
                min_len: 150,
                max_len: 200,
                ..Default::default()
            });
            let records = generator.records(100);
            for (i, rec) in records.iter().enumerate() {
                db.execute(&format!(
                    "INSERT INTO f VALUES ({i}, dna('{}'))",
                    rec.sequence.to_text()
                ))
                .unwrap();
            }
            (db, records[50].sequence.to_text())
        };
        let sql = format!("SELECT id FROM f WHERE resembles(seq, '{pattern2}', 0.9, 0.9)");
        b.iter(|| db2.execute(&sql).unwrap().len())
    });
    group.finish();
}

fn bench_bql_overhead(c: &mut Criterion) {
    let mut warehouse = Warehouse::new().expect("boots");
    warehouse
        .add_source(SimulatedRepository::new(
            "s",
            Representation::Relational,
            Capability::Queryable,
        ))
        .unwrap();
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 10, ..Default::default() });
    for rec in generator.records(200) {
        warehouse.source_mut("s").unwrap().apply(ChangeKind::Insert, rec).unwrap();
    }
    warehouse.refresh().unwrap();

    let mut group = c.benchmark_group("sql_embedding/bql");
    group.sample_size(10);
    group.bench_function("bql_compile_only", |b| {
        b.iter(|| {
            genalg::bql::parse(
                "FIND SEQUENCES LONGER THAN 300 SHOW accession, gc SORTED BY gc DESCENDING TOP 5",
            )
            .unwrap()
            .to_sql()
            .unwrap()
            .len()
        })
    });
    group.bench_function("bql_compile_and_run", |b| {
        b.iter(|| {
            genalg::bql::run(
                warehouse.db(),
                "FIND SEQUENCES LONGER THAN 300 SHOW accession, gc SORTED BY gc DESCENDING TOP 5",
            )
            .unwrap()
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clauses, bench_bql_overhead);
criterion_main!(benches);
