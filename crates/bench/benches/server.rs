//! Throughput of the query-service layer: queries/sec at 1, 4, and 16
//! concurrent sessions, with the plan + result caches on and off, plus a
//! single-threaded baseline doing the same total work (so the speedup of
//! concurrent shared-lock reads is directly visible).
//!
//! Emits one JSON document on stdout:
//!
//! ```json
//! {"bench":"server_throughput","results":[
//!   {"sessions":16,"caches":true,"mode":"concurrent","ops":3200,
//!    "elapsed_ms":41.2,"qps":77669.9}, ...]}
//! ```
//!
//! Run with `cargo bench -p genalg-bench --bench server`.

use genalg_server::{Server, ServerConfig, SessionKind};
use std::sync::Arc;
use std::time::Instant;
use unidb::{Database, Role};

const OPS_PER_SESSION: usize = 200;
const ROWS: usize = 2000;

/// Query mix: distinct statements so the plan cache holds several entries;
/// repeated within a run so the result cache gets real hit traffic.
const QUERIES: [&str; 4] = [
    "SELECT count(*) FROM public.seqs WHERE gc > 0.25",
    "SELECT id, gc FROM public.seqs WHERE id < 50",
    "SELECT count(*), max(gc) FROM public.seqs WHERE id >= 1000",
    "SELECT gc FROM public.seqs WHERE id = 777",
];

fn seeded_db() -> Arc<Database> {
    let db = Arc::new(Database::in_memory());
    db.execute_as("CREATE TABLE public.seqs (id INT, gc FLOAT)", &Role::Maintainer)
        .expect("create");
    db.execute_as("CREATE INDEX ON public.seqs (id)", &Role::Maintainer).expect("index");
    for chunk in 0..(ROWS / 100) {
        let rows: Vec<String> = (0..100)
            .map(|i| {
                let id = chunk * 100 + i;
                format!("({id}, 0.{:02})", (id * 37) % 100)
            })
            .collect();
        db.execute_as(
            &format!("INSERT INTO public.seqs VALUES {}", rows.join(", ")),
            &Role::Maintainer,
        )
        .expect("seed");
    }
    db
}

struct Sample {
    sessions: usize,
    caches: bool,
    mode: &'static str,
    ops: usize,
    elapsed_ms: f64,
}

impl Sample {
    fn qps(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ms / 1000.0)
    }
}

fn run_concurrent(db: &Arc<Database>, sessions: usize, caches: bool, total_ops: usize) -> Sample {
    let config = ServerConfig {
        workers: sessions.max(4),
        queue_capacity: 4 * sessions.max(4),
        caches_enabled: caches,
        ..ServerConfig::default()
    };
    let server = Server::new(Arc::clone(db), &config);
    let client = server.client();
    let per_session = total_ops / sessions;
    let start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|t| {
            let client = client.clone();
            std::thread::spawn(move || {
                let s = client.open(SessionKind::Public);
                for i in 0..per_session {
                    let sql = QUERIES[(t + i) % QUERIES.len()];
                    // Busy is impossible here (queue sized to the session
                    // count) but retry anyway so the bench never panics.
                    loop {
                        match client.query(s, sql) {
                            Ok(_) => break,
                            Err(genalg_server::ServerError::Busy { .. }) => continue,
                            Err(e) => panic!("bench query failed: {e}"),
                        }
                    }
                }
                client.close(s);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench session panicked");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    let mode = if sessions == 1 { "sequential" } else { "concurrent" };
    Sample { sessions, caches, mode, ops: per_session * sessions, elapsed_ms }
}

fn main() {
    let db = seeded_db();
    let mut samples = Vec::new();
    for &caches in &[true, false] {
        for &sessions in &[1usize, 4, 16] {
            // Same total work per configuration so qps is comparable and the
            // 16-session run directly measures parallel speedup over the
            // 1-session (sequential) run.
            let total_ops = 16 * OPS_PER_SESSION;
            samples.push(run_concurrent(&db, sessions, caches, total_ops));
        }
    }

    let entries: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"sessions\":{},\"caches\":{},\"mode\":\"{}\",\"ops\":{},\
                 \"elapsed_ms\":{:.1},\"qps\":{:.1}}}",
                s.sessions,
                s.caches,
                s.mode,
                s.ops,
                s.elapsed_ms,
                s.qps()
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "{{\"bench\":\"server_throughput\",\"cores\":{cores},\"results\":[{}]}}",
        entries.join(",")
    );

    // Human-readable summary on stderr, with the headline ratio.
    for s in &samples {
        eprintln!(
            "sessions={:2} caches={:5} mode={:10} {:8} ops in {:8.1} ms  ({:9.0} q/s)",
            s.sessions,
            s.caches,
            s.mode,
            s.ops,
            s.elapsed_ms,
            s.qps()
        );
    }
    let speedup = |caches: bool| {
        let seq = samples.iter().find(|s| s.sessions == 1 && s.caches == caches).unwrap();
        let par = samples.iter().find(|s| s.sessions == 16 && s.caches == caches).unwrap();
        seq.elapsed_ms / par.elapsed_ms
    };
    eprintln!(
        "16-session speedup over sequential: {:.2}x (caches on), {:.2}x (caches off)",
        speedup(true),
        speedup(false)
    );
}
