//! The normalized record wrappers produce from every source format.

use genalg_core::gdt::Feature;
use genalg_core::seq::DnaSeq;

/// One sequence entry as seen by the integrator — the common denominator of
/// GenBank, EMBL, FASTA, and hierarchical records.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqRecord {
    /// Stable accession (primary key across sources).
    pub accession: String,
    /// Entry version; sources bump it on every change.
    pub version: u32,
    /// Free-text description line.
    pub description: String,
    /// Source organism, if annotated.
    pub organism: Option<String>,
    /// The nucleotide sequence.
    pub sequence: DnaSeq,
    /// Annotation features (CDS, gene, …).
    pub features: Vec<Feature>,
    /// The repository this record came from (provenance).
    pub source: String,
}

impl SeqRecord {
    /// A minimal record (tests and generators flesh it out).
    pub fn new(accession: &str, sequence: DnaSeq) -> Self {
        SeqRecord {
            accession: accession.to_string(),
            version: 1,
            description: String::new(),
            organism: None,
            sequence,
            features: Vec::new(),
            source: String::new(),
        }
    }

    /// Builder-style setters.
    pub fn with_description(mut self, d: &str) -> Self {
        self.description = d.to_string();
        self
    }

    pub fn with_organism(mut self, o: &str) -> Self {
        self.organism = Some(o.to_string());
        self
    }

    pub fn with_version(mut self, v: u32) -> Self {
        self.version = v;
        self
    }

    pub fn with_source(mut self, s: &str) -> Self {
        self.source = s.to_string();
        self
    }

    pub fn with_feature(mut self, f: Feature) -> Self {
        self.features.push(f);
        self
    }

    /// Two records describe the same *content* if everything except
    /// provenance matches (used by change detection).
    pub fn same_content(&self, other: &SeqRecord) -> bool {
        self.accession == other.accession
            && self.version == other.version
            && self.description == other.description
            && self.organism == other.organism
            && self.sequence == other.sequence
            && self.features == other.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_content_equality() {
        let seq = DnaSeq::from_text("ATGC").unwrap();
        let a = SeqRecord::new("X1", seq.clone())
            .with_description("demo")
            .with_organism("E. coli")
            .with_version(2)
            .with_source("genbank");
        let b = a.clone().with_source("embl");
        assert!(a.same_content(&b), "provenance must not affect content equality");
        assert_ne!(a, b);
        let c = b.clone().with_version(3);
        assert!(!a.same_content(&c));
        assert_eq!(a.organism.as_deref(), Some("E. coli"));
    }
}
