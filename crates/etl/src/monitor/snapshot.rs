//! Snapshot differentials: keyed comparison of two complete states.

use crate::delta::Delta;
use crate::record::SeqRecord;
use std::collections::BTreeMap;

/// Compare two snapshots keyed by accession; emits inserts, updates (when
/// content differs), and deletes. Delta ids are allocated from `next_id`.
pub fn snapshot_differential(
    old: &[SeqRecord],
    new: &[SeqRecord],
    next_id: &mut u64,
    timestamp: u64,
) -> Vec<Delta> {
    let old_map: BTreeMap<&str, &SeqRecord> =
        old.iter().map(|r| (r.accession.as_str(), r)).collect();
    let new_map: BTreeMap<&str, &SeqRecord> =
        new.iter().map(|r| (r.accession.as_str(), r)).collect();
    let mut out = Vec::new();
    let mut alloc = |before: Option<SeqRecord>, after: Option<SeqRecord>| {
        let d = Delta::infer(*next_id, timestamp, before, after);
        *next_id += 1;
        d
    };
    for (acc, n) in &new_map {
        match old_map.get(acc) {
            None => out.push(alloc(None, Some((*n).clone()))),
            Some(o) if !o.same_content(n) => {
                out.push(alloc(Some((*o).clone()), Some((*n).clone())))
            }
            Some(_) => {}
        }
    }
    for (acc, o) in &old_map {
        if !new_map.contains_key(acc) {
            out.push(alloc(Some((*o).clone()), None));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::ChangeKind;
    use genalg_core::seq::DnaSeq;

    fn rec(acc: &str, seq: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap())
    }

    #[test]
    fn detects_all_three_kinds() {
        let old = vec![rec("A", "ATGC"), rec("B", "GGGG"), rec("C", "TTTT")];
        let new = vec![rec("A", "ATGC"), rec("B", "GGGGCC"), rec("D", "AAAA")];
        let mut id = 1;
        let deltas = snapshot_differential(&old, &new, &mut id, 42);
        assert_eq!(deltas.len(), 3);
        assert!(deltas.iter().all(Delta::is_well_formed));
        assert!(deltas.iter().all(|d| d.timestamp == 42));
        let kinds: Vec<(ChangeKind, &str)> =
            deltas.iter().map(|d| (d.kind, d.accession.as_str())).collect();
        assert!(kinds.contains(&(ChangeKind::Update, "B")));
        assert!(kinds.contains(&(ChangeKind::Insert, "D")));
        assert!(kinds.contains(&(ChangeKind::Delete, "C")));
        // Ids are unique and consecutive.
        let mut ids: Vec<u64> = deltas.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(id, 4);
    }

    #[test]
    fn identical_snapshots_are_quiet() {
        let snap = vec![rec("A", "ATGC")];
        let mut id = 1;
        assert!(snapshot_differential(&snap, &snap.clone(), &mut id, 1).is_empty());
        assert_eq!(id, 1);
    }

    #[test]
    fn version_changes_count_as_updates() {
        let old = vec![rec("A", "ATGC")];
        let new = vec![rec("A", "ATGC").with_version(2)];
        let mut id = 1;
        let deltas = snapshot_differential(&old, &new, &mut id, 1);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].kind, ChangeKind::Update);
    }

    #[test]
    fn empty_edges() {
        let mut id = 1;
        let recs = vec![rec("A", "AT")];
        assert_eq!(snapshot_differential(&[], &recs, &mut id, 1)[0].kind, ChangeKind::Insert);
        assert_eq!(snapshot_differential(&recs, &[], &mut id, 1)[0].kind, ChangeKind::Delete);
        assert!(snapshot_differential(&[], &[], &mut id, 1).is_empty());
    }
}
