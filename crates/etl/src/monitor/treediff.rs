//! Ordered-tree edit scripts for hierarchical sources (the `acediff`
//! technique of §5.2).

use crate::formats::hier::HierNode;

/// One step of a tree edit script. Paths are child-index chains into the
/// *current* (evolving) forest; edits apply sequentially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeEdit {
    /// Insert a whole subtree so it lands at `path`.
    InsertSubtree { path: Vec<usize>, node: HierNode },
    /// Delete the subtree at `path`.
    DeleteSubtree { path: Vec<usize> },
    /// Replace the arguments of the node at `path`.
    Relabel { path: Vec<usize>, args: Vec<String> },
}

/// A node's identity for matching: name plus first argument (hierarchical
/// formats key nodes that way, e.g. `Sequence "ACC1"`).
fn key(node: &HierNode) -> (String, Option<String>) {
    (node.name.clone(), node.args.first().cloned())
}

/// Compute an edit script transforming `old` into `new`.
pub fn diff_forest(old: &[HierNode], new: &[HierNode]) -> Vec<TreeEdit> {
    let mut edits = Vec::new();
    diff_children(old, new, &mut Vec::new(), &mut edits);
    edits
}

fn diff_children(
    old: &[HierNode],
    new: &[HierNode],
    prefix: &mut Vec<usize>,
    edits: &mut Vec<TreeEdit>,
) {
    // LCS over node keys keeps shared structure in place.
    let n = old.len();
    let m = new.len();
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if key(&old[i]) == key(&new[j]) {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let (mut i, mut j) = (0usize, 0usize);
    let mut pos = 0usize; // index in the evolving child list
    while i < n && j < m {
        if key(&old[i]) == key(&new[j]) {
            // Matched: reconcile arguments and recurse.
            prefix.push(pos);
            if old[i].args != new[j].args {
                edits.push(TreeEdit::Relabel { path: prefix.clone(), args: new[j].args.clone() });
            }
            diff_children(&old[i].children, &new[j].children, prefix, edits);
            prefix.pop();
            i += 1;
            j += 1;
            pos += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            let mut path = prefix.clone();
            path.push(pos);
            edits.push(TreeEdit::DeleteSubtree { path });
            i += 1;
        } else {
            let mut path = prefix.clone();
            path.push(pos);
            edits.push(TreeEdit::InsertSubtree { path, node: new[j].clone() });
            j += 1;
            pos += 1;
        }
    }
    while i < n {
        let mut path = prefix.clone();
        path.push(pos);
        edits.push(TreeEdit::DeleteSubtree { path });
        i += 1;
    }
    while j < m {
        let mut path = prefix.clone();
        path.push(pos);
        edits.push(TreeEdit::InsertSubtree { path, node: new[j].clone() });
        j += 1;
        pos += 1;
    }
}

/// Apply an edit script in place.
pub fn apply_edits(forest: &mut Vec<HierNode>, edits: &[TreeEdit]) {
    for e in edits {
        match e {
            TreeEdit::InsertSubtree { path, node } => {
                let (parent, idx) = locate_parent(forest, path);
                let at = idx.min(parent.len());
                parent.insert(at, node.clone());
            }
            TreeEdit::DeleteSubtree { path } => {
                let (parent, idx) = locate_parent(forest, path);
                parent.remove(idx);
            }
            TreeEdit::Relabel { path, args } => {
                let (parent, idx) = locate_parent(forest, path);
                parent[idx].args = args.clone();
            }
        }
    }
}

fn locate_parent<'a>(
    forest: &'a mut Vec<HierNode>,
    path: &[usize],
) -> (&'a mut Vec<HierNode>, usize) {
    let (last, rest) = path.split_last().expect("paths are never empty");
    let mut parent = forest;
    for &i in rest {
        parent = &mut parent[i].children;
    }
    (parent, *last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(name: &str, arg: &str, children: Vec<HierNode>) -> HierNode {
        let mut n = HierNode::leaf(name, &[arg]);
        n.children = children;
        n
    }

    #[test]
    fn identical_forests_empty_script() {
        let f = vec![tree("Sequence", "A", vec![HierNode::leaf("Version", &["1"])])];
        assert!(diff_forest(&f, &f).is_empty());
    }

    #[test]
    fn relabel_detected() {
        let old = vec![tree("Sequence", "A", vec![HierNode::leaf("Version", &["1"])])];
        let new = vec![tree("Sequence", "A", vec![HierNode::leaf("Version", &["2"])])];
        let edits = diff_forest(&old, &new);
        // Version nodes share the key ("Version", Some("1")) vs ("Version",
        // Some("2"))? No: first arg differs, so it is a delete+insert — but
        // that is still a 2-edit script localized to the child.
        assert!(edits.len() <= 2, "{edits:?}");
        let mut f = old;
        apply_edits(&mut f, &edits);
        assert_eq!(f, new);
    }

    #[test]
    fn insert_and_delete_subtrees() {
        let old = vec![
            tree("Sequence", "A", vec![]),
            tree("Sequence", "B", vec![HierNode::leaf("DNA", &["ATGC"])]),
        ];
        let new = vec![
            tree("Sequence", "B", vec![HierNode::leaf("DNA", &["ATGC"])]),
            tree("Sequence", "C", vec![HierNode::leaf("DNA", &["GG"])]),
        ];
        let edits = diff_forest(&old, &new);
        assert_eq!(edits.len(), 2, "{edits:?}");
        let mut f = old;
        apply_edits(&mut f, &edits);
        assert_eq!(f, new);
    }

    #[test]
    fn nested_changes_stay_local() {
        let old = vec![tree(
            "Sequence",
            "A",
            vec![
                HierNode::leaf("Version", &["1"]),
                tree("Feature", "gene", vec![HierNode::leaf("Qualifier", &["gene"])]),
            ],
        )];
        let mut new = old.clone();
        new[0].children[1].children[0].args = vec!["gene".into(), "renamed".into()];
        let edits = diff_forest(&old, &new);
        // One relabel deep in the tree (key = name + first arg matches).
        assert_eq!(edits.len(), 1, "{edits:?}");
        assert!(matches!(&edits[0], TreeEdit::Relabel { path, .. } if path == &vec![0, 1, 0]));
        let mut f = old;
        apply_edits(&mut f, &edits);
        assert_eq!(f, new);
    }

    #[test]
    fn randomized_roundtrips() {
        // A deterministic set of mutations over a growing forest: apply of
        // diff must always reproduce the target.
        let base: Vec<HierNode> = (0..6)
            .map(|i| {
                tree(
                    "Sequence",
                    &format!("S{i}"),
                    vec![HierNode::leaf("Version", &["1"]), HierNode::leaf("DNA", &["ATGC"])],
                )
            })
            .collect();
        let variants: Vec<Vec<HierNode>> = vec![
            base[1..].to_vec(), // drop first
            base[..4].to_vec(), // truncate
            {
                let mut v = base.clone();
                v.swap(0, 5);
                v
            },
            {
                let mut v = base.clone();
                v[3].children[1].args = vec!["TTTT".into()];
                v.push(tree("Sequence", "NEW", vec![]));
                v
            },
            Vec::new(),
        ];
        for target in variants {
            let edits = diff_forest(&base, &target);
            let mut f = base.clone();
            apply_edits(&mut f, &edits);
            assert_eq!(f, target);
        }
        // And starting from empty.
        let edits = diff_forest(&[], &base);
        assert_eq!(edits.len(), base.len());
        let mut f = Vec::new();
        apply_edits(&mut f, &edits);
        assert_eq!(f, base);
    }

    #[test]
    fn script_size_scales_with_change_not_tree() {
        let big: Vec<HierNode> = (0..200)
            .map(|i| tree("Sequence", &format!("S{i}"), vec![HierNode::leaf("Version", &["1"])]))
            .collect();
        let mut changed = big.clone();
        changed[100].children[0].args = vec!["2".into()];
        let edits = diff_forest(&big, &changed);
        assert!(edits.len() <= 2, "expected a local script, got {}", edits.len());
    }
}
