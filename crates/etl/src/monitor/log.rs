//! Log inspection: the monitor for *logged* sources keeps a cursor into
//! the source's change log and pulls everything newer.

use crate::delta::Delta;
use crate::source::SimulatedRepository;
use genalg_core::error::Result;

/// A cursor-based log monitor.
#[derive(Debug, Default)]
pub struct LogMonitor {
    cursor: u64,
    polls: u64,
    deltas_seen: u64,
}

impl LogMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pull every log entry newer than the cursor.
    pub fn poll(&mut self, source: &SimulatedRepository) -> Result<Vec<Delta>> {
        self.polls += 1;
        let entries = source.read_log(self.cursor)?;
        let mut deltas = Vec::with_capacity(entries.len());
        for (id, delta) in entries {
            self.cursor = self.cursor.max(id);
            deltas.push(delta);
        }
        self.deltas_seen += deltas.len() as u64;
        Ok(deltas)
    }

    /// `(polls, deltas seen)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.polls, self.deltas_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::ChangeKind;
    use crate::record::SeqRecord;
    use crate::source::{Capability, Representation};
    use genalg_core::seq::DnaSeq;

    fn rec(acc: &str, seq: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap())
    }

    #[test]
    fn cursor_advances_without_duplicates() {
        let mut repo =
            SimulatedRepository::new("log", Representation::FlatFile, Capability::Logged);
        let mut monitor = LogMonitor::new();
        repo.apply(ChangeKind::Insert, rec("A", "ATGC")).unwrap();
        repo.apply(ChangeKind::Insert, rec("B", "GGGG")).unwrap();
        let first = monitor.poll(&repo).unwrap();
        assert_eq!(first.len(), 2);
        // No new changes → nothing delivered twice.
        assert!(monitor.poll(&repo).unwrap().is_empty());
        repo.apply(ChangeKind::Update, rec("A", "ATGCAT")).unwrap();
        let second = monitor.poll(&repo).unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].kind, ChangeKind::Update);
        assert_eq!(monitor.stats(), (3, 3));
    }

    #[test]
    fn log_captures_every_intermediate_change() {
        // Unlike polling, log inspection never collapses rapid updates.
        let mut repo =
            SimulatedRepository::new("log", Representation::Relational, Capability::Logged);
        let mut monitor = LogMonitor::new();
        repo.apply(ChangeKind::Insert, rec("A", "A")).unwrap();
        for seq in ["AT", "ATG", "ATGC"] {
            repo.apply(ChangeKind::Update, rec("A", seq)).unwrap();
        }
        let deltas = monitor.poll(&repo).unwrap();
        assert_eq!(deltas.len(), 4, "insert + three distinct updates");
    }

    #[test]
    fn requires_logged_capability() {
        let repo = SimulatedRepository::new("q", Representation::Relational, Capability::Queryable);
        assert!(LogMonitor::new().poll(&repo).is_err());
    }
}
