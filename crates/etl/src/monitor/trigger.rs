//! Trigger-based monitoring for *active* sources: the source pushes
//! notifications; the monitor just drains its channel.

use crate::delta::Delta;
use crate::source::SimulatedRepository;
use crossbeam::channel::{unbounded, Receiver};
use genalg_core::error::Result;

/// A push-notification monitor (database trigger / program trigger cell of
/// Figure 2).
#[derive(Debug)]
pub struct TriggerMonitor {
    rx: Receiver<Delta>,
    received: u64,
}

impl TriggerMonitor {
    /// Subscribe to an active source.
    pub fn attach(source: &mut SimulatedRepository) -> Result<Self> {
        let (tx, rx) = unbounded();
        source.subscribe(tx)?;
        Ok(TriggerMonitor { rx, received: 0 })
    }

    /// Collect every notification delivered since the last drain.
    pub fn drain(&mut self) -> Vec<Delta> {
        let deltas: Vec<Delta> = self.rx.try_iter().collect();
        self.received += deltas.len() as u64;
        deltas
    }

    /// Total notifications received.
    pub fn received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::ChangeKind;
    use crate::record::SeqRecord;
    use crate::source::{Capability, Representation};
    use genalg_core::seq::DnaSeq;

    fn rec(acc: &str, seq: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap())
    }

    #[test]
    fn notifications_flow_immediately() {
        let mut repo =
            SimulatedRepository::new("push", Representation::Relational, Capability::Active);
        let mut monitor = TriggerMonitor::attach(&mut repo).unwrap();
        assert!(monitor.drain().is_empty());
        repo.apply(ChangeKind::Insert, rec("A", "ATGC")).unwrap();
        repo.apply(ChangeKind::Delete, rec("A", "ATGC")).unwrap();
        let deltas = monitor.drain();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].kind, ChangeKind::Insert);
        assert_eq!(deltas[1].kind, ChangeKind::Delete);
        assert_eq!(monitor.received(), 2);
        // Drained once; nothing left.
        assert!(monitor.drain().is_empty());
    }

    #[test]
    fn multiple_subscribers_each_get_everything() {
        let mut repo =
            SimulatedRepository::new("push", Representation::Hierarchical, Capability::Active);
        let mut m1 = TriggerMonitor::attach(&mut repo).unwrap();
        let mut m2 = TriggerMonitor::attach(&mut repo).unwrap();
        repo.apply(ChangeKind::Insert, rec("A", "AT")).unwrap();
        assert_eq!(m1.drain().len(), 1);
        assert_eq!(m2.drain().len(), 1);
    }

    #[test]
    fn non_active_sources_refuse() {
        let mut repo =
            SimulatedRepository::new("passive", Representation::Relational, Capability::Logged);
        assert!(TriggerMonitor::attach(&mut repo).is_err());
    }
}
