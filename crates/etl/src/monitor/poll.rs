//! Polling monitors for queryable and non-queryable sources.
//!
//! §5.2's polling-frequency trade-off is observable here: a poll only sees
//! the *net* difference since the previous poll, so rapid intermediate
//! changes collapse (contrast [`crate::monitor::log::LogMonitor`], which
//! sees every log entry). The tests pin that behaviour down; the Figure 2
//! bench measures the cost side.

use crate::delta::Delta;
use crate::formats::{genbank, hier};
use crate::monitor::lcs;
use crate::monitor::snapshot::snapshot_differential;
use crate::monitor::treediff;
use crate::record::SeqRecord;
use crate::source::{Representation, SimulatedRepository};
use genalg_core::error::Result;

/// Snapshot-differential polling for queryable sources.
#[derive(Debug, Default)]
pub struct PollMonitor {
    last: Vec<SeqRecord>,
    next_id: u64,
    polls: u64,
    deltas_seen: u64,
}

impl PollMonitor {
    pub fn new() -> Self {
        PollMonitor { last: Vec::new(), next_id: 1, polls: 0, deltas_seen: 0 }
    }

    /// Re-query the source and diff against the previous snapshot. A failed
    /// snapshot leaves the monitor's state untouched, so the next successful
    /// poll still diffs against the last *good* snapshot — no deltas lost.
    pub fn poll(&mut self, source: &SimulatedRepository) -> Result<Vec<Delta>> {
        self.polls += 1;
        let current = source.snapshot()?;
        let deltas = snapshot_differential(&self.last, &current, &mut self.next_id, source.clock());
        self.last = current;
        self.deltas_seen += deltas.len() as u64;
        Ok(deltas)
    }

    /// `(polls, deltas seen)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.polls, self.deltas_seen)
    }
}

/// Dump-comparison monitoring for non-queryable sources: LCS line diff for
/// flat files, ordered-tree edit scripts for hierarchical dumps. The
/// returned `usize` is the edit-script length (the technique's work
/// product beyond the record deltas).
#[derive(Debug, Default)]
pub struct DumpMonitor {
    last_dump: String,
    next_id: u64,
    polls: u64,
}

impl DumpMonitor {
    pub fn new() -> Self {
        DumpMonitor { last_dump: String::new(), next_id: 1, polls: 0 }
    }

    /// Fetch the next periodic dump and compare with the previous one. Like
    /// [`PollMonitor::poll`], a failed fetch leaves the previous dump in
    /// place for the next attempt.
    pub fn poll(&mut self, source: &SimulatedRepository) -> Result<(Vec<Delta>, usize)> {
        self.polls += 1;
        let dump = source.dump()?;
        let result = match source.representation() {
            Representation::FlatFile | Representation::Relational => lcs::flatfile_deltas(
                &self.last_dump,
                &dump,
                |text| {
                    if source.representation() == Representation::FlatFile {
                        genbank::parse(text)
                    } else {
                        parse_relational(text)
                    }
                },
                &mut self.next_id,
                source.clock(),
            )?,
            Representation::Hierarchical => {
                let old_tree = hier::parse(&self.last_dump)?;
                let new_tree = hier::parse(&dump)?;
                let script = treediff::diff_forest(&old_tree, &new_tree);
                let deltas = if script.is_empty() {
                    Vec::new()
                } else {
                    let old = hier::to_records(&old_tree)?;
                    let new = hier::to_records(&new_tree)?;
                    snapshot_differential(&old, &new, &mut self.next_id, source.clock())
                };
                (deltas, script.len())
            }
        };
        self.last_dump = dump;
        Ok(result)
    }

    /// Polls performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }
}

/// Parse the tab-separated relational dump format.
fn parse_relational(text: &str) -> Result<Vec<SeqRecord>> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 5 {
            return Err(genalg_core::error::GenAlgError::Other(format!(
                "relational dump line {} has {} columns",
                i + 1,
                cols.len()
            )));
        }
        let mut rec = SeqRecord::new(cols[0], genalg_core::seq::DnaSeq::from_text(cols[4])?)
            .with_description(cols[2]);
        rec.version = cols[1]
            .parse()
            .map_err(|_| genalg_core::error::GenAlgError::Other("bad version".into()))?;
        if !cols[3].is_empty() {
            rec.organism = Some(cols[3].to_string());
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::ChangeKind;
    use crate::source::Capability;
    use genalg_core::seq::DnaSeq;

    fn rec(acc: &str, seq: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap()).with_description("x")
    }

    #[test]
    fn poll_monitor_sees_net_changes() {
        let mut repo =
            SimulatedRepository::new("q", Representation::Relational, Capability::Queryable);
        let mut monitor = PollMonitor::new();
        assert!(monitor.poll(&repo).unwrap().is_empty());

        repo.apply(ChangeKind::Insert, rec("A", "ATGC")).unwrap();
        let d = monitor.poll(&repo).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, ChangeKind::Insert);

        // Three rapid updates between polls collapse into one net update —
        // the polling-frequency trade-off of §5.2.
        for seq in ["ATGCA", "ATGCAT", "ATGCATG"] {
            repo.apply(ChangeKind::Update, rec("A", seq)).unwrap();
        }
        let d = monitor.poll(&repo).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, ChangeKind::Update);
        assert_eq!(
            d[0].after.as_ref().unwrap().sequence.to_text(),
            "ATGCATG",
            "the poll sees only the final state"
        );

        // Insert-then-delete between polls is invisible.
        repo.apply(ChangeKind::Insert, rec("GHOST", "GG")).unwrap();
        repo.apply(ChangeKind::Delete, rec("GHOST", "GG")).unwrap();
        assert!(monitor.poll(&repo).unwrap().is_empty());
        assert_eq!(monitor.stats().0, 4);
    }

    #[test]
    fn dump_monitor_flatfile() {
        let mut repo =
            SimulatedRepository::new("nq", Representation::FlatFile, Capability::NonQueryable);
        let mut monitor = DumpMonitor::new();
        // First poll sees the initial state as inserts.
        repo.apply(ChangeKind::Insert, rec("A", "ATGC")).unwrap();
        repo.apply(ChangeKind::Insert, rec("B", "GGGG")).unwrap();
        let (deltas, script) = monitor.poll(&repo).unwrap();
        assert_eq!(deltas.len(), 2);
        assert!(script > 0);
        // Then a single update yields one delta and a small script.
        repo.apply(ChangeKind::Update, rec("B", "GGGGTT")).unwrap();
        let (deltas, script) = monitor.poll(&repo).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(script > 0);
        // Quiet poll.
        let (deltas, script) = monitor.poll(&repo).unwrap();
        assert!(deltas.is_empty());
        assert_eq!(script, 0);
        assert_eq!(monitor.polls(), 3);
    }

    #[test]
    fn dump_monitor_hierarchical() {
        let mut repo =
            SimulatedRepository::new("ace", Representation::Hierarchical, Capability::NonQueryable);
        let mut monitor = DumpMonitor::new();
        repo.apply(ChangeKind::Insert, rec("H1", "ATGGCC")).unwrap();
        let (deltas, _) = monitor.poll(&repo).unwrap();
        assert_eq!(deltas.len(), 1);
        repo.apply(ChangeKind::Update, rec("H1", "ATGGCCTT")).unwrap();
        repo.apply(ChangeKind::Insert, rec("H2", "TTTT")).unwrap();
        let (deltas, script) = monitor.poll(&repo).unwrap();
        assert_eq!(deltas.len(), 2);
        assert!(script > 0);
    }

    #[test]
    fn dump_monitor_relational_tsv() {
        let mut repo =
            SimulatedRepository::new("tsv", Representation::Relational, Capability::NonQueryable);
        let mut monitor = DumpMonitor::new();
        repo.apply(ChangeKind::Insert, rec("R1", "ACGT")).unwrap();
        let (deltas, _) = monitor.poll(&repo).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].after.as_ref().unwrap().sequence.to_text(), "ACGT");
    }
}
