//! Source monitors and change detection — the Figure 2 grid.
//!
//! "The type of change detection algorithm used by the source monitor
//! depends largely on the information source capability and the data
//! representation." [`pick_strategy`] encodes the figure verbatim
//! (including its N/A cells); [`effective_strategy`] substitutes the
//! nearest working technique for N/A cells so the warehouse can always
//! monitor a source.

pub mod lcs;
pub mod log;
pub mod poll;
pub mod snapshot;
pub mod treediff;
pub mod trigger;

use crate::source::{Capability, Representation};

/// A change-detection technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Relational triggers fire on change (active relational sources).
    DatabaseTrigger,
    /// Push notifications from a non-relational active source.
    ProgramTrigger,
    /// Read the source's own change log.
    InspectLog,
    /// Re-query and compute a keyed snapshot differential.
    SnapshotDifferential,
    /// Compute an edit sequence between successive hierarchical snapshots.
    EditSequence,
    /// Longest-common-subsequence line diff between flat-file dumps.
    LcsDiff,
}

/// Figure 2 verbatim: `None` is an N/A cell.
pub fn pick_strategy(capability: Capability, representation: Representation) -> Option<Strategy> {
    use Capability as C;
    use Representation as R;
    match (representation, capability) {
        (R::Hierarchical, C::Active) => Some(Strategy::ProgramTrigger),
        (R::Hierarchical, C::Logged) => Some(Strategy::InspectLog),
        (R::Hierarchical, C::Queryable) => Some(Strategy::EditSequence),
        (R::Hierarchical, C::NonQueryable) => Some(Strategy::EditSequence),
        (R::FlatFile, C::Active) => None,
        (R::FlatFile, C::Logged) => Some(Strategy::InspectLog),
        (R::FlatFile, C::Queryable) => None,
        (R::FlatFile, C::NonQueryable) => Some(Strategy::LcsDiff),
        (R::Relational, C::Active) => Some(Strategy::DatabaseTrigger),
        (R::Relational, C::Logged) => Some(Strategy::InspectLog),
        (R::Relational, C::Queryable) => Some(Strategy::SnapshotDifferential),
        (R::Relational, C::NonQueryable) => None,
    }
}

/// Always-working assignment: the figure's choice where defined, the
/// nearest applicable technique in the N/A cells.
pub fn effective_strategy(capability: Capability, representation: Representation) -> Strategy {
    pick_strategy(capability, representation).unwrap_or_else(|| {
        match (representation, capability) {
            (Representation::FlatFile, Capability::Active) => Strategy::ProgramTrigger,
            (Representation::FlatFile, Capability::Queryable) => Strategy::SnapshotDifferential,
            (Representation::Relational, Capability::NonQueryable) => {
                Strategy::SnapshotDifferential
            }
            _ => unreachable!("all N/A cells covered"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_grid() {
        use Capability as C;
        use Representation as R;
        assert_eq!(pick_strategy(C::Active, R::Relational), Some(Strategy::DatabaseTrigger));
        assert_eq!(pick_strategy(C::Active, R::Hierarchical), Some(Strategy::ProgramTrigger));
        assert_eq!(pick_strategy(C::Active, R::FlatFile), None);
        for r in [R::Relational, R::FlatFile, R::Hierarchical] {
            assert_eq!(pick_strategy(C::Logged, r), Some(Strategy::InspectLog));
        }
        assert_eq!(
            pick_strategy(C::Queryable, R::Relational),
            Some(Strategy::SnapshotDifferential)
        );
        assert_eq!(pick_strategy(C::Queryable, R::Hierarchical), Some(Strategy::EditSequence));
        assert_eq!(pick_strategy(C::NonQueryable, R::FlatFile), Some(Strategy::LcsDiff));
        assert_eq!(pick_strategy(C::NonQueryable, R::Hierarchical), Some(Strategy::EditSequence));
        assert_eq!(pick_strategy(C::NonQueryable, R::Relational), None);
    }

    #[test]
    fn effective_covers_every_cell() {
        use Capability as C;
        use Representation as R;
        for c in [C::Active, C::Logged, C::Queryable, C::NonQueryable] {
            for r in [R::Relational, R::FlatFile, R::Hierarchical] {
                let _ = effective_strategy(c, r); // must not panic
            }
        }
        assert_eq!(effective_strategy(C::Queryable, R::FlatFile), Strategy::SnapshotDifferential);
    }
}
