//! Longest-common-subsequence line diff — the UNIX-`diff` technique the
//! paper prescribes for non-queryable flat-file sources.

use crate::delta::Delta;
use crate::record::SeqRecord;
use genalg_core::error::Result;

/// One step of a line edit script (old → new).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEdit {
    /// Delete the line at this index of the *old* text.
    Delete(usize),
    /// Insert this text so that it lands at this index of the *new* text.
    Insert(usize, String),
}

/// Compute a minimal line edit script via dynamic-programming LCS.
pub fn diff_lines(old: &str, new: &str) -> Vec<LineEdit> {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let n = a.len();
    let m = b.len();
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] =
                if a[i] == b[j] { lcs[i + 1][j + 1] + 1 } else { lcs[i + 1][j].max(lcs[i][j + 1]) };
        }
    }
    let mut edits = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            edits.push(LineEdit::Delete(i));
            i += 1;
        } else {
            edits.push(LineEdit::Insert(j, b[j].to_string()));
            j += 1;
        }
    }
    while i < n {
        edits.push(LineEdit::Delete(i));
        i += 1;
    }
    while j < m {
        edits.push(LineEdit::Insert(j, b[j].to_string()));
        j += 1;
    }
    edits
}

/// Apply an edit script produced by [`diff_lines`] to `old`, reconstructing
/// the new text. Verifies the script's internal consistency.
pub fn apply_edits(old: &str, edits: &[LineEdit]) -> String {
    let a: Vec<&str> = old.lines().collect();
    let deleted: std::collections::HashSet<usize> = edits
        .iter()
        .filter_map(|e| match e {
            LineEdit::Delete(i) => Some(*i),
            LineEdit::Insert(_, _) => None,
        })
        .collect();
    let mut kept: Vec<String> = a
        .iter()
        .enumerate()
        .filter(|(i, _)| !deleted.contains(i))
        .map(|(_, l)| l.to_string())
        .collect();
    // Inserts carry their position in the *new* document; apply ascending.
    let mut inserts: Vec<(usize, &String)> = edits
        .iter()
        .filter_map(|e| match e {
            LineEdit::Insert(j, text) => Some((*j, text)),
            LineEdit::Delete(_) => None,
        })
        .collect();
    inserts.sort_by_key(|(j, _)| *j);
    for (j, text) in inserts {
        let at = j.min(kept.len());
        kept.insert(at, text.clone());
    }
    let mut out = kept.join("\n");
    // Terminate with a newline whenever any line exists — including a
    // single *empty* line, which would otherwise collapse into "".
    if !kept.is_empty() {
        out.push('\n');
    }
    out
}

/// Flat-file change detection for one monitoring round: LCS-diff the dumps
/// (the detector's cost), then re-parse both and emit record-level deltas.
/// Returns `(deltas, edit_script_length)`.
pub fn flatfile_deltas(
    old_dump: &str,
    new_dump: &str,
    parse: impl Fn(&str) -> Result<Vec<SeqRecord>>,
    next_id: &mut u64,
    timestamp: u64,
) -> Result<(Vec<Delta>, usize)> {
    let script = diff_lines(old_dump, new_dump);
    if script.is_empty() {
        return Ok((Vec::new(), 0));
    }
    let old = parse(old_dump)?;
    let new = parse(new_dump)?;
    let deltas = super::snapshot::snapshot_differential(&old, &new, next_id, timestamp);
    Ok((deltas, script.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::genbank;
    use crate::record::SeqRecord;
    use genalg_core::seq::DnaSeq;

    #[test]
    fn identical_texts_empty_script() {
        assert!(diff_lines("a\nb\n", "a\nb\n").is_empty());
    }

    #[test]
    fn simple_edits() {
        let edits = diff_lines("a\nb\nc\n", "a\nx\nc\n");
        assert_eq!(edits.len(), 2, "one delete + one insert: {edits:?}");
        assert_eq!(apply_edits("a\nb\nc\n", &edits), "a\nx\nc\n");
    }

    #[test]
    fn apply_reconstructs_arbitrary_cases() {
        let cases = [
            ("", "a\nb\n"),
            ("a\nb\n", ""),
            ("a\nb\nc\nd\n", "b\nc\nx\nd\ny\n"),
            ("line one\nline two\n", "line zero\nline one\nline two\nline three\n"),
            ("x\nx\nx\n", "x\nx\n"),
        ];
        for (old, new) in cases {
            let edits = diff_lines(old, new);
            assert_eq!(apply_edits(old, &edits), *new, "old={old:?} new={new:?}");
        }
    }

    #[test]
    fn script_is_minimal_for_single_change() {
        // 100 identical lines, one changed: script must be 2 edits, not 200.
        let old: String = (0..100).map(|i| format!("line {i}\n")).collect();
        let new = old.replace("line 50", "line fifty");
        let edits = diff_lines(&old, &new);
        assert_eq!(edits.len(), 2);
    }

    #[test]
    fn flatfile_deltas_via_genbank() {
        let a = SeqRecord::new("A", DnaSeq::from_text("ATGC").unwrap());
        let b = SeqRecord::new("B", DnaSeq::from_text("GGGG").unwrap());
        let b2 = SeqRecord::new("B", DnaSeq::from_text("GGGGTT").unwrap()).with_version(2);
        let old_dump = genbank::write(&[a.clone(), b]);
        let new_dump = genbank::write(&[a, b2]);
        let mut id = 1;
        let (deltas, script_len) =
            flatfile_deltas(&old_dump, &new_dump, genbank::parse, &mut id, 9).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].accession, "B");
        assert!(script_len > 0);
        // Quiet when nothing changed.
        let (deltas, script_len) =
            flatfile_deltas(&new_dump, &new_dump, genbank::parse, &mut id, 10).unwrap();
        assert!(deltas.is_empty());
        assert_eq!(script_len, 0);
    }
}
