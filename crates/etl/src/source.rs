//! Simulated genomic repositories.
//!
//! DESIGN.md substitution: real GenBank/EMBL/SWISS-PROT endpoints are
//! replaced by [`SimulatedRepository`], an in-process source whose
//! *capability* (active / logged / queryable / non-queryable) and *data
//! representation* (relational / flat file / hierarchical) are
//! configurable — exactly the two axes of the paper's Figure 2. A
//! configurable per-request latency stands in for the network, which is
//! what lets the mediator-vs-warehouse benchmark reproduce the Figure 1 /
//! Figure 3 comparison.

use crate::delta::{ChangeKind, Delta};
use crate::formats::{fasta, genbank, hier};
use crate::record::SeqRecord;
use crossbeam::channel::Sender;
use genalg_core::error::{GenAlgError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How a source's data is represented on the wire (Figure 2, ordinate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    Relational,
    FlatFile,
    Hierarchical,
}

/// What the source's management system can do (Figure 2, abscissa),
/// ordered by decreasing cooperation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    NonQueryable,
    Queryable,
    Logged,
    Active,
}

/// An in-process stand-in for a public genomic repository.
pub struct SimulatedRepository {
    name: String,
    representation: Representation,
    capability: Capability,
    records: BTreeMap<String, SeqRecord>,
    log: Vec<(u64, Delta)>,
    subscribers: Vec<Sender<Delta>>,
    next_delta: u64,
    clock: u64,
    latency: Duration,
    requests: AtomicU64,
    /// Probability that any external request fails transiently (network
    /// timeouts, rate limits). 0 = perfectly reliable.
    fail_rate: f64,
    /// Deterministic RNG state for failure injection (splitmix64).
    fail_rng: AtomicU64,
}

impl SimulatedRepository {
    /// An empty repository.
    pub fn new(name: &str, representation: Representation, capability: Capability) -> Self {
        SimulatedRepository {
            name: name.to_string(),
            representation,
            capability,
            records: BTreeMap::new(),
            log: Vec::new(),
            subscribers: Vec::new(),
            next_delta: 1,
            clock: 0,
            latency: Duration::ZERO,
            requests: AtomicU64::new(0),
            fail_rate: 0.0,
            fail_rng: AtomicU64::new(0),
        }
    }

    /// Configure a simulated per-request latency (builder style).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Make a fraction `rate` of external requests fail with
    /// [`GenAlgError::Transient`], deterministically from `seed` (builder
    /// style). Failed requests still count toward [`requests_served`], so
    /// retries are observable.
    ///
    /// [`requests_served`]: SimulatedRepository::requests_served
    pub fn with_transient_failures(mut self, rate: f64, seed: u64) -> Self {
        self.fail_rate = rate.clamp(0.0, 1.0);
        // A zero state would make splitmix emit a poor first value; mix the
        // seed so even seed 0 injects.
        self.fail_rng = AtomicU64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn representation(&self) -> Representation {
        self.representation
    }

    pub fn capability(&self) -> Capability {
        self.capability
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the repository holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// External requests served so far (snapshot / fetch / log reads).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Logical clock (advances on every mutation).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    fn charge(&self) -> Result<()> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        if self.fail_rate > 0.0 {
            // splitmix64 step on the shared state; deterministic across a
            // single-threaded monitor loop.
            let mut x = self.fail_rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            if ((x >> 11) as f64 / ((1u64 << 53) as f64)) < self.fail_rate {
                return Err(GenAlgError::Transient(format!(
                    "{}: request timed out (injected)",
                    self.name
                )));
            }
        }
        Ok(())
    }

    // -- mutation (the repository's own curators) -----------------------------

    /// Apply a change: insert, update, or delete by accession. Maintains
    /// the internal log and notifies active subscribers.
    pub fn apply(&mut self, kind: ChangeKind, record: SeqRecord) -> Result<Delta> {
        self.clock += 1;
        let accession = record.accession.clone();
        let before = self.records.get(&accession).cloned();
        let delta = match kind {
            ChangeKind::Insert => {
                if before.is_some() {
                    return Err(GenAlgError::Other(format!(
                        "{}: accession {accession} already exists",
                        self.name
                    )));
                }
                let mut rec = record;
                rec.source = self.name.clone();
                self.records.insert(accession.clone(), rec.clone());
                Delta::infer(self.next_delta, self.clock, None, Some(rec))
            }
            ChangeKind::Update => {
                let Some(before) = before else {
                    return Err(GenAlgError::Other(format!(
                        "{}: accession {accession} does not exist",
                        self.name
                    )));
                };
                let mut rec = record;
                rec.source = self.name.clone();
                rec.version = before.version + 1;
                self.records.insert(accession.clone(), rec.clone());
                Delta::infer(self.next_delta, self.clock, Some(before), Some(rec))
            }
            ChangeKind::Delete => {
                let Some(before) = before else {
                    return Err(GenAlgError::Other(format!(
                        "{}: accession {accession} does not exist",
                        self.name
                    )));
                };
                self.records.remove(&accession);
                Delta::infer(self.next_delta, self.clock, Some(before), None)
            }
        };
        self.next_delta += 1;
        self.log.push((delta.id, delta.clone()));
        if self.capability == Capability::Active {
            self.subscribers.retain(|tx| tx.send(delta.clone()).is_ok());
        }
        Ok(delta)
    }

    // -- external access (monitors/wrappers/mediator) ---------------------------

    /// Full dump in the source's native representation (the "periodic data
    /// dump" every source offers, even non-queryable ones).
    pub fn dump(&self) -> Result<String> {
        self.charge()?;
        let records: Vec<SeqRecord> = self.records.values().cloned().collect();
        Ok(match self.representation {
            Representation::FlatFile => genbank::write(&records),
            Representation::Hierarchical => hier::write(&hier::from_records(&records)),
            Representation::Relational => relational_dump(&records),
        })
    }

    /// The parsed view of the current contents (a wrapper's output).
    pub fn snapshot(&self) -> Result<Vec<SeqRecord>> {
        self.charge()?;
        Ok(self.records.values().cloned().collect())
    }

    /// Point query by accession; requires at least a queryable source.
    pub fn fetch(&self, accession: &str) -> Result<Option<SeqRecord>> {
        if self.capability < Capability::Queryable {
            return Err(GenAlgError::Other(format!(
                "{} is non-queryable; use its periodic dumps",
                self.name
            )));
        }
        self.charge()?;
        Ok(self.records.get(accession).cloned())
    }

    /// Read log entries with id greater than `since`; requires a logged
    /// source.
    pub fn read_log(&self, since: u64) -> Result<Vec<(u64, Delta)>> {
        if self.capability < Capability::Logged {
            return Err(GenAlgError::Other(format!("{} keeps no inspectable log", self.name)));
        }
        self.charge()?;
        Ok(self.log.iter().filter(|(id, _)| *id > since).cloned().collect())
    }

    /// Subscribe to push notifications; requires an active source.
    pub fn subscribe(&mut self, tx: Sender<Delta>) -> Result<()> {
        if self.capability != Capability::Active {
            return Err(GenAlgError::Other(format!("{} offers no push capability", self.name)));
        }
        self.subscribers.push(tx);
        Ok(())
    }

    /// FASTA export (some repositories only publish FASTA).
    pub fn dump_fasta(&self) -> Result<String> {
        self.charge()?;
        let records: Vec<SeqRecord> = self.records.values().cloned().collect();
        Ok(fasta::write(&records))
    }
}

/// Tab-separated dump for "relational" sources.
fn relational_dump(records: &[SeqRecord]) -> String {
    let mut out = String::from("accession\tversion\tdescription\torganism\tsequence\n");
    for r in records {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            r.accession,
            r.version,
            r.description,
            r.organism.as_deref().unwrap_or(""),
            r.sequence.to_text()
        ));
    }
    out
}

impl std::fmt::Debug for SimulatedRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedRepository")
            .field("name", &self.name)
            .field("representation", &self.representation)
            .field("capability", &self.capability)
            .field("records", &self.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::seq::DnaSeq;

    fn rec(acc: &str, seq: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap()).with_description("d")
    }

    #[test]
    fn apply_maintains_state_log_and_versions() {
        let mut repo =
            SimulatedRepository::new("genbank-sim", Representation::FlatFile, Capability::Logged);
        repo.apply(ChangeKind::Insert, rec("A1", "ATGC")).unwrap();
        repo.apply(ChangeKind::Insert, rec("A2", "GGGG")).unwrap();
        repo.apply(ChangeKind::Update, rec("A1", "ATGCAT")).unwrap();
        assert_eq!(repo.len(), 2);
        let snap = repo.snapshot().unwrap();
        let a1 = snap.iter().find(|r| r.accession == "A1").unwrap();
        assert_eq!(a1.version, 2, "update bumps the version");
        assert_eq!(a1.source, "genbank-sim");

        let log = repo.read_log(0).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(repo.read_log(2).unwrap().len(), 1);

        repo.apply(ChangeKind::Delete, rec("A2", "GGGG")).unwrap();
        assert_eq!(repo.len(), 1);
        assert!(repo.apply(ChangeKind::Delete, rec("A2", "GGGG")).is_err());
        assert!(repo.apply(ChangeKind::Insert, rec("A1", "AA")).is_err());
        assert!(repo.apply(ChangeKind::Update, rec("ZZ", "AA")).is_err());
    }

    #[test]
    fn capability_gating() {
        let mut nq = SimulatedRepository::new(
            "dump-only",
            Representation::FlatFile,
            Capability::NonQueryable,
        );
        nq.apply(ChangeKind::Insert, rec("A", "ACGT")).unwrap();
        assert!(nq.fetch("A").is_err());
        assert!(nq.read_log(0).is_err());
        let (tx, _rx) = crossbeam::channel::unbounded();
        assert!(nq.subscribe(tx).is_err());
        // But dumps work.
        assert!(nq.dump().unwrap().contains("ACGT".to_ascii_lowercase().as_str()));

        let q = SimulatedRepository::new("q", Representation::FlatFile, Capability::Queryable);
        assert!(q.fetch("A").unwrap().is_none());
        assert!(q.read_log(0).is_err());
    }

    #[test]
    fn active_sources_push() {
        let mut active =
            SimulatedRepository::new("push", Representation::Relational, Capability::Active);
        let (tx, rx) = crossbeam::channel::unbounded();
        active.subscribe(tx).unwrap();
        active.apply(ChangeKind::Insert, rec("P1", "ATAT")).unwrap();
        active.apply(ChangeKind::Update, rec("P1", "ATATAT")).unwrap();
        let received: Vec<Delta> = rx.try_iter().collect();
        assert_eq!(received.len(), 2);
        assert_eq!(received[0].kind, ChangeKind::Insert);
        assert_eq!(received[1].kind, ChangeKind::Update);
    }

    #[test]
    fn dumps_parse_back_by_representation() {
        for (repr, check) in [
            (Representation::FlatFile, "ACCESSION"),
            (Representation::Hierarchical, "Sequence"),
            (Representation::Relational, "accession\t"),
        ] {
            let mut repo = SimulatedRepository::new("r", repr, Capability::NonQueryable);
            repo.apply(ChangeKind::Insert, rec("D1", "ATGGCC")).unwrap();
            let dump = repo.dump().unwrap();
            assert!(dump.contains(check), "{repr:?} dump missing {check}: {dump}");
        }
        // Flat-file dumps re-parse through the GenBank wrapper.
        let mut repo =
            SimulatedRepository::new("r", Representation::FlatFile, Capability::NonQueryable);
        repo.apply(ChangeKind::Insert, rec("D1", "ATGGCC")).unwrap();
        let parsed = crate::formats::genbank::parse(&repo.dump().unwrap()).unwrap();
        assert_eq!(parsed[0].accession, "D1");
        // And FASTA export parses too.
        let parsed = crate::formats::fasta::parse(&repo.dump_fasta().unwrap()).unwrap();
        assert_eq!(parsed[0].sequence.to_text(), "ATGGCC");
    }

    #[test]
    fn request_accounting() {
        let mut repo =
            SimulatedRepository::new("r", Representation::FlatFile, Capability::Queryable);
        repo.apply(ChangeKind::Insert, rec("A", "ACGT")).unwrap();
        assert_eq!(repo.requests_served(), 0);
        let _ = repo.snapshot().unwrap();
        let _ = repo.fetch("A").unwrap();
        let _ = repo.dump().unwrap();
        assert_eq!(repo.requests_served(), 3);
        assert!(repo.clock() > 0);
    }

    #[test]
    fn transient_failures_are_deterministic_and_typed() {
        let mut repo =
            SimulatedRepository::new("flaky", Representation::FlatFile, Capability::Queryable)
                .with_transient_failures(0.5, 7);
        repo.apply(ChangeKind::Insert, rec("A", "ACGT")).unwrap();
        let outcomes: Vec<bool> = (0..40).map(|_| repo.snapshot().is_ok()).collect();
        let failures = outcomes.iter().filter(|ok| !**ok).count();
        assert!(failures > 5 && failures < 35, "rate 0.5 gave {failures}/40 failures");
        // Every failure is the typed, retryable error — and still billed.
        let repo2 =
            SimulatedRepository::new("flaky", Representation::FlatFile, Capability::Queryable)
                .with_transient_failures(1.0, 7);
        let err = repo2.snapshot().unwrap_err();
        assert!(err.is_transient(), "got {err:?}");
        assert_eq!(repo2.requests_served(), 1);
        // Same seed, same outcome sequence.
        let repo3 =
            SimulatedRepository::new("flaky", Representation::FlatFile, Capability::Queryable)
                .with_transient_failures(0.5, 7);
        let replay: Vec<bool> = (0..40).map(|_| repo3.snapshot().is_ok()).collect();
        assert_eq!(outcomes, replay);
    }
}
