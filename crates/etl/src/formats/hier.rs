//! A hierarchical (AceDB-like) representation: an indentation-structured
//! tree of named nodes, the "hierarchical data" column of Figure 2.
//!
//! ```text
//! Sequence "ACC00001"
//!   Version 2
//!   Description "synthetic demo locus"
//!   Organism "Examplia demonstrans"
//!   DNA "ATGGCC..."
//!   Feature gene "1..30"
//!     Qualifier gene "demoA"
//! ```

use crate::formats::location::{parse_location, render_location};
use crate::record::SeqRecord;
use genalg_core::error::{GenAlgError, Result};
use genalg_core::gdt::{Feature, FeatureKind};
use genalg_core::seq::DnaSeq;

/// A node of the hierarchical representation: a name, positional arguments
/// (possibly quoted), and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierNode {
    pub name: String,
    pub args: Vec<String>,
    pub children: Vec<HierNode>,
}

impl HierNode {
    /// A leaf node.
    pub fn leaf(name: &str, args: &[&str]) -> Self {
        HierNode {
            name: name.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
            children: Vec::new(),
        }
    }

    /// Add a child (builder style).
    pub fn with_child(mut self, child: HierNode) -> Self {
        self.children.push(child);
        self
    }

    /// First child with the given name.
    pub fn child(&self, name: &str) -> Option<&HierNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Total node count of the subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(HierNode::size).sum::<usize>()
    }
}

/// Parse indentation-structured text into a forest.
pub fn parse(text: &str) -> Result<Vec<HierNode>> {
    // (indent, node) stack-based parse; indent unit is two spaces.
    let mut roots: Vec<HierNode> = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (indent, path index into tree)

    fn node_at<'a>(roots: &'a mut [HierNode], path: &[usize]) -> &'a mut HierNode {
        let mut node = &mut roots[path[0]];
        for &i in &path[1..] {
            node = &mut node.children[i];
        }
        node
    }

    let mut path: Vec<usize> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let indent_spaces = raw.len() - raw.trim_start().len();
        if indent_spaces % 2 != 0 {
            return Err(GenAlgError::Other(format!("line {}: odd indentation", lineno + 1)));
        }
        let depth = indent_spaces / 2;
        let node = parse_node_line(raw.trim(), lineno)?;

        // Unwind to the parent depth.
        while stack.last().is_some_and(|(d, _)| *d >= depth) {
            stack.pop();
            path.pop();
        }
        if depth != stack.len() {
            return Err(GenAlgError::Other(format!(
                "line {}: indentation skips a level",
                lineno + 1
            )));
        }
        if depth == 0 {
            roots.push(node);
            path = vec![roots.len() - 1];
        } else {
            let parent = node_at(&mut roots, &path);
            parent.children.push(node);
            let idx = parent.children.len() - 1;
            path.push(idx);
        }
        stack.push((depth, 0));
    }
    Ok(roots)
}

fn parse_node_line(line: &str, lineno: usize) -> Result<HierNode> {
    let mut chars = line.chars().peekable();
    let mut tokens: Vec<String> = Vec::new();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(c) => s.push(c),
                    None => {
                        return Err(GenAlgError::Other(format!(
                            "line {}: unterminated quote",
                            lineno + 1
                        )))
                    }
                }
            }
            tokens.push(s);
        } else {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                s.push(c);
                chars.next();
            }
            tokens.push(s);
        }
    }
    if tokens.is_empty() {
        return Err(GenAlgError::Other(format!("line {}: empty node", lineno + 1)));
    }
    let name = tokens.remove(0);
    Ok(HierNode { name, args: tokens, children: Vec::new() })
}

/// Write a forest back to indentation-structured text.
pub fn write(nodes: &[HierNode]) -> String {
    let mut out = String::new();
    for n in nodes {
        write_node(n, 0, &mut out);
    }
    out
}

fn write_node(node: &HierNode, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&node.name);
    for a in &node.args {
        // Arguments are always quoted so the writer/parser pair stays total.
        out.push(' ');
        out.push('"');
        out.push_str(a);
        out.push('"');
    }
    out.push('\n');
    for c in &node.children {
        write_node(c, depth + 1, out);
    }
}

/// Convert records to the hierarchical representation.
pub fn from_records(records: &[SeqRecord]) -> Vec<HierNode> {
    records
        .iter()
        .map(|r| {
            let mut node = HierNode::leaf("Sequence", &[&r.accession])
                .with_child(HierNode::leaf("Version", &[&r.version.to_string()]))
                .with_child(HierNode::leaf("Description", &[&r.description]));
            if let Some(org) = &r.organism {
                node = node.with_child(HierNode::leaf("Organism", &[org]));
            }
            node = node.with_child(HierNode::leaf("DNA", &[&r.sequence.to_text()]));
            for f in &r.features {
                let mut fnode =
                    HierNode::leaf("Feature", &[f.kind.key(), &render_location(&f.location)]);
                for (k, v) in f.qualifiers() {
                    fnode = fnode.with_child(HierNode::leaf("Qualifier", &[k, v]));
                }
                node = node.with_child(fnode);
            }
            node
        })
        .collect()
}

/// Convert the hierarchical representation back to records.
pub fn to_records(nodes: &[HierNode]) -> Result<Vec<SeqRecord>> {
    let mut out = Vec::new();
    for n in nodes {
        if n.name != "Sequence" {
            return Err(GenAlgError::Other(format!("unexpected root node {:?}", n.name)));
        }
        let accession = n
            .args
            .first()
            .ok_or_else(|| GenAlgError::Other("Sequence node without accession".into()))?
            .clone();
        let version = n.child("Version").and_then(|c| c.args.first()).map_or(Ok(1), |v| {
            v.parse().map_err(|_| GenAlgError::Other(format!("bad version {v:?}")))
        })?;
        let description =
            n.child("Description").and_then(|c| c.args.first()).cloned().unwrap_or_default();
        let organism = n.child("Organism").and_then(|c| c.args.first()).cloned();
        let dna = n
            .child("DNA")
            .and_then(|c| c.args.first())
            .ok_or_else(|| GenAlgError::Other(format!("Sequence {accession} has no DNA node")))?;
        let mut features = Vec::new();
        for c in n.children.iter().filter(|c| c.name == "Feature") {
            let key = c
                .args
                .first()
                .ok_or_else(|| GenAlgError::Other("Feature node without kind".into()))?;
            let loc = c
                .args
                .get(1)
                .ok_or_else(|| GenAlgError::Other("Feature node without location".into()))?;
            let mut f = Feature::new(FeatureKind::from_key(key), parse_location(loc)?);
            for q in c.children.iter().filter(|q| q.name == "Qualifier") {
                let k = q.args.first().cloned().unwrap_or_default();
                let v = q.args.get(1).cloned().unwrap_or_default();
                f = f.with_qualifier(&k, &v);
            }
            features.push(f);
        }
        out.push(SeqRecord {
            accession,
            version,
            description,
            organism,
            sequence: DnaSeq::from_text(dna)?,
            features,
            source: String::new(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::alphabet::Strand;
    use genalg_core::gdt::{Interval, Location};

    fn sample() -> SeqRecord {
        SeqRecord::new("H1", DnaSeq::from_text("ATGGCCTTTAAG").unwrap())
            .with_description("hierarchical demo")
            .with_organism("Caenorhabditis elegans")
            .with_version(4)
            .with_feature(
                Feature::new(
                    FeatureKind::Gene,
                    Location::simple(Interval::new(0, 12).unwrap(), Strand::Forward),
                )
                .with_qualifier("gene", "h-1"),
            )
    }

    #[test]
    fn tree_parse_and_write_roundtrip() {
        let tree = from_records(&[sample()]);
        let text = write(&tree);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, tree);
    }

    #[test]
    fn record_roundtrip() {
        let rec = sample();
        let recs = to_records(&from_records(std::slice::from_ref(&rec))).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].same_content(&rec), "{:#?}", recs[0]);
    }

    #[test]
    fn full_text_roundtrip() {
        let rec = sample();
        let text = write(&from_records(std::slice::from_ref(&rec)));
        let back = to_records(&parse(&text).unwrap()).unwrap();
        assert!(back[0].same_content(&rec));
    }

    #[test]
    fn structure_queries() {
        let tree = from_records(&[sample()]);
        let root = &tree[0];
        assert_eq!(root.name, "Sequence");
        assert!(root.child("DNA").is_some());
        assert!(root.size() > 5);
    }

    #[test]
    fn parse_errors() {
        assert!(parse(" Oops\n").is_err(), "odd indent");
        assert!(parse("A\n    B\n").is_err(), "skipped level");
        assert!(parse("A \"unterminated\n").is_err());
        assert!(to_records(&[HierNode::leaf("Wrong", &[])]).is_err());
        assert!(to_records(&[HierNode::leaf("Sequence", &["X"])]).is_err(), "no DNA");
    }

    #[test]
    fn quoted_args_preserved() {
        let n = HierNode::leaf("Description", &["two words here"]);
        let text = write(std::slice::from_ref(&n));
        let back = parse(&text).unwrap();
        assert_eq!(back[0], n);
    }
}
