//! GenBank/EMBL feature-location syntax: `start..end`,
//! `join(a..b,c..d)`, `complement(...)` — 1-based inclusive coordinates on
//! the wire, 0-based half-open [`Interval`]s in memory.

use genalg_core::alphabet::Strand;
use genalg_core::error::{GenAlgError, Result};
use genalg_core::gdt::{Interval, Location};

/// Parse a feature location.
pub fn parse_location(text: &str) -> Result<Location> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix("complement(").and_then(|t| t.strip_suffix(')')) {
        let fwd = parse_location(inner)?;
        return Location::join(fwd.segments().to_vec(), Strand::Reverse);
    }
    if let Some(inner) = text.strip_prefix("join(").and_then(|t| t.strip_suffix(')')) {
        let mut intervals = Vec::new();
        for part in inner.split(',') {
            intervals.push(parse_span(part)?);
        }
        return Location::join(intervals, Strand::Forward);
    }
    Ok(Location::simple(parse_span(text)?, Strand::Forward))
}

fn parse_span(text: &str) -> Result<Interval> {
    let text = text.trim();
    let (a, b) = match text.split_once("..") {
        Some((a, b)) => (a, b),
        None => (text, text), // single-position feature
    };
    let start: usize =
        a.trim().parse().map_err(|_| GenAlgError::Other(format!("bad location start {a:?}")))?;
    let end: usize =
        b.trim().parse().map_err(|_| GenAlgError::Other(format!("bad location end {b:?}")))?;
    if start == 0 {
        return Err(GenAlgError::Other("locations are 1-based".into()));
    }
    // 1-based inclusive → 0-based half-open.
    Interval::new(start - 1, end)
}

/// Render a location back to the wire syntax.
pub fn render_location(loc: &Location) -> String {
    let spans: Vec<String> = loc
        .segments()
        .iter()
        .map(|iv| {
            if iv.len() == 1 {
                format!("{}", iv.start + 1)
            } else {
                format!("{}..{}", iv.start + 1, iv.end)
            }
        })
        .collect();
    let inner = if spans.len() == 1 {
        spans.into_iter().next().expect("one span")
    } else {
        format!("join({})", spans.join(","))
    };
    match loc.strand() {
        Strand::Forward => inner,
        Strand::Reverse => format!("complement({inner})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_span() {
        let loc = parse_location("3..9").unwrap();
        assert_eq!(loc.segments(), &[Interval::new(2, 9).unwrap()]);
        assert_eq!(loc.strand(), Strand::Forward);
        assert_eq!(render_location(&loc), "3..9");
    }

    #[test]
    fn single_position() {
        let loc = parse_location("5").unwrap();
        assert_eq!(loc.segments(), &[Interval::new(4, 5).unwrap()]);
        assert_eq!(render_location(&loc), "5");
    }

    #[test]
    fn join_and_complement() {
        let loc = parse_location("join(1..10,15..24)").unwrap();
        assert_eq!(loc.segments().len(), 2);
        assert_eq!(render_location(&loc), "join(1..10,15..24)");

        let loc = parse_location("complement(3..9)").unwrap();
        assert_eq!(loc.strand(), Strand::Reverse);
        assert_eq!(render_location(&loc), "complement(3..9)");

        let loc = parse_location("complement(join(1..4,8..12))").unwrap();
        assert_eq!(loc.strand(), Strand::Reverse);
        assert_eq!(loc.segments().len(), 2);
        assert_eq!(render_location(&loc), "complement(join(1..4,8..12))");
    }

    #[test]
    fn errors() {
        assert!(parse_location("0..5").is_err(), "1-based coordinates");
        assert!(parse_location("x..y").is_err());
        assert!(parse_location("9..3").is_err(), "inverted span");
        assert!(parse_location("join(1..5,3..9)").is_err(), "overlapping join");
    }

    #[test]
    fn roundtrip_many() {
        for text in ["1..1000", "join(1..10,20..30,40..50)", "complement(7..9)", "42"] {
            let loc = parse_location(text).unwrap();
            assert_eq!(render_location(&loc), text);
        }
    }
}
