//! Source wrappers: parsers and writers for the repository formats.
//!
//! Each wrapper extracts "relevant new or changed data from the sources"
//! and restructures the data into the corresponding types provided by the
//! Genomics Algebra (§5.1). All four formats round-trip: a record written
//! and re-parsed compares equal, which the property tests verify.

pub mod embl;
pub mod fasta;
pub mod genbank;
pub mod hier;

mod location;

pub use location::{parse_location, render_location};
