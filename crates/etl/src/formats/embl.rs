//! EMBL-style flat-file wrapper (two-letter line codes).

use crate::formats::location::{parse_location, render_location};
use crate::record::SeqRecord;
use genalg_core::error::{GenAlgError, Result};
use genalg_core::gdt::{Feature, FeatureKind};
use genalg_core::seq::DnaSeq;

/// An in-progress feature while parsing: (key, location text, qualifiers).
type PendingFeature = Option<(String, String, Vec<(String, String)>)>;

/// Parse an EMBL flat file (possibly many records).
pub fn parse(text: &str) -> Result<Vec<SeqRecord>> {
    let mut records = Vec::new();
    let mut lines: Vec<&str> = Vec::new();
    for line in text.lines() {
        if line.trim_end() == "//" {
            if !lines.is_empty() {
                records.push(parse_one(&lines)?);
                lines.clear();
            }
        } else {
            lines.push(line);
        }
    }
    if !lines.iter().all(|l| l.trim().is_empty()) {
        records.push(parse_one(&lines)?);
    }
    Ok(records)
}

fn parse_one(lines: &[&str]) -> Result<SeqRecord> {
    let mut accession = String::new();
    let mut version = 1u32;
    let mut description = String::new();
    let mut organism = None;
    let mut features: Vec<Feature> = Vec::new();
    let mut sequence = String::new();
    let mut pending: PendingFeature = None;
    let mut in_sq = false;

    let flush = |pending: &mut PendingFeature, features: &mut Vec<Feature>| -> Result<()> {
        if let Some((key, loc, quals)) = pending.take() {
            let mut f = Feature::new(FeatureKind::from_key(&key), parse_location(&loc)?);
            for (k, v) in quals {
                f = f.with_qualifier(&k, &v);
            }
            features.push(f);
        }
        Ok(())
    };

    for line in lines {
        if in_sq {
            for token in line.split_whitespace() {
                if !token.chars().all(|c| c.is_ascii_digit()) {
                    sequence.push_str(token);
                }
            }
            continue;
        }
        let code = line.get(..2).unwrap_or("").trim();
        let body = line.get(5..).unwrap_or("").trim_end();
        match code {
            "ID" => {
                // ID   ACC; SV n; linear; DNA
                for part in body.split(';') {
                    let part = part.trim();
                    if let Some(v) = part.strip_prefix("SV ") {
                        version = v
                            .trim()
                            .parse()
                            .map_err(|_| GenAlgError::Other(format!("bad SV field {v:?}")))?;
                    }
                }
            }
            "AC" => accession = body.trim_end_matches(';').trim().to_string(),
            "DE" => {
                if !description.is_empty() {
                    description.push(' ');
                }
                description.push_str(body.trim());
            }
            "OS" => organism = Some(body.trim().to_string()),
            "FT" => {
                let trimmed = body.trim_start();
                if trimmed.starts_with('/') {
                    let q = trimmed.trim_start_matches('/');
                    let (k, v) = q.split_once('=').unwrap_or((q, ""));
                    if let Some((_, _, quals)) = pending.as_mut() {
                        quals.push((k.to_string(), v.trim_matches('"').to_string()));
                    }
                } else if !body.starts_with(' ') && !trimmed.is_empty() {
                    flush(&mut pending, &mut features)?;
                    let mut parts = trimmed.split_whitespace();
                    let key =
                        parts.next().ok_or_else(|| GenAlgError::Other("empty FT line".into()))?;
                    let loc: String = parts.collect::<Vec<_>>().join("");
                    pending = Some((key.to_string(), loc, Vec::new()));
                } else if let Some((_, loc, _)) = pending.as_mut() {
                    loc.push_str(trimmed);
                }
            }
            "SQ" => {
                flush(&mut pending, &mut features)?;
                in_sq = true;
            }
            _ => {}
        }
    }
    flush(&mut pending, &mut features)?;
    if accession.is_empty() {
        return Err(GenAlgError::Other("EMBL record without AC line".into()));
    }
    Ok(SeqRecord {
        accession,
        version,
        description,
        organism,
        sequence: DnaSeq::from_text(&sequence)?,
        features,
        source: String::new(),
    })
}

/// Write records in EMBL style.
pub fn write(records: &[SeqRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "ID   {}; SV {}; linear; DNA; {} BP.\n",
            r.accession,
            r.version,
            r.sequence.len()
        ));
        out.push_str(&format!("AC   {};\n", r.accession));
        if !r.description.is_empty() {
            out.push_str(&format!("DE   {}\n", r.description));
        }
        if let Some(org) = &r.organism {
            out.push_str(&format!("OS   {org}\n"));
        }
        for f in &r.features {
            out.push_str(&format!("FT   {:<16}{}\n", f.kind.key(), render_location(&f.location)));
            for (k, v) in f.qualifiers() {
                out.push_str(&format!("FT                   /{k}=\"{v}\"\n"));
            }
        }
        out.push_str(&format!("SQ   Sequence {} BP;\n", r.sequence.len()));
        let text = r.sequence.to_text().to_ascii_lowercase();
        for chunk in text.as_bytes().chunks(60) {
            out.push_str("     ");
            for ten in chunk.chunks(10) {
                out.push_str(std::str::from_utf8(ten).expect("ASCII"));
                out.push(' ');
            }
            out.push('\n');
        }
        out.push_str("//\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::alphabet::Strand;
    use genalg_core::gdt::{Interval, Location};

    fn sample() -> SeqRecord {
        SeqRecord::new("EM00042", DnaSeq::from_text("ATGGCCTTTAAGTTTCACTGA").unwrap())
            .with_description("an EMBL style entry")
            .with_organism("Saccharomyces cerevisiae")
            .with_version(2)
            .with_feature(
                Feature::new(
                    FeatureKind::Cds,
                    Location::simple(Interval::new(0, 21).unwrap(), Strand::Forward),
                )
                .with_qualifier("product", "demo"),
            )
    }

    #[test]
    fn roundtrip() {
        let rec = sample();
        let text = write(std::slice::from_ref(&rec));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].same_content(&rec), "{:#?}", parsed[0]);
    }

    #[test]
    fn multi_record_roundtrip() {
        let a = sample();
        let b = SeqRecord::new("EM00043", DnaSeq::from_text("GGGG").unwrap());
        let parsed = parse(&write(&[a.clone(), b.clone()])).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].same_content(&a));
        assert!(parsed[1].same_content(&b));
    }

    #[test]
    fn parses_reference_text() {
        let text = "ID   Z999; SV 5; linear; DNA; 8 BP.\n\
                    AC   Z999;\n\
                    DE   two line\n\
                    DE   description\n\
                    OS   Mus musculus\n\
                    FT   gene            1..8\n\
                    FT                   /gene=\"tiny\"\n\
                    SQ   Sequence 8 BP;\n\
                    \x20    atggcctt\n\
                    //\n";
        let recs = parse(text).unwrap();
        assert_eq!(recs[0].accession, "Z999");
        assert_eq!(recs[0].version, 5);
        assert_eq!(recs[0].description, "two line description");
        assert_eq!(recs[0].features[0].qualifier("gene"), Some("tiny"));
        assert_eq!(recs[0].sequence.to_text(), "ATGGCCTT");
    }

    #[test]
    fn missing_ac_is_error() {
        assert!(parse("ID   X; SV 1;\nSQ   Sequence 4 BP;\n     atgc\n//\n").is_err());
    }
}
