//! GenBank-style flat-file wrapper.
//!
//! Implements the structural core of the GenBank format: `LOCUS`,
//! `DEFINITION`, `ACCESSION`, `VERSION`, `SOURCE`, a `FEATURES` table with
//! locations and `/key="value"` qualifiers, an `ORIGIN` sequence block, and
//! the `//` record terminator.

use crate::formats::location::{parse_location, render_location};
use crate::record::SeqRecord;
use genalg_core::error::{GenAlgError, Result};
use genalg_core::gdt::{Feature, FeatureKind};
use genalg_core::seq::DnaSeq;

/// An in-progress feature while parsing: (key, location text, qualifiers).
type PendingFeature = Option<(String, String, Vec<(String, String)>)>;

/// Parse a GenBank flat file (possibly many records).
pub fn parse(text: &str) -> Result<Vec<SeqRecord>> {
    let mut records = Vec::new();
    for chunk in split_records(text) {
        if !chunk.trim().is_empty() {
            records.push(parse_one(&chunk)?);
        }
    }
    Ok(records)
}

fn split_records(text: &str) -> Vec<String> {
    let mut chunks = Vec::new();
    let mut current = String::new();
    for line in text.lines() {
        if line.trim_end() == "//" {
            chunks.push(std::mem::take(&mut current));
        } else {
            current.push_str(line);
            current.push('\n');
        }
    }
    if !current.trim().is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_one(chunk: &str) -> Result<SeqRecord> {
    let mut accession = String::new();
    let mut version = 1u32;
    let mut description = String::new();
    let mut organism = None;
    let mut features: Vec<Feature> = Vec::new();
    let mut sequence = String::new();

    #[derive(PartialEq)]
    enum Section {
        Header,
        Features,
        Origin,
    }
    let mut section = Section::Header;
    // In-progress feature: (key, location text, qualifiers).
    let mut pending: PendingFeature = None;

    let flush = |pending: &mut PendingFeature, features: &mut Vec<Feature>| -> Result<()> {
        if let Some((key, loc, quals)) = pending.take() {
            let location = parse_location(&loc)?;
            let mut f = Feature::new(FeatureKind::from_key(&key), location);
            for (k, v) in quals {
                f = f.with_qualifier(&k, &v);
            }
            features.push(f);
        }
        Ok(())
    };

    for line in chunk.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let keyword = line.get(..12).unwrap_or(line).trim();
        match section {
            Section::Header => match keyword {
                "LOCUS" => { /* informational; accession is authoritative */ }
                "DEFINITION" => description = line[12..].trim().trim_end_matches('.').to_string(),
                "ACCESSION" => accession = line[12..].trim().to_string(),
                "VERSION" => {
                    let v = line[12..].trim();
                    if let Some((_, n)) = v.rsplit_once('.') {
                        version = n
                            .parse()
                            .map_err(|_| GenAlgError::Other(format!("bad VERSION line {v:?}")))?;
                    }
                }
                "SOURCE" => organism = Some(line[12..].trim().to_string()),
                "FEATURES" => section = Section::Features,
                "ORIGIN" => section = Section::Origin,
                _ => {}
            },
            Section::Features => {
                if keyword == "ORIGIN" {
                    flush(&mut pending, &mut features)?;
                    section = Section::Origin;
                    continue;
                }
                let body = line.get(5..).unwrap_or("").trim_end();
                let trimmed = body.trim_start();
                if trimmed.starts_with('/') {
                    // Qualifier line: /key="value" or /key=value.
                    let q = trimmed.trim_start_matches('/');
                    let (k, v) = q.split_once('=').unwrap_or((q, ""));
                    let v = v.trim_matches('"').to_string();
                    if let Some((_, _, quals)) = pending.as_mut() {
                        quals.push((k.to_string(), v));
                    }
                } else if !body.starts_with(' ') && !trimmed.is_empty() {
                    // New feature line: key then location.
                    flush(&mut pending, &mut features)?;
                    let mut parts = trimmed.split_whitespace();
                    let key = parts
                        .next()
                        .ok_or_else(|| GenAlgError::Other("empty feature line".into()))?;
                    let loc: String = parts.collect::<Vec<_>>().join("");
                    pending = Some((key.to_string(), loc, Vec::new()));
                } else if let Some((_, loc, _)) = pending.as_mut() {
                    // Location continuation.
                    loc.push_str(trimmed);
                }
            }
            Section::Origin => {
                for token in line.split_whitespace() {
                    if token.chars().all(|c| c.is_ascii_digit()) {
                        continue;
                    }
                    sequence.push_str(token);
                }
            }
        }
    }
    flush(&mut pending, &mut features)?;
    if accession.is_empty() {
        return Err(GenAlgError::Other("GenBank record without ACCESSION".into()));
    }
    Ok(SeqRecord {
        accession,
        version,
        description,
        organism,
        sequence: DnaSeq::from_text(&sequence)?,
        features,
        source: String::new(),
    })
}

/// Write records in GenBank style.
pub fn write(records: &[SeqRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!("LOCUS       {:<16} {} bp    DNA\n", r.accession, r.sequence.len()));
        if !r.description.is_empty() {
            out.push_str(&format!("DEFINITION  {}.\n", r.description));
        }
        out.push_str(&format!("ACCESSION   {}\n", r.accession));
        out.push_str(&format!("VERSION     {}.{}\n", r.accession, r.version));
        if let Some(org) = &r.organism {
            out.push_str(&format!("SOURCE      {org}\n"));
        }
        if !r.features.is_empty() {
            out.push_str("FEATURES             Location/Qualifiers\n");
            for f in &r.features {
                out.push_str(&format!(
                    "     {:<16}{}\n",
                    f.kind.key(),
                    render_location(&f.location)
                ));
                for (k, v) in f.qualifiers() {
                    out.push_str(&format!("                     /{k}=\"{v}\"\n"));
                }
            }
        }
        out.push_str("ORIGIN\n");
        let text = r.sequence.to_text().to_ascii_lowercase();
        for (i, line_chunk) in text.as_bytes().chunks(60).enumerate() {
            out.push_str(&format!("{:>9}", i * 60 + 1));
            for ten in line_chunk.chunks(10) {
                out.push(' ');
                out.push_str(std::str::from_utf8(ten).expect("ASCII"));
            }
            out.push('\n');
        }
        out.push_str("//\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::alphabet::Strand;
    use genalg_core::gdt::{Interval, Location};

    fn sample() -> SeqRecord {
        SeqRecord::new("ACC00001", DnaSeq::from_text("ATGGCCTTTAAGGTAACCGGGTTTCACTGAATGC").unwrap())
            .with_description("synthetic demo locus")
            .with_organism("Examplia demonstrans")
            .with_version(3)
            .with_feature(
                Feature::new(
                    FeatureKind::Gene,
                    Location::simple(Interval::new(0, 30).unwrap(), Strand::Forward),
                )
                .with_qualifier("gene", "demoA"),
            )
            .with_feature(
                Feature::new(
                    FeatureKind::Cds,
                    Location::join(
                        vec![Interval::new(0, 12).unwrap(), Interval::new(21, 30).unwrap()],
                        Strand::Forward,
                    )
                    .unwrap(),
                )
                .with_qualifier("product", "demo protein")
                .with_qualifier("codon_start", "1"),
            )
    }

    #[test]
    fn roundtrip_single() {
        let rec = sample();
        let text = write(std::slice::from_ref(&rec));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].same_content(&rec), "parsed:\n{:#?}\noriginal:\n{rec:#?}", parsed[0]);
    }

    #[test]
    fn roundtrip_multiple_records() {
        let a = sample();
        let b = SeqRecord::new("ACC00002", DnaSeq::from_text("TTTT").unwrap())
            .with_description("second");
        let text = write(&[a.clone(), b.clone()]);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].same_content(&a));
        assert!(parsed[1].same_content(&b));
    }

    #[test]
    fn parses_reference_text() {
        let text = "LOCUS       X123        10 bp    DNA\n\
                    DEFINITION  hand-written entry.\n\
                    ACCESSION   X123\n\
                    VERSION     X123.7\n\
                    SOURCE      Homo sapiens\n\
                    FEATURES             Location/Qualifiers\n\
                    \x20    CDS             complement(join(1..4,7..10))\n\
                    \x20                    /product=\"reverse thing\"\n\
                    ORIGIN\n\
                    \x20       1 atggccttta\n\
                    //\n";
        let recs = parse(text).unwrap();
        assert_eq!(recs[0].accession, "X123");
        assert_eq!(recs[0].version, 7);
        assert_eq!(recs[0].organism.as_deref(), Some("Homo sapiens"));
        assert_eq!(recs[0].sequence.to_text(), "ATGGCCTTTA");
        assert_eq!(recs[0].features.len(), 1);
        assert_eq!(recs[0].features[0].location.strand(), Strand::Reverse);
        assert_eq!(recs[0].features[0].qualifier("product"), Some("reverse thing"));
    }

    #[test]
    fn missing_accession_is_error() {
        assert!(parse("LOCUS  x\nORIGIN\n 1 atgc\n//\n").is_err());
    }

    #[test]
    fn sixty_column_origin_blocks() {
        let rec = SeqRecord::new("L", DnaSeq::from_text(&"ACGT".repeat(40)).unwrap());
        let text = write(std::slice::from_ref(&rec));
        // 160 nt → 3 ORIGIN lines.
        let origin_lines =
            text.lines().filter(|l| l.starts_with("    ") || l.starts_with("  ")).count();
        assert!(origin_lines >= 3);
        assert_eq!(parse(&text).unwrap()[0].sequence, rec.sequence);
    }
}
