//! FASTA: the simplest flat-file wrapper.

use crate::record::SeqRecord;
use genalg_core::error::{GenAlgError, Result};
use genalg_core::seq::DnaSeq;

/// Parse FASTA text into records. The header line is
/// `>accession description…`; sequence lines are concatenated.
pub fn parse(text: &str) -> Result<Vec<SeqRecord>> {
    let mut records = Vec::new();
    let mut header: Option<(String, String)> = None;
    let mut seq = String::new();
    for line in text.lines() {
        let line = line.trim_end();
        if let Some(h) = line.strip_prefix('>') {
            if let Some((acc, desc)) = header.take() {
                records.push(make_record(acc, desc, &seq)?);
                seq.clear();
            }
            let mut parts = h.splitn(2, char::is_whitespace);
            let acc = parts
                .next()
                .filter(|a| !a.is_empty())
                .ok_or_else(|| GenAlgError::Other("FASTA header without accession".into()))?;
            let desc = parts.next().unwrap_or("").trim().to_string();
            header = Some((acc.to_string(), desc));
        } else if !line.is_empty() {
            if header.is_none() {
                return Err(GenAlgError::Other("sequence data before any FASTA header".into()));
            }
            seq.push_str(line.trim());
        }
    }
    if let Some((acc, desc)) = header {
        records.push(make_record(acc, desc, &seq)?);
    }
    Ok(records)
}

fn make_record(accession: String, description: String, seq: &str) -> Result<SeqRecord> {
    Ok(SeqRecord {
        accession,
        version: 1,
        description,
        organism: None,
        sequence: DnaSeq::from_text(seq)?,
        features: Vec::new(),
        source: String::new(),
    })
}

/// Write records as FASTA, wrapping sequence lines at 60 columns.
pub fn write(records: &[SeqRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push('>');
        out.push_str(&r.accession);
        if !r.description.is_empty() {
            out.push(' ');
            out.push_str(&r.description);
        }
        out.push('\n');
        let text = r.sequence.to_text();
        for chunk in text.as_bytes().chunks(60) {
            out.push_str(std::str::from_utf8(chunk).expect("sequence text is ASCII"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let text = ">X1 first entry\nATGGCC\nTTTAAG\n>X2\nACGT\n";
        let recs = parse(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].accession, "X1");
        assert_eq!(recs[0].description, "first entry");
        assert_eq!(recs[0].sequence.to_text(), "ATGGCCTTTAAG");
        assert_eq!(recs[1].accession, "X2");
        assert!(recs[1].description.is_empty());
    }

    #[test]
    fn roundtrip() {
        let text = ">A1 alpha\nATGGCCTTTAAGN\n>B2 beta entry\nACGTRY\n";
        let recs = parse(text).unwrap();
        let rewritten = write(&recs);
        assert_eq!(parse(&rewritten).unwrap(), recs);
    }

    #[test]
    fn long_sequences_wrap() {
        let rec = SeqRecord::new("L1", DnaSeq::from_text(&"A".repeat(150)).unwrap());
        let text = write(std::slice::from_ref(&rec));
        assert!(text.lines().count() >= 4);
        assert_eq!(parse(&text).unwrap()[0].sequence, rec.sequence);
    }

    #[test]
    fn errors() {
        assert!(parse("ATGC\n").is_err(), "sequence before header");
        assert!(parse("> \nATGC\n").is_err(), "empty accession");
        assert!(parse(">X1\nATGJ\n").is_err(), "bad symbol");
        assert!(parse("").unwrap().is_empty());
    }
}
