//! Warehouse orchestration: sources, monitors, incremental refresh.
//!
//! §5.2's maintenance model: the warehouse refreshes on demand ("a manual
//! refresh option … allows the biologist to defer or advance updates") and
//! *incrementally* — refresh consumes source deltas plus the warehouse's
//! own staging state, never a full source reload (self-maintainability).
//! [`Warehouse::full_reload`] is the expensive alternative, kept for the
//! architecture benchmark.

use crate::delta::Delta;
use crate::integrate::{reconcile, ReconciledEntry, TrustModel};
use crate::loader::Loader;
use crate::monitor::log::LogMonitor;
use crate::monitor::poll::{DumpMonitor, PollMonitor};
use crate::monitor::trigger::TriggerMonitor;
use crate::monitor::{effective_strategy, Strategy};
use crate::record::SeqRecord;
use crate::source::SimulatedRepository;
use genalg_adapter::Adapter;
use genalg_core::error::{GenAlgError, Result};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use unidb::Database;

enum MonitorKind {
    Trigger(TriggerMonitor),
    Log(LogMonitor),
    Poll(PollMonitor),
    Dump(DumpMonitor),
}

struct SourceEntry {
    repo: SimulatedRepository,
    monitor: MonitorKind,
    strategy: Strategy,
}

/// Bounded-backoff retry policy for talking to flaky sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per source per refresh (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub base_backoff: std::time::Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: std::time::Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
        }
    }

    /// Backoff before the given (1-based) retry attempt.
    fn backoff(&self, attempt: u32) -> std::time::Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        exp.min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms → 2 ms backoff — enough to ride out injected
    /// transients in tests without slowing a healthy refresh measurably.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(20),
        }
    }
}

/// Outcome of one refresh round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefreshReport {
    /// Deltas collected across all sources.
    pub deltas: usize,
    /// Entities re-reconciled and upserted.
    pub upserted: usize,
    /// Entities removed entirely.
    pub deleted: usize,
    /// Sources whose monitor still failed after all retry attempts. Their
    /// pending changes are *not* lost: each monitor keeps its cursor /
    /// snapshot, so the next refresh picks them up.
    pub failed_sources: Vec<String>,
}

/// The Unifying Database plus its ETL machinery.
pub struct Warehouse {
    db: Database,
    adapter: Adapter,
    trust: TrustModel,
    sources: Vec<SourceEntry>,
    /// Incrementally maintained mirror of source contents, keyed by
    /// `(accession, source)` — what makes refresh self-maintaining.
    staging: HashMap<(String, String), SeqRecord>,
}

impl Warehouse {
    /// A fresh in-memory warehouse with the Genomics Algebra installed and
    /// the public schema created.
    pub fn new() -> Result<Self> {
        Self::with_db(Database::in_memory())
    }

    /// A durable warehouse in `dir` (snapshot + WAL recovery). Loaded data
    /// is immediately queryable after reopening; to resume *incremental*
    /// maintenance, re-register the sources and run [`Warehouse::full_reload`]
    /// once to rebuild the staging mirror — monitors' cursors, like any ETL
    /// process state, do not survive restarts.
    pub fn open(dir: &std::path::Path) -> Result<Self> {
        let db = Database::open(dir).map_err(wrap)?;
        let adapter = Adapter::install(&db).map_err(wrap)?;
        db.recover().map_err(wrap)?;
        let loader = Loader::new(&db);
        loader.ensure_schema().map_err(wrap)?;
        Ok(Warehouse {
            db,
            adapter,
            trust: TrustModel::default(),
            sources: Vec::new(),
            staging: HashMap::new(),
        })
    }

    fn with_db(db: Database) -> Result<Self> {
        let adapter = Adapter::install(&db).map_err(wrap)?;
        let loader = Loader::new(&db);
        loader.ensure_schema().map_err(wrap)?;
        Ok(Warehouse {
            db,
            adapter,
            trust: TrustModel::default(),
            sources: Vec::new(),
            staging: HashMap::new(),
        })
    }

    /// The underlying database (read access for user queries).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The installed adapter.
    pub fn adapter(&self) -> &Adapter {
        &self.adapter
    }

    /// Adjust a source's trust level.
    pub fn set_trust(&mut self, source: &str, trust: f64) {
        self.trust.set(source, trust);
    }

    /// Register a source; the monitor is chosen from the Figure 2 grid.
    pub fn add_source(&mut self, mut repo: SimulatedRepository) -> Result<Strategy> {
        let strategy = effective_strategy(repo.capability(), repo.representation());
        let monitor = match strategy {
            Strategy::DatabaseTrigger | Strategy::ProgramTrigger => {
                MonitorKind::Trigger(TriggerMonitor::attach(&mut repo)?)
            }
            Strategy::InspectLog => MonitorKind::Log(LogMonitor::new()),
            Strategy::SnapshotDifferential => MonitorKind::Poll(PollMonitor::new()),
            Strategy::EditSequence | Strategy::LcsDiff => MonitorKind::Dump(DumpMonitor::new()),
        };
        self.sources.push(SourceEntry { repo, monitor, strategy });
        Ok(strategy)
    }

    /// Mutable access to a registered source (curators applying changes).
    pub fn source_mut(&mut self, name: &str) -> Option<&mut SimulatedRepository> {
        self.sources.iter_mut().find(|s| s.repo.name() == name).map(|s| &mut s.repo)
    }

    /// The monitoring strategy chosen for a source.
    pub fn strategy_of(&self, name: &str) -> Option<Strategy> {
        self.sources.iter().find(|s| s.repo.name() == name).map(|s| s.strategy)
    }

    /// Manual refresh: collect deltas from every monitor, fold them into
    /// staging, re-reconcile only the affected accessions, and upsert.
    /// Flaky sources are retried with the default [`RetryPolicy`].
    pub fn refresh(&mut self) -> Result<RefreshReport> {
        self.refresh_with_retry(&RetryPolicy::default())
    }

    /// Refresh with an explicit retry policy. One source exhausting its
    /// attempts does not abort the round: deltas already collected from
    /// healthy sources are still applied, and the stragglers are listed in
    /// [`RefreshReport::failed_sources`]. A failed monitor keeps its cursor
    /// / last-good snapshot, so nothing is skipped on the next refresh.
    pub fn refresh_with_retry(&mut self, policy: &RetryPolicy) -> Result<RefreshReport> {
        let counters = genalg_obs::etl_counters();
        counters.refresh_rounds.fetch_add(1, Ordering::Relaxed);
        let tracer = genalg_obs::tracer();
        let mut round_span = tracer.span("etl.refresh");
        round_span.field("sources", self.sources.len() as u64);
        let mut deltas: Vec<(String, Delta)> = Vec::new();
        let mut failed_sources = Vec::new();
        for entry in &mut self.sources {
            let source_name = entry.repo.name().to_string();
            let mut fetch_span = tracer.span_with_parent("etl.fetch", round_span.id());
            fetch_span.field("source", source_name.clone());
            let mut outcome = None;
            for attempt in 1..=policy.max_attempts.max(1) {
                let result: Result<Vec<Delta>> = match &mut entry.monitor {
                    MonitorKind::Trigger(m) => Ok(m.drain()),
                    MonitorKind::Log(m) => m.poll(&entry.repo),
                    MonitorKind::Poll(m) => m.poll(&entry.repo),
                    MonitorKind::Dump(m) => m.poll(&entry.repo).map(|(d, _)| d),
                };
                match result {
                    Ok(collected) => {
                        outcome = Some(collected);
                        break;
                    }
                    // Non-transient failures (a parse bug, a capability
                    // mismatch) won't heal by waiting; surface them.
                    Err(e) if !e.is_transient() => return Err(e),
                    Err(_) if attempt < policy.max_attempts => {
                        counters.retries.fetch_add(1, Ordering::Relaxed);
                        let backoff = policy.backoff(attempt);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                    }
                    Err(_) => {}
                }
            }
            match outcome {
                Some(collected) => {
                    fetch_span.field("deltas", collected.len() as u64);
                    deltas.extend(collected.into_iter().map(|d| (source_name.clone(), d)));
                }
                None => {
                    counters.source_failures.fetch_add(1, Ordering::Relaxed);
                    fetch_span.field("failed", true);
                    failed_sources.push(source_name);
                }
            }
        }
        round_span.field("failed_sources", failed_sources.len() as u64);
        let apply_span = tracer.span_with_parent("etl.apply", round_span.id());
        let mut report = self.apply_deltas(deltas)?;
        drop(apply_span);
        report.failed_sources = failed_sources;
        Ok(report)
    }

    fn apply_deltas(&mut self, deltas: Vec<(String, Delta)>) -> Result<RefreshReport> {
        let mut affected: BTreeSet<String> = BTreeSet::new();
        let n_deltas = deltas.len();
        for (source, d) in deltas {
            affected.insert(d.accession.clone());
            let key = (d.accession.clone(), source.clone());
            match d.after {
                Some(mut rec) => {
                    // Provenance is authoritative from the monitor's view.
                    if rec.source.is_empty() {
                        rec.source = source.clone();
                    }
                    self.staging.insert(key, rec);
                }
                None => {
                    self.staging.remove(&key);
                }
            }
        }

        // Re-reconcile affected accessions from staging.
        let loader = Loader::new(&self.db);
        let mut upserted = 0usize;
        let mut deleted = 0usize;
        for accession in affected {
            let group: Vec<SeqRecord> = self
                .staging
                .iter()
                .filter(|((acc, _), _)| *acc == accession)
                .map(|(_, r)| r.clone())
                .collect();
            if group.is_empty() {
                loader.delete(&accession).map_err(wrap)?;
                deleted += 1;
            } else {
                let entries = reconcile(&group, &self.trust, &HashMap::new());
                loader.upsert(&entries).map_err(wrap)?;
                upserted += entries.len();
            }
        }
        let counters = genalg_obs::etl_counters();
        counters.deltas.fetch_add(n_deltas as u64, Ordering::Relaxed);
        counters.upserts.fetch_add(upserted as u64, Ordering::Relaxed);
        counters.deletes.fetch_add(deleted as u64, Ordering::Relaxed);
        Ok(RefreshReport { deltas: n_deltas, upserted, deleted, failed_sources: Vec::new() })
    }

    /// Expensive alternative: re-read every source completely and rebuild
    /// the affected entities (the cost baseline §5.2 argues against).
    pub fn full_reload(&mut self) -> Result<RefreshReport> {
        // Discard monitors' incremental knowledge by consuming their
        // pending deltas first (they stay consistent for later refreshes).
        let _ = self.refresh()?;
        self.staging.clear();
        let mut all: Vec<(String, SeqRecord)> = Vec::new();
        let policy = RetryPolicy::default();
        for entry in &self.sources {
            // A full reload *needs* every source; retry with backoff and
            // give up on the round (not the data) if one stays down.
            let mut snapshot = None;
            for attempt in 1..=policy.max_attempts {
                match entry.repo.snapshot() {
                    Ok(records) => {
                        snapshot = Some(records);
                        break;
                    }
                    Err(e) if !e.is_transient() || attempt == policy.max_attempts => {
                        return Err(e);
                    }
                    Err(_) => std::thread::sleep(policy.backoff(attempt)),
                }
            }
            for rec in snapshot.expect("loop breaks with Some or returns Err") {
                all.push((entry.repo.name().to_string(), rec));
            }
        }
        for (source, rec) in &all {
            self.staging.insert((rec.accession.clone(), source.clone()), rec.clone());
        }
        let records: Vec<SeqRecord> = all.into_iter().map(|(_, r)| r).collect();
        let entries = reconcile(&records, &self.trust, &HashMap::new());
        let loader = Loader::new(&self.db);
        // Clear and rebuild.
        for accession in self.current_accessions()? {
            loader.delete(&accession).map_err(wrap)?;
        }
        loader.upsert(&entries).map_err(wrap)?;
        Ok(RefreshReport { deltas: 0, upserted: entries.len(), deleted: 0, failed_sources: vec![] })
    }

    /// §5.2 schema evolution: extend the warehouse with derived protein
    /// data (locate + translate the first CDS of every stored entity).
    /// Returns the number of proteins stored.
    pub fn derive_proteins(&self) -> Result<usize> {
        Loader::new(&self.db).derive_proteins().map_err(wrap)
    }

    /// Reconciled entries currently loadable from staging (for tests).
    pub fn staged_entries(&self) -> Vec<ReconciledEntry> {
        let records: Vec<SeqRecord> = self.staging.values().cloned().collect();
        reconcile(&records, &self.trust, &HashMap::new())
    }

    fn current_accessions(&self) -> Result<Vec<String>> {
        let rs = self.db.execute("SELECT accession FROM public.sequences").map_err(wrap)?;
        Ok(rs.rows.iter().filter_map(|r| r[0].as_text().map(str::to_string)).collect())
    }
}

fn wrap(e: unidb::DbError) -> GenAlgError {
    GenAlgError::Other(format!("warehouse: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::ChangeKind;
    use crate::source::{Capability, Representation};
    use genalg_core::seq::DnaSeq;

    fn rec(acc: &str, seq: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap()).with_description("d")
    }

    fn count(w: &Warehouse) -> i64 {
        w.db().execute("SELECT count(*) FROM public.sequences").unwrap().rows[0][0]
            .as_int()
            .unwrap()
    }

    #[test]
    fn end_to_end_multi_source_refresh() {
        let mut w = Warehouse::new().unwrap();
        // Four sources covering four Figure 2 cells.
        w.add_source(SimulatedRepository::new(
            "genbank-sim",
            Representation::FlatFile,
            Capability::NonQueryable,
        ))
        .unwrap();
        w.add_source(SimulatedRepository::new(
            "embl-sim",
            Representation::Relational,
            Capability::Queryable,
        ))
        .unwrap();
        w.add_source(SimulatedRepository::new(
            "swiss-sim",
            Representation::Relational,
            Capability::Active,
        ))
        .unwrap();
        w.add_source(SimulatedRepository::new(
            "ace-sim",
            Representation::Hierarchical,
            Capability::Logged,
        ))
        .unwrap();
        assert_eq!(w.strategy_of("genbank-sim"), Some(Strategy::LcsDiff));
        assert_eq!(w.strategy_of("embl-sim"), Some(Strategy::SnapshotDifferential));
        assert_eq!(w.strategy_of("swiss-sim"), Some(Strategy::DatabaseTrigger));
        assert_eq!(w.strategy_of("ace-sim"), Some(Strategy::InspectLog));

        // Seed the sources.
        w.source_mut("genbank-sim")
            .unwrap()
            .apply(ChangeKind::Insert, rec("A1", "ATGGCCTTTAAG"))
            .unwrap();
        w.source_mut("embl-sim")
            .unwrap()
            .apply(ChangeKind::Insert, rec("A1", "ATGGCCTTTAAG"))
            .unwrap();
        w.source_mut("swiss-sim")
            .unwrap()
            .apply(ChangeKind::Insert, rec("B2", "GGGGCCCC"))
            .unwrap();
        w.source_mut("ace-sim").unwrap().apply(ChangeKind::Insert, rec("C3", "TTTTAAAA")).unwrap();

        let report = w.refresh().unwrap();
        assert_eq!(report.deltas, 4);
        assert_eq!(report.upserted, 3);
        assert_eq!(count(&w), 3);

        // Corroborated entry.
        let rs = w
            .db()
            .execute("SELECT n_sources FROM public.sequences WHERE accession = 'A1'")
            .unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(2));

        // A quiet refresh is a no-op.
        let report = w.refresh().unwrap();
        assert_eq!(report, RefreshReport::default());

        // Update propagates incrementally.
        w.source_mut("swiss-sim")
            .unwrap()
            .apply(ChangeKind::Update, rec("B2", "GGGGCCCCTT"))
            .unwrap();
        let report = w.refresh().unwrap();
        assert_eq!(report.deltas, 1);
        assert_eq!(report.upserted, 1);
        let rs = w
            .db()
            .execute("SELECT seq_length(seq) FROM public.sequences WHERE accession = 'B2'")
            .unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(10));

        // Delete propagates and removes the entity.
        w.source_mut("ace-sim").unwrap().apply(ChangeKind::Delete, rec("C3", "TTTTAAAA")).unwrap();
        let report = w.refresh().unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(count(&w), 2);
    }

    #[test]
    fn conflicting_sources_yield_disputed_entries() {
        let mut w = Warehouse::new().unwrap();
        w.set_trust("trusted", 0.95);
        w.set_trust("sloppy", 0.5);
        w.add_source(SimulatedRepository::new(
            "trusted",
            Representation::Relational,
            Capability::Queryable,
        ))
        .unwrap();
        w.add_source(SimulatedRepository::new(
            "sloppy",
            Representation::Relational,
            Capability::Queryable,
        ))
        .unwrap();
        w.source_mut("trusted").unwrap().apply(ChangeKind::Insert, rec("X", "ATGGCC")).unwrap();
        w.source_mut("sloppy").unwrap().apply(ChangeKind::Insert, rec("X", "ATGGAC")).unwrap();
        w.refresh().unwrap();
        let rs =
            w.db().execute("SELECT disputed FROM public.sequences WHERE accession = 'X'").unwrap();
        assert_eq!(rs.rows[0][0].as_bool(), Some(true));
        // Best-believed sequence is the trusted one.
        let rs = w
            .db()
            .execute("SELECT contains(seq, 'ATGGCC') FROM public.sequences WHERE accession = 'X'")
            .unwrap();
        assert_eq!(rs.rows[0][0].as_bool(), Some(true));
        let rs = w
            .db()
            .execute("SELECT count(*) FROM public.sequence_alternatives WHERE accession = 'X'")
            .unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(2));
    }

    #[test]
    fn persistent_warehouse_reopens() {
        let dir = std::env::temp_dir().join(format!("genalg-wh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut w = Warehouse::open(&dir).unwrap();
            w.add_source(SimulatedRepository::new(
                "s1",
                Representation::Relational,
                Capability::Queryable,
            ))
            .unwrap();
            for i in 0..5 {
                w.source_mut("s1")
                    .unwrap()
                    .apply(ChangeKind::Insert, rec(&format!("D{i}"), "ATGAAATTTTAA"))
                    .unwrap();
            }
            w.refresh().unwrap();
            assert_eq!(w.derive_proteins().unwrap(), 5);
            assert_eq!(count(&w), 5);
        }
        // Reopen: data and derived proteins survive; genomic ops still work.
        {
            let w = Warehouse::open(&dir).unwrap();
            assert_eq!(count(&w), 5);
            let rs = w
                .db()
                .execute("SELECT count(*) FROM public.sequences WHERE contains(seq, 'ATGAAA')")
                .unwrap();
            assert_eq!(rs.rows[0][0].as_int(), Some(5));
            let rs = w.db().execute("SELECT count(*) FROM public.proteins").unwrap();
            assert_eq!(rs.rows[0][0].as_int(), Some(5));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn derive_proteins_through_warehouse() {
        let mut w = Warehouse::new().unwrap();
        w.add_source(SimulatedRepository::new(
            "s1",
            Representation::Relational,
            Capability::Queryable,
        ))
        .unwrap();
        w.source_mut("s1")
            .unwrap()
            .apply(ChangeKind::Insert, rec("X", "CCATGGGGTTTTAACC"))
            .unwrap();
        w.refresh().unwrap();
        assert_eq!(w.derive_proteins().unwrap(), 1);
        let rs =
            w.db().execute("SELECT length FROM public.proteins WHERE accession = 'X'").unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(3)); // M G F
    }

    #[test]
    fn full_reload_matches_incremental() {
        let mut w = Warehouse::new().unwrap();
        w.add_source(SimulatedRepository::new(
            "s1",
            Representation::FlatFile,
            Capability::NonQueryable,
        ))
        .unwrap();
        for i in 0..10 {
            w.source_mut("s1")
                .unwrap()
                .apply(ChangeKind::Insert, rec(&format!("R{i}"), "ATGCATGC"))
                .unwrap();
        }
        w.refresh().unwrap();
        let incremental = count(&w);
        w.full_reload().unwrap();
        assert_eq!(count(&w), incremental);
        assert_eq!(w.staged_entries().len(), 10);
    }
}
