//! The loader: writes reconciled entries into the Unifying Database's
//! public space (as the maintainer — users cannot write there, §5.1).
//!
//! Schema evolution follows §5.2's plan: "first create a schema that
//! contains all of the nucleotide data, which will later be extended by new
//! tables storing protein data" — [`Loader::ensure_protein_schema`] adds
//! the protein extension, and [`Loader::derive_proteins`] populates it by
//! running the Genomics Algebra (ORF discovery + translation) over the
//! stored nucleotide entities.

use crate::integrate::ReconciledEntry;
use genalg_core::codon::GeneticCode;
use genalg_core::dogma::locate_cds;
use genalg_core::error::GenAlgError;
use genalg_core::seq::DnaSeq;
use unidb::catalog::Role;
use unidb::{Database, DbError, DbResult};

/// The public-space schema the warehouse maintains.
const SCHEMA: &str = "
CREATE TABLE public.sequences (
    accession TEXT NOT NULL,
    version INT,
    organism TEXT,
    description TEXT,
    seq dna,
    confidence FLOAT,
    n_sources INT,
    disputed BOOL
);
CREATE UNIQUE INDEX ON public.sequences (accession);
CREATE TABLE public.sequence_alternatives (
    accession TEXT NOT NULL,
    rank INT,
    seq dna,
    confidence FLOAT,
    provenance TEXT
);
CREATE TABLE public.features (
    accession TEXT NOT NULL,
    kind TEXT,
    loc_start INT,
    loc_end INT,
    strand TEXT,
    qualifiers TEXT
);
";

/// Loader over an adapter-installed database.
pub struct Loader<'a> {
    db: &'a Database,
}

impl<'a> Loader<'a> {
    /// Wrap a database. [`Loader::ensure_schema`] must run once before
    /// loading.
    pub fn new(db: &'a Database) -> Self {
        Loader { db }
    }

    /// Create the public-space tables if they do not exist yet.
    pub fn ensure_schema(&self) -> DbResult<()> {
        if self.db.table_names().iter().any(|t| t == "public.sequences") {
            return Ok(());
        }
        self.db.execute_script_as(SCHEMA, &Role::Maintainer)?;
        Ok(())
    }

    /// §5.2 schema evolution: add the protein extension tables. Purely
    /// additive — existing nucleotide tables are untouched.
    pub fn ensure_protein_schema(&self) -> DbResult<()> {
        if self.db.table_names().iter().any(|t| t == "public.proteins") {
            return Ok(());
        }
        self.db.execute_script_as(
            "CREATE TABLE public.proteins (
                accession TEXT NOT NULL,
                cds_start INT,
                cds_end INT,
                residues protein_seq,
                length INT,
                weight FLOAT
            );",
            &Role::Maintainer,
        )?;
        Ok(())
    }

    /// Derive protein entries from every stored nucleotide entity: locate
    /// the first complete coding region (standard table), translate it, and
    /// upsert into `public.proteins`. Returns the number of proteins
    /// stored. Entities without a complete CDS simply contribute nothing.
    pub fn derive_proteins(&self) -> DbResult<usize> {
        self.ensure_protein_schema()?;
        let rs =
            self.db.execute_as("SELECT accession, seq FROM public.sequences", &Role::Maintainer)?;
        let code = GeneticCode::standard();
        let mut stored = 0usize;
        for row in &rs.rows {
            let Some(accession) = row[0].as_text() else { continue };
            let Some((_, bytes)) = row[1].as_opaque() else { continue };
            let value = genalg_core::compact::value_from_bytes(bytes)
                .map_err(|e| DbError::External(e.to_string()))?;
            let genalg_core::algebra::Value::Dna(seq) = value else { continue };
            let Some((cds, peptide)) = first_protein(&seq, &code) else { continue };
            self.exec(&format!(
                "DELETE FROM public.proteins WHERE accession = {}",
                quote(accession)
            ))?;
            self.exec(&format!(
                "INSERT INTO public.proteins VALUES ({}, {}, {}, protein_seq('{}'), {}, {})",
                quote(accession),
                cds.0,
                cds.1,
                peptide.to_text(),
                peptide.len(),
                peptide.molecular_weight(),
            ))?;
            stored += 1;
        }
        Ok(stored)
    }

    /// Upsert reconciled entries (delete-then-insert keyed by accession).
    pub fn upsert(&self, entries: &[ReconciledEntry]) -> DbResult<usize> {
        for e in entries {
            self.delete(&e.accession)?;
            let best = e.sequence.best();
            self.exec(&format!(
                "INSERT INTO public.sequences VALUES ({}, {}, {}, {}, dna('{}'), {}, {}, {})",
                quote(&e.accession),
                e.version,
                opt_quote(e.organism.as_deref()),
                quote(&e.description),
                best.value().to_text(),
                best.confidence().value(),
                e.sources.len(),
                !e.is_undisputed(),
            ))?;
            for (rank, option) in e.sequence.options().iter().enumerate() {
                self.exec(&format!(
                    "INSERT INTO public.sequence_alternatives VALUES ({}, {}, dna('{}'), {}, {})",
                    quote(&e.accession),
                    rank,
                    option.value().to_text(),
                    option.confidence().value(),
                    quote(&option.provenance().join(",")),
                ))?;
            }
            for f in &e.features {
                let envelope = f.location.envelope();
                self.exec(&format!(
                    "INSERT INTO public.features VALUES ({}, {}, {}, {}, {}, {})",
                    quote(&e.accession),
                    quote(f.kind.key()),
                    envelope.start,
                    envelope.end,
                    quote(&f.location.strand().symbol().to_string()),
                    quote(
                        &f.qualifiers()
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(";")
                    ),
                ))?;
            }
        }
        Ok(entries.len())
    }

    /// Remove an accession from every warehouse table.
    pub fn delete(&self, accession: &str) -> DbResult<()> {
        for table in ["public.sequences", "public.sequence_alternatives", "public.features"] {
            self.exec(&format!("DELETE FROM {table} WHERE accession = {}", quote(accession)))?;
        }
        Ok(())
    }

    fn exec(&self, sql: &str) -> DbResult<()> {
        self.db.execute_as(sql, &Role::Maintainer)?;
        Ok(())
    }
}

/// Locate the first complete coding region of a strict sequence and
/// translate it to the mature peptide (initiator codon yields Met).
/// Returns `None` for noisy (ambiguous) sequences or when no CDS exists.
fn first_protein(
    seq: &DnaSeq,
    code: &GeneticCode,
) -> Option<((usize, usize), genalg_core::seq::ProteinSeq)> {
    let rna = seq.to_rna().ok()?;
    let cds = locate_cds(&rna, code)?;
    let coding = rna.subseq(cds.start, cds.end).ok()?;
    let raw = code.translate_cds(&coding).ok()?;
    let mut peptide = genalg_core::seq::ProteinSeq::empty();
    peptide.push(genalg_core::alphabet::AminoAcid::Met);
    for (i, aa) in raw.until_stop().iter().enumerate() {
        if i > 0 {
            peptide.push(aa);
        }
    }
    Some(((cds.start, cds.end), peptide))
}

fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

fn opt_quote(s: Option<&str>) -> String {
    s.map_or("NULL".to_string(), quote)
}

/// Convert a database error into a domain error at ETL boundaries.
pub fn etl_error(e: DbError) -> GenAlgError {
    GenAlgError::Other(format!("warehouse load failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::{reconcile, TrustModel};
    use crate::record::SeqRecord;
    use genalg_adapter::Adapter;
    use genalg_core::seq::DnaSeq;
    use std::collections::HashMap;

    fn setup() -> (Database, Adapter) {
        let db = Database::in_memory();
        let adapter = Adapter::install(&db).unwrap();
        (db, adapter)
    }

    fn rec(acc: &str, seq: &str, source: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap())
            .with_description("it's a demo") // embedded quote exercises escaping
            .with_organism("E. coli")
            .with_source(source)
    }

    #[test]
    fn schema_upsert_and_query() {
        let (db, _) = setup();
        let loader = Loader::new(&db);
        loader.ensure_schema().unwrap();
        loader.ensure_schema().unwrap(); // idempotent

        let records = vec![
            rec("A1", "ATGGCCTTTAAG", "genbank-sim"),
            rec("A1", "ATGGCCTTTAAG", "embl-sim"),
            rec("B2", "GGGG", "genbank-sim"),
        ];
        let entries = reconcile(&records, &TrustModel::default(), &HashMap::new());
        assert_eq!(loader.upsert(&entries).unwrap(), 2);

        let rs = db.execute("SELECT count(*) FROM public.sequences").unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(2));
        // The paper's flagship predicate runs against warehouse contents.
        let rs = db
            .execute("SELECT accession FROM public.sequences WHERE contains(seq, 'GCCTTT')")
            .unwrap();
        assert_eq!(rs.rows[0][0].as_text(), Some("A1"));
        // Corroborated entry carries raised confidence.
        let rs = db
            .execute("SELECT confidence, n_sources, disputed FROM public.sequences WHERE accession = 'A1'")
            .unwrap();
        assert!(rs.rows[0][0].as_float().unwrap() > 0.9);
        assert_eq!(rs.rows[0][1].as_int(), Some(2));
        assert_eq!(rs.rows[0][2].as_bool(), Some(false));

        // Upsert replaces rather than duplicates.
        loader.upsert(&entries).unwrap();
        let rs = db.execute("SELECT count(*) FROM public.sequences").unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(2));

        loader.delete("A1").unwrap();
        let rs = db.execute("SELECT count(*) FROM public.sequences").unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(1));
    }

    #[test]
    fn protein_schema_evolution() {
        let (db, _) = setup();
        let loader = Loader::new(&db);
        loader.ensure_schema().unwrap();
        let records = vec![
            // ATG AAA TTT TAA → MKF.
            rec("P1", "CCATGAAATTTTAACC", "genbank-sim"),
            // No start codon → no protein row.
            rec("P2", "CCCCCCCCC", "genbank-sim"),
            // Ambiguity → skipped.
            SeqRecord::new("P3", DnaSeq::from_text("ATGNNNTAA").unwrap())
                .with_source("genbank-sim"),
        ];
        let entries = reconcile(&records, &TrustModel::default(), &HashMap::new());
        loader.upsert(&entries).unwrap();
        let stored = loader.derive_proteins().unwrap();
        assert_eq!(stored, 1);
        // Idempotent: re-derivation replaces, never duplicates.
        assert_eq!(loader.derive_proteins().unwrap(), 1);

        let rs = db
            .execute("SELECT accession, length, cds_start FROM public.proteins ORDER BY accession")
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_text(), Some("P1"));
        assert_eq!(rs.rows[0][1].as_int(), Some(3)); // M K F
        assert_eq!(rs.rows[0][2].as_int(), Some(2));
        // The residues are a first-class protein_seq value.
        let rs = db.execute("SELECT molecular_weight(residues) FROM public.proteins").unwrap();
        assert!(rs.rows[0][0].as_float().unwrap() > 100.0);
        // Nucleotide and protein worlds join on accession.
        let rs = db
            .execute(
                "SELECT s.accession FROM public.sequences s \
                 JOIN public.proteins p ON s.accession = p.accession \
                 WHERE contains(s.seq, 'ATGAAA')",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn disputed_entries_expose_alternatives() {
        let (db, _) = setup();
        let loader = Loader::new(&db);
        loader.ensure_schema().unwrap();
        let records =
            vec![rec("C3", "ATGGCCTTTAAG", "genbank-sim"), rec("C3", "ATGGACTTTAAG", "embl-sim")];
        let entries = reconcile(&records, &TrustModel::default(), &HashMap::new());
        loader.upsert(&entries).unwrap();
        let rs =
            db.execute("SELECT disputed FROM public.sequences WHERE accession = 'C3'").unwrap();
        assert_eq!(rs.rows[0][0].as_bool(), Some(true));
        // Both claims are queryable — "access to both alternatives".
        let rs = db
            .execute(
                "SELECT rank, provenance FROM public.sequence_alternatives \
                 WHERE accession = 'C3' ORDER BY rank",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }
}
