//! # genalg-etl — Extract-Transform-Load for the Unifying Database
//!
//! §5 of the paper decomposes ETL into four activities, all implemented
//! here:
//!
//! 1. **Source monitors** detect changes. The technique depends on the
//!    source's capability × representation, exactly the Figure 2 grid:
//!    triggers for *active* sources, log inspection for *logged* sources,
//!    snapshot differentials / edit sequences for *queryable* sources, and
//!    LCS line diffs (flat files) or ordered-tree edit scripts
//!    (hierarchical data) for *non-queryable* snapshot dumps.
//!    [`monitor::pick_strategy`] encodes the grid.
//! 2. **Wrappers** parse repository formats — FASTA, GenBank-style and
//!    EMBL-style flat files, and a hierarchical (AceDB-like) format — into
//!    normalized [`SeqRecord`]s ([`formats`]).
//! 3. The **integrator** matches related records across sources, merges
//!    duplicates (corroboration raises confidence), and preserves genuine
//!    conflicts as uncertainty alternatives — the paper's C9 requirement
//!    that "access to both alternatives should be given" ([`integrate`]).
//! 4. The **loader** writes reconciled entries into the Unifying Database
//!    through the adapter, into the read-only public space ([`loader`]).
//!
//! [`refresh::Warehouse`] ties the activities together with both a
//! *manual refresh* option (§5.2) and incremental, delta-driven
//! maintenance (self-maintainability: refresh consumes deltas plus
//! warehouse content, never a full source reload).

pub mod delta;
pub mod formats;
pub mod integrate;
pub mod loader;
pub mod monitor;
pub mod record;
pub mod refresh;
pub mod source;

pub use delta::{ChangeKind, Delta};
pub use record::SeqRecord;
pub use source::{Capability, Representation, SimulatedRepository};
