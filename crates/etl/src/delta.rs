//! Delta representation.
//!
//! §5.2: "each delta must be uniquely identifiable and contain (a)
//! information about the data item to which it belongs and (b) the a priori
//! and a posteriori data and the time stamp for when the update became
//! effective."

use crate::record::SeqRecord;

/// The kind of change a delta describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    Insert,
    Update,
    Delete,
}

/// One detected change at a source.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Unique (per source) delta id.
    pub id: u64,
    /// The data item the delta belongs to.
    pub accession: String,
    pub kind: ChangeKind,
    /// A priori state (`None` for inserts).
    pub before: Option<SeqRecord>,
    /// A posteriori state (`None` for deletes).
    pub after: Option<SeqRecord>,
    /// Logical timestamp at which the update became effective.
    pub timestamp: u64,
}

impl Delta {
    /// Build a delta, inferring the kind from the states.
    ///
    /// # Panics
    /// Panics on the impossible `(None, None)` combination.
    pub fn infer(
        id: u64,
        timestamp: u64,
        before: Option<SeqRecord>,
        after: Option<SeqRecord>,
    ) -> Self {
        let (kind, accession) = match (&before, &after) {
            (None, Some(a)) => (ChangeKind::Insert, a.accession.clone()),
            (Some(b), None) => (ChangeKind::Delete, b.accession.clone()),
            (Some(_), Some(a)) => (ChangeKind::Update, a.accession.clone()),
            (None, None) => panic!("a delta needs at least one state"),
        };
        Delta { id, accession, kind, before, after, timestamp }
    }

    /// Sanity: the stored kind matches the states carried.
    pub fn is_well_formed(&self) -> bool {
        match self.kind {
            ChangeKind::Insert => self.before.is_none() && self.after.is_some(),
            ChangeKind::Update => self.before.is_some() && self.after.is_some(),
            ChangeKind::Delete => self.before.is_some() && self.after.is_none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::seq::DnaSeq;

    fn rec(acc: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text("ATG").unwrap())
    }

    #[test]
    fn kinds_inferred() {
        let d = Delta::infer(1, 10, None, Some(rec("A")));
        assert_eq!(d.kind, ChangeKind::Insert);
        assert_eq!(d.accession, "A");
        assert!(d.is_well_formed());

        let d = Delta::infer(2, 11, Some(rec("B")), None);
        assert_eq!(d.kind, ChangeKind::Delete);
        assert!(d.is_well_formed());

        let d = Delta::infer(3, 12, Some(rec("C")), Some(rec("C")));
        assert_eq!(d.kind, ChangeKind::Update);
        assert!(d.is_well_formed());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_delta_panics() {
        let _ = Delta::infer(1, 1, None, None);
    }
}
