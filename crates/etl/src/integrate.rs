//! The warehouse integrator: entity matching and reconciliation (§5.2).
//!
//! "Related data items from different sources must first be identified so
//! that duplicates can be removed and inconsistencies among related values
//! can be resolved." Matching uses accessions first and sequence
//! similarity second (the semantic-heterogeneity fallback for sources that
//! name the same entity differently, problem B3). Conflicting sequences
//! are **not** resolved away: per C9, every claim survives as an
//! [`Alternatives`] option with its confidence and provenance.

use crate::record::SeqRecord;
use genalg_core::align::resembles;
use genalg_core::gdt::Feature;
use genalg_core::seq::DnaSeq;
use genalg_core::uncertainty::{Alternatives, Confidence, Uncertain};
use std::collections::{BTreeMap, HashMap};

/// One warehouse entity after reconciliation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconciledEntry {
    pub accession: String,
    /// Description from the most trusted source.
    pub description: String,
    pub organism: Option<String>,
    /// Every claimed sequence, most believed first. Undisputed entries have
    /// exactly one option.
    pub sequence: Alternatives<DnaSeq>,
    /// Highest version seen across sources.
    pub version: u32,
    /// Features from the most trusted source.
    pub features: Vec<Feature>,
    /// Contributing repositories, sorted.
    pub sources: Vec<String>,
}

impl ReconciledEntry {
    /// True when every source agrees on the sequence.
    pub fn is_undisputed(&self) -> bool {
        self.sequence.is_undisputed()
    }

    /// The best-believed sequence.
    pub fn best_sequence(&self) -> &DnaSeq {
        self.sequence.best().value()
    }
}

/// Per-source trust levels feeding confidence values. Unknown sources get
/// the default.
#[derive(Debug, Clone)]
pub struct TrustModel {
    trust: HashMap<String, f64>,
    default: f64,
}

impl Default for TrustModel {
    fn default() -> Self {
        TrustModel { trust: HashMap::new(), default: 0.8 }
    }
}

impl TrustModel {
    /// Set a source's trust (clamped to [0, 1]).
    pub fn set(&mut self, source: &str, trust: f64) {
        self.trust.insert(source.to_string(), trust.clamp(0.0, 1.0));
    }

    /// Trust for a source.
    pub fn get(&self, source: &str) -> f64 {
        self.trust.get(source).copied().unwrap_or(self.default)
    }

    fn confidence(&self, source: &str) -> Confidence {
        Confidence::new(self.get(source)).expect("trust is clamped")
    }
}

/// Find accessions that name the same entity across sources: identical or
/// highly similar sequences (≥95 % identity over ≥90 % of the shorter
/// sequence) under different accessions. Returns `(duplicate, canonical)`
/// pairs, canonical being the lexicographically smaller accession.
pub fn find_duplicate_accessions(records: &[SeqRecord]) -> Vec<(String, String)> {
    let mut by_accession: BTreeMap<&str, &SeqRecord> = BTreeMap::new();
    for r in records {
        by_accession.entry(r.accession.as_str()).or_insert(r);
    }
    let entries: Vec<(&str, &SeqRecord)> = by_accession.into_iter().collect();
    let mut pairs = Vec::new();
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let (acc_a, a) = entries[i];
            let (acc_b, b) = entries[j];
            let same = a.sequence == b.sequence || resembles(&a.sequence, &b.sequence, 0.95, 0.9);
            if same {
                pairs.push((acc_b.to_string(), acc_a.to_string()));
            }
        }
    }
    pairs
}

/// Reconcile a batch of records (typically: every record a set of sources
/// holds for some set of accessions) into warehouse entities.
///
/// `aliases` maps duplicate accessions onto their canonical one (see
/// [`find_duplicate_accessions`]); pass an empty map to match on accession
/// only.
pub fn reconcile(
    records: &[SeqRecord],
    trust: &TrustModel,
    aliases: &HashMap<String, String>,
) -> Vec<ReconciledEntry> {
    let mut groups: BTreeMap<String, Vec<&SeqRecord>> = BTreeMap::new();
    for r in records {
        let canonical = aliases.get(&r.accession).cloned().unwrap_or_else(|| r.accession.clone());
        groups.entry(canonical).or_default().push(r);
    }

    let mut out = Vec::with_capacity(groups.len());
    for (accession, mut group) in groups {
        // Most trusted first; ties broken by source name for determinism.
        group.sort_by(|a, b| {
            trust
                .get(&b.source)
                .partial_cmp(&trust.get(&a.source))
                .expect("trust values are finite")
                .then_with(|| a.source.cmp(&b.source))
        });
        let leader = group[0];
        let mut sequence = Alternatives::single(Uncertain::new(
            leader.sequence.clone(),
            trust.confidence(&leader.source),
            &leader.source,
        ));
        for r in &group[1..] {
            sequence.add_claim(Uncertain::new(
                r.sequence.clone(),
                trust.confidence(&r.source),
                &r.source,
            ));
        }
        let mut sources: Vec<String> = group.iter().map(|r| r.source.clone()).collect();
        sources.sort();
        sources.dedup();
        out.push(ReconciledEntry {
            accession,
            description: leader.description.clone(),
            organism: group.iter().find_map(|r| r.organism.clone()),
            sequence,
            version: group.iter().map(|r| r.version).max().unwrap_or(1),
            features: leader.features.clone(),
            sources,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(acc: &str, seq: &str, source: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap())
            .with_description(&format!("{acc} from {source}"))
            .with_source(source)
    }

    #[test]
    fn agreeing_sources_corroborate() {
        let records = vec![rec("A1", "ATGGCC", "genbank-sim"), rec("A1", "ATGGCC", "embl-sim")];
        let trust = TrustModel::default();
        let entries = reconcile(&records, &trust, &HashMap::new());
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert!(e.is_undisputed());
        // Noisy-or of 0.8 and 0.8 = 0.96.
        assert!((e.sequence.best().confidence().value() - 0.96).abs() < 1e-9);
        assert_eq!(e.sources, vec!["embl-sim", "genbank-sim"]);
    }

    #[test]
    fn conflicting_sources_preserve_both_claims() {
        let records = vec![rec("A1", "ATGGCC", "genbank-sim"), rec("A1", "ATGGCG", "embl-sim")];
        let mut trust = TrustModel::default();
        trust.set("embl-sim", 0.95);
        trust.set("genbank-sim", 0.6);
        let entries = reconcile(&records, &trust, &HashMap::new());
        let e = &entries[0];
        assert!(!e.is_undisputed());
        assert_eq!(e.sequence.len(), 2, "both alternatives kept (C9)");
        // The more trusted claim ranks first.
        assert_eq!(e.best_sequence().to_text(), "ATGGCG");
        // Description follows the most trusted source.
        assert!(e.description.contains("embl-sim"));
    }

    #[test]
    fn version_and_organism_merge() {
        let mut a = rec("A1", "ATGC", "s1").with_version(3);
        a.organism = None;
        let b = rec("A1", "ATGC", "s2").with_version(5).with_organism("E. coli");
        let entries = reconcile(&[a, b], &TrustModel::default(), &HashMap::new());
        assert_eq!(entries[0].version, 5);
        assert_eq!(entries[0].organism.as_deref(), Some("E. coli"));
    }

    #[test]
    fn duplicate_accessions_found_by_similarity() {
        let seq = "ATGGCCTTTAAGGGGCCCAAATTTGGGCCCATAT";
        let mut mutated = seq.to_string();
        mutated.replace_range(4..5, "A"); // one substitution, still >98% id
        let records = vec![
            rec("GB:001", seq, "genbank-sim"),
            rec("EM:77", &mutated, "embl-sim"),
            rec("UNRELATED", "GCGCGCGCGCGCGCGCGCGCGCGCGCGCGCGC", "embl-sim"),
        ];
        let pairs = find_duplicate_accessions(&records);
        assert_eq!(pairs, vec![("GB:001".to_string(), "EM:77".to_string())]);

        // Feeding the alias map unifies the group.
        let aliases: HashMap<String, String> = pairs.into_iter().collect();
        let entries = reconcile(&records, &TrustModel::default(), &aliases);
        assert_eq!(entries.len(), 2);
        let merged = entries.iter().find(|e| e.accession == "EM:77").unwrap();
        assert_eq!(merged.sources.len(), 2);
        assert_eq!(merged.sequence.len(), 2, "similar-but-unequal sequences stay alternatives");
    }

    #[test]
    fn exact_duplicates_with_different_names() {
        let records = vec![rec("X2", "ATGC", "a"), rec("X1", "ATGC", "b")];
        let pairs = find_duplicate_accessions(&records);
        assert_eq!(pairs, vec![("X2".to_string(), "X1".to_string())]);
    }

    #[test]
    fn trust_model_defaults_and_clamping() {
        let mut t = TrustModel::default();
        assert_eq!(t.get("anything"), 0.8);
        t.set("noisy", 7.0);
        assert_eq!(t.get("noisy"), 1.0);
        t.set("junk", -1.0);
        assert_eq!(t.get("junk"), 0.0);
    }
}
