//! Property-based tests for the ETL wrappers and change detection: every
//! format round-trips arbitrary records, and every diff technique's apply
//! reconstructs its target.

use genalg_core::alphabet::Strand;
use genalg_core::gdt::{Feature, FeatureKind, Interval, Location};
use genalg_core::seq::DnaSeq;
use genalg_etl::formats::{embl, fasta, genbank, hier, parse_location, render_location};
use genalg_etl::monitor::{lcs, snapshot, treediff};
use genalg_etl::record::SeqRecord;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Record generator
// ---------------------------------------------------------------------------

fn arb_accession() -> impl Strategy<Value = String> {
    "[A-Z]{1,3}[0-9]{3,6}"
}

fn arb_dna() -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(
        proptest::sample::select("ACGTRYN".chars().collect::<Vec<_>>()),
        1..120,
    )
    .prop_map(|v| DnaSeq::from_text(&v.into_iter().collect::<String>()).expect("valid symbols"))
}

fn arb_description() -> impl Strategy<Value = String> {
    // Flat-file formats are line-oriented: descriptions are single-line,
    // trimmed text without the records' own structural characters.
    "[a-zA-Z0-9 ]{0,30}".prop_map(|s| s.trim().to_string())
}

fn arb_feature(seq_len: usize) -> impl Strategy<Value = Feature> {
    let max_start = seq_len.saturating_sub(2).max(1);
    (
        0..max_start,
        1..3usize,
        any::<bool>(),
        proptest::sample::select(vec!["gene", "CDS", "exon", "promoter"]),
        "[a-z]{1,8}",
    )
        .prop_map(move |(start, len, fwd, kind, qual)| {
            let end = (start + len).min(seq_len).max(start + 1);
            let strand = if fwd { Strand::Forward } else { Strand::Reverse };
            Feature::new(
                FeatureKind::from_key(kind),
                Location::simple(Interval::new(start, end).expect("start < end"), strand),
            )
            .with_qualifier("note", &qual)
        })
}

fn arb_record() -> impl Strategy<Value = SeqRecord> {
    (arb_accession(), arb_dna(), arb_description(), 1u32..50, any::<bool>()).prop_flat_map(
        |(acc, seq, desc, version, with_org)| {
            let len = seq.len();
            proptest::collection::vec(arb_feature(len), 0..3).prop_map(move |features| {
                let mut rec =
                    SeqRecord::new(&acc, seq.clone()).with_description(&desc).with_version(version);
                if with_org {
                    rec = rec.with_organism("Examplia demonstrans");
                }
                for f in features {
                    rec = rec.with_feature(f);
                }
                rec
            })
        },
    )
}

fn dedup_accessions(mut records: Vec<SeqRecord>) -> Vec<SeqRecord> {
    let mut seen = std::collections::HashSet::new();
    records.retain(|r| seen.insert(r.accession.clone()));
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- wrapper round-trips -------------------------------------------------

    #[test]
    fn genbank_roundtrip(records in proptest::collection::vec(arb_record(), 0..5)) {
        let records = dedup_accessions(records);
        let text = genbank::write(&records);
        let parsed = genbank::parse(&text).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            prop_assert!(p.same_content(r), "mismatch:\n{p:#?}\nvs\n{r:#?}");
        }
    }

    #[test]
    fn embl_roundtrip(records in proptest::collection::vec(arb_record(), 0..5)) {
        let records = dedup_accessions(records);
        let text = embl::write(&records);
        let parsed = embl::parse(&text).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            prop_assert!(p.same_content(r), "mismatch:\n{p:#?}\nvs\n{r:#?}");
        }
    }

    #[test]
    fn hier_roundtrip(records in proptest::collection::vec(arb_record(), 0..5)) {
        let records = dedup_accessions(records);
        let text = hier::write(&hier::from_records(&records));
        let parsed = hier::to_records(&hier::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            prop_assert!(p.same_content(r), "mismatch:\n{p:#?}\nvs\n{r:#?}");
        }
    }

    #[test]
    fn fasta_sequences_roundtrip(records in proptest::collection::vec(arb_record(), 0..5)) {
        let records = dedup_accessions(records);
        let text = fasta::write(&records);
        let parsed = fasta::parse(&text).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            prop_assert_eq!(&p.accession, &r.accession);
            prop_assert_eq!(&p.sequence, &r.sequence);
        }
    }

    #[test]
    fn location_syntax_roundtrip(
        segments in proptest::collection::vec((1usize..500, 1usize..60), 1..4),
        reverse in any::<bool>(),
    ) {
        // Build sorted, disjoint 1-based segments.
        let mut intervals = Vec::new();
        let mut cursor = 0usize;
        for (gap, len) in segments {
            let start = cursor + gap;
            intervals.push(Interval::new(start, start + len).unwrap());
            cursor = start + len;
        }
        let strand = if reverse { Strand::Reverse } else { Strand::Forward };
        let loc = Location::join(intervals, strand).unwrap();
        let text = render_location(&loc);
        let parsed = parse_location(&text).unwrap();
        prop_assert_eq!(parsed, loc);
    }

    // --- diff techniques --------------------------------------------------------

    #[test]
    fn lcs_apply_reconstructs(old in "[ab\\n]{0,60}", new in "[ab\\n]{0,60}") {
        let edits = lcs::diff_lines(&old, &new);
        let rebuilt = lcs::apply_edits(&old, &edits);
        // Line-oriented equality (trailing newline normalization).
        let norm = |s: &str| s.lines().map(str::to_string).collect::<Vec<_>>();
        prop_assert_eq!(norm(&rebuilt), norm(&new));
    }

    #[test]
    fn tree_diff_apply_reconstructs(
        old in proptest::collection::vec(arb_record(), 0..4),
        new in proptest::collection::vec(arb_record(), 0..4),
    ) {
        let old_forest = hier::from_records(&dedup_accessions(old));
        let new_forest = hier::from_records(&dedup_accessions(new));
        let edits = treediff::diff_forest(&old_forest, &new_forest);
        let mut rebuilt = old_forest;
        treediff::apply_edits(&mut rebuilt, &edits);
        prop_assert_eq!(rebuilt, new_forest);
    }

    #[test]
    fn snapshot_differential_is_sound(
        old in proptest::collection::vec(arb_record(), 0..6),
        new in proptest::collection::vec(arb_record(), 0..6),
    ) {
        let old = dedup_accessions(old);
        let new = dedup_accessions(new);
        let mut id = 1;
        let deltas = snapshot::snapshot_differential(&old, &new, &mut id, 7);
        // Applying the deltas to the old map yields exactly the new map.
        let mut state: std::collections::BTreeMap<String, SeqRecord> =
            old.iter().map(|r| (r.accession.clone(), r.clone())).collect();
        for d in &deltas {
            prop_assert!(d.is_well_formed());
            match &d.after {
                Some(r) => {
                    state.insert(d.accession.clone(), r.clone());
                }
                None => {
                    state.remove(&d.accession);
                }
            }
        }
        let expected: std::collections::BTreeMap<String, SeqRecord> =
            new.iter().map(|r| (r.accession.clone(), r.clone())).collect();
        prop_assert_eq!(state, expected);
    }
}
