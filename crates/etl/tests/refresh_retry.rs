//! Warehouse refresh against flaky sources: transient request failures are
//! retried with bounded backoff, a source that stays down is reported (not
//! fatal), and its pending changes survive to the next refresh — no delta
//! is ever lost.

use genalg_etl::delta::ChangeKind;
use genalg_etl::refresh::{RetryPolicy, Warehouse};
use genalg_etl::source::{Capability, Representation, SimulatedRepository};
use genalg_repogen::{GeneratorConfig, RepoGenerator};

/// A generator-populated repository with the given transient failure rate.
fn flaky_repo(name: &str, capability: Capability, rate: f64, n: usize) -> SimulatedRepository {
    let mut repo = SimulatedRepository::new(name, Representation::Relational, capability)
        .with_transient_failures(rate, 0x7E57);
    // repogen's error_rate shapes the *data* (ambiguity noise); the
    // transient rate shapes the *transport*. Exercise both.
    let mut gen =
        RepoGenerator::new(GeneratorConfig { seed: 11, error_rate: 0.4, ..Default::default() });
    gen.populate(&mut repo, n);
    repo
}

#[test]
fn refresh_retries_flaky_sources_with_bounded_backoff() {
    let mut w = Warehouse::new().unwrap();
    // ~40% of snapshot requests fail; 3 attempts make a round succeeding
    // overwhelmingly likely across several refreshes.
    w.add_source(flaky_repo("flaky-poll", Capability::Queryable, 0.4, 25)).unwrap();

    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: std::time::Duration::from_micros(100),
        max_backoff: std::time::Duration::from_millis(2),
    };
    let report = w.refresh_with_retry(&policy).unwrap();
    assert_eq!(report.deltas, 25, "initial refresh must see every record");
    assert!(report.failed_sources.is_empty(), "8 attempts at rate 0.4 must get through");

    // Retries are observable: failed attempts are still billed by the
    // source, so requests_served exceeds successful polls.
    let requests = w.source_mut("flaky-poll").unwrap().requests_served();
    assert!(requests >= 1, "at least the successful poll was billed");

    // Mutate, then refresh repeatedly: the pipeline converges despite the
    // fault rate, and retry attempt counts stay bounded per refresh.
    let repo = w.source_mut("flaky-poll").unwrap();
    let rec = genalg_etl::record::SeqRecord::new(
        "NEW1",
        genalg_core::seq::DnaSeq::from_text("ATGGCCTTTAAG").unwrap(),
    );
    repo.apply(ChangeKind::Insert, rec).unwrap();
    let before = w.source_mut("flaky-poll").unwrap().requests_served();
    let mut seen_delta = false;
    for _ in 0..20 {
        let report = w.refresh_with_retry(&policy).unwrap();
        if report.deltas > 0 {
            seen_delta = true;
            break;
        }
    }
    assert!(seen_delta, "the insert must eventually come through");
    let attempts = w.source_mut("flaky-poll").unwrap().requests_served() - before;
    assert!(attempts <= 8 * 20, "attempts are bounded by the policy: {attempts}");
}

#[test]
fn dead_source_is_reported_without_losing_other_sources_deltas() {
    let mut w = Warehouse::new().unwrap();
    w.add_source(flaky_repo("healthy", Capability::Queryable, 0.0, 10)).unwrap();
    // Rate 1.0: every request fails; retries cannot save it.
    w.add_source(flaky_repo("dead", Capability::Queryable, 1.0, 5)).unwrap();

    let report = w.refresh_with_retry(&RetryPolicy::default()).unwrap();
    assert_eq!(report.failed_sources, vec!["dead".to_string()]);
    assert_eq!(report.deltas, 10, "healthy source's deltas are applied regardless");

    // The dead source heals: the next refresh picks up everything it held —
    // the monitor never advanced past the failure, so nothing was lost.
    *w.source_mut("dead").unwrap() = {
        let mut repo =
            SimulatedRepository::new("dead", Representation::Relational, Capability::Queryable);
        let mut gen =
            RepoGenerator::new(GeneratorConfig { seed: 11, error_rate: 0.4, ..Default::default() });
        gen.populate(&mut repo, 5);
        repo
    };
    let report = w.refresh_with_retry(&RetryPolicy::default()).unwrap();
    assert!(report.failed_sources.is_empty());
    assert_eq!(report.deltas, 5, "previously-unreachable records arrive after recovery");
}

#[test]
fn log_monitored_flaky_source_never_skips_log_entries() {
    let mut w = Warehouse::new().unwrap();
    w.add_source(flaky_repo("flaky-log", Capability::Logged, 0.5, 0)).unwrap();

    // Apply a stream of inserts; refresh after each with a tolerant policy.
    // Every record must make it to the warehouse exactly once (log cursors
    // only advance on successful reads).
    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: std::time::Duration::from_micros(50),
        max_backoff: std::time::Duration::from_millis(1),
    };
    let mut total_deltas = 0;
    for i in 0..20 {
        let rec = genalg_etl::record::SeqRecord::new(
            &format!("L{i:03}"),
            genalg_core::seq::DnaSeq::from_text("ATGCATGC").unwrap(),
        );
        w.source_mut("flaky-log").unwrap().apply(ChangeKind::Insert, rec).unwrap();
        let report = w.refresh_with_retry(&policy).unwrap();
        total_deltas += report.deltas;
    }
    // Catch any stragglers from rounds where the source stayed down.
    for _ in 0..10 {
        total_deltas += w.refresh_with_retry(&policy).unwrap().deltas;
    }
    assert_eq!(total_deltas, 20, "each log entry delivered exactly once");
    let count = w.db().execute("SELECT count(*) FROM public.sequences").unwrap().rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(count, 20);
}
