//! # genalg-adapter — the DBMS-specific adapter (Figure 3)
//!
//! "The adapter provides a DBMS-specific coupling mechanism between the
//! ADTs together with their operations in the Genomics Algebra and the DBMS
//! managing the Unifying Database" (§6.2). Concretely, [`Adapter::install`]:
//!
//! 1. registers every genomic data type as an **opaque UDT** in `unidb`
//!    (the engine stores the compact §4.4 encoding and never looks inside),
//!    together with display hooks so query results render biologically;
//! 2. registers every Genomics Algebra operation as an **external
//!    function**, making `SELECT id FROM DNAFragments WHERE
//!    contains(fragment, 'ATTGCCATA')` (§6.3) work verbatim — text
//!    arguments are coerced to sequences where the algebra expects them;
//! 3. offers [`Adapter::attach_kmer_index`] to plug the k-mer index in as a
//!    **user-defined access method** (§6.5) so `contains` predicates become
//!    index probes instead of full scans.
//!
//! The adapter is the *only* component that knows both worlds; neither
//! `genalg-core` nor `unidb` references the other.

use genalg_core::algebra::{KernelAlgebra, SortId, Value};
use genalg_core::compact::{value_from_bytes, value_to_bytes};
use genalg_core::error::GenAlgError;
use genalg_core::index::KmerIndex;
use genalg_core::seq::{DnaSeq, ProteinSeq};
use std::collections::HashMap;
use std::sync::Arc;
use unidb::storage::heap::Rid;
use unidb::{AccessMethod, Database, Datum, DbError, DbResult};

/// Opaque type ids assigned by the engine, keyed by sort.
#[derive(Debug, Clone, Default)]
pub struct TypeIds {
    by_sort: HashMap<SortId, u32>,
    by_id: HashMap<u32, SortId>,
}

impl TypeIds {
    /// Type id for a sort.
    pub fn id(&self, sort: &SortId) -> Option<u32> {
        self.by_sort.get(sort).copied()
    }

    /// Sort for a type id.
    pub fn sort(&self, id: u32) -> Option<&SortId> {
        self.by_id.get(&id)
    }

    /// Type id of the `dna` sort (the most common column type).
    pub fn dna(&self) -> u32 {
        self.id(&SortId::dna()).expect("dna is always registered")
    }
}

/// The installed adapter: algebra handle plus the type-id mapping.
#[derive(Clone)]
pub struct Adapter {
    algebra: Arc<KernelAlgebra>,
    types: TypeIds,
}

/// The operations exposed to SQL, with the name they get in the query
/// language (avoiding collisions with SQL built-ins like `length`).
const SQL_OPS: &[(&str, &str)] = &[
    ("transcribe", "transcribe"),
    ("splice", "splice"),
    ("translate", "translate"),
    ("express", "express"),
    ("reverse_transcribe", "reverse_transcribe"),
    ("decode", "decode"),
    ("complement", "complement"),
    ("reverse_complement", "reverse_complement"),
    ("gc_content", "gc_content"),
    ("length", "seq_length"),
    ("subsequence", "subsequence"),
    ("contains", "contains"),
    ("find", "find_pattern"),
    ("resembles", "resembles"),
    ("local_score", "local_score"),
    ("identity", "seq_identity"),
    ("hamming", "hamming"),
    ("orf_count", "orf_count"),
    ("melting_temperature", "melting_temperature"),
    ("molecular_weight", "molecular_weight"),
    ("gravy", "gravy"),
    ("isoelectric_point", "isoelectric_point"),
    ("longest_orf", "longest_orf"),
    ("sequence_of", "sequence_of"),
    ("gene_id", "gene_id"),
    ("protein_sequence", "protein_sequence"),
    ("mrna_sequence", "mrna_sequence"),
    ("parse_dna", "dna"),
    ("parse_protein", "protein_seq"),
];

impl Adapter {
    /// Register the standard Genomics Algebra with a database.
    pub fn install(db: &Database) -> DbResult<Adapter> {
        Self::install_algebra(db, Arc::new(KernelAlgebra::standard()))
    }

    /// Register a (possibly extended) algebra with a database.
    pub fn install_algebra(db: &Database, algebra: Arc<KernelAlgebra>) -> DbResult<Adapter> {
        let mut types = TypeIds::default();
        for sort in [
            SortId::dna(),
            SortId::rna(),
            SortId::protein_seq(),
            SortId::gene(),
            SortId::primary_transcript(),
            SortId::mrna(),
            SortId::protein(),
            SortId::chromosome(),
            SortId::genome(),
        ] {
            let display = display_hook();
            let id = db.register_opaque_type(sort.name(), Some(display))?;
            types.by_sort.insert(sort.clone(), id);
            types.by_id.insert(id, sort);
        }

        let adapter = Adapter { algebra, types };
        for (op, sql_name) in SQL_OPS {
            let glue = adapter.clone();
            let op = op.to_string();
            db.register_scalar(sql_name, Arc::new(move |args: &[Datum]| glue.call(&op, args)))?;
        }
        // A user-defined aggregate (requirement C14): the longest sequence
        // of a group.
        {
            let glue = adapter.clone();
            db.register_aggregate(
                "longest_seq",
                Arc::new(move || Box::new(LongestSeq { adapter: glue.clone(), best: None })),
            )?;
        }
        Ok(adapter)
    }

    /// The algebra behind this adapter.
    pub fn algebra(&self) -> &KernelAlgebra {
        &self.algebra
    }

    /// The opaque type-id mapping.
    pub fn types(&self) -> &TypeIds {
        &self.types
    }

    /// Convert an algebra value into a datum (GDTs become opaque payloads).
    pub fn to_datum(&self, v: &Value) -> DbResult<Datum> {
        Ok(match v {
            Value::Bool(b) => Datum::Bool(*b),
            Value::Int(i) => Datum::Int(*i),
            Value::Float(f) => Datum::Float(*f),
            Value::Str(s) => Datum::Text(s.clone()),
            gdt => {
                let sort = gdt.sort();
                let id = self.types.id(&sort).ok_or_else(|| {
                    DbError::External(format!("sort {sort} has no registered opaque type"))
                })?;
                let bytes = value_to_bytes(gdt).map_err(external)?;
                Datum::opaque(id, bytes)
            }
        })
    }

    /// Convert a datum into an algebra value.
    pub fn to_value(&self, d: &Datum) -> DbResult<Value> {
        Ok(match d {
            Datum::Bool(b) => Value::Bool(*b),
            Datum::Int(i) => Value::Int(*i),
            Datum::Float(f) => Value::Float(*f),
            Datum::Text(s) => Value::Str(s.clone()),
            Datum::Opaque(id, bytes) => {
                let value = value_from_bytes(bytes).map_err(external)?;
                match self.types.sort(*id) {
                    Some(sort) if *sort == value.sort() => value,
                    Some(sort) => {
                        return Err(DbError::External(format!(
                            "opaque payload decodes to sort {} but column type is {sort}",
                            value.sort()
                        )))
                    }
                    None => return Err(DbError::External(format!("unknown opaque type id {id}"))),
                }
            }
            Datum::Null => return Err(DbError::External("NULL reached the algebra bridge".into())),
            Datum::Blob(_) => {
                return Err(DbError::External("BLOB values have no algebra sort".into()))
            }
        })
    }

    /// Bridge one SQL call into the algebra, coercing text arguments to
    /// sequences when the direct application does not type-check.
    fn call(&self, op: &str, args: &[Datum]) -> DbResult<Datum> {
        if args.iter().any(Datum::is_null) {
            return Ok(Datum::Null);
        }
        let values: Vec<Value> = args.iter().map(|d| self.to_value(d)).collect::<DbResult<_>>()?;
        match self.algebra.apply(op, &values) {
            Ok(v) => self.to_datum(&v),
            Err(GenAlgError::SortMismatch { .. }) | Err(GenAlgError::UnknownOperation(_)) => {
                // Retry with Str arguments promoted to sequences.
                for promote in [promote_str_to_dna, promote_str_to_protein] {
                    if let Some(promoted) = promote(&values) {
                        if let Ok(v) = self.algebra.apply(op, &promoted) {
                            return self.to_datum(&v);
                        }
                    }
                }
                // Report the original resolution failure.
                let err = self.algebra.apply(op, &values).unwrap_err();
                Err(external(err))
            }
            Err(e) => Err(external(e)),
        }
    }

    /// Attach a k-mer access method to `table.column` (a `dna` column), so
    /// `contains(column, pattern)` predicates probe the index.
    pub fn attach_kmer_index(
        &self,
        db: &Database,
        table: &str,
        column: &str,
        k: usize,
    ) -> DbResult<()> {
        let method =
            KmerAccessMethod { adapter: self.clone(), index: KmerIndex::new(k), all: Vec::new() };
        db.register_access_method(table, column, Box::new(method))
    }
}

fn external(e: GenAlgError) -> DbError {
    DbError::External(e.to_string())
}

fn promote_str_to_dna(values: &[Value]) -> Option<Vec<Value>> {
    let mut out = Vec::with_capacity(values.len());
    let mut changed = false;
    for v in values {
        match v {
            Value::Str(s) => match DnaSeq::from_text(s) {
                Ok(d) => {
                    out.push(Value::Dna(d));
                    changed = true;
                }
                Err(_) => out.push(v.clone()),
            },
            other => out.push(other.clone()),
        }
    }
    changed.then_some(out)
}

fn promote_str_to_protein(values: &[Value]) -> Option<Vec<Value>> {
    let mut out = Vec::with_capacity(values.len());
    let mut changed = false;
    for v in values {
        match v {
            Value::Str(s) => match ProteinSeq::from_text(s) {
                Ok(p) => {
                    out.push(Value::ProteinSeq(p));
                    changed = true;
                }
                Err(_) => out.push(v.clone()),
            },
            other => out.push(other.clone()),
        }
    }
    changed.then_some(out)
}

/// Display hook for opaque payloads: decode and render, truncating long
/// sequences for terminal output.
fn display_hook() -> unidb::catalog::DisplayHook {
    Arc::new(|bytes: &[u8]| match value_from_bytes(bytes) {
        Ok(v) => {
            let text = v.render();
            if text.len() > 60 {
                format!("{}…({} chars)", &text[..60], text.len())
            } else {
                text
            }
        }
        Err(_) => format!("<corrupt payload, {} bytes>", bytes.len()),
    })
}

// ---------------------------------------------------------------------------
// k-mer user-defined access method
// ---------------------------------------------------------------------------

fn rid_key(rid: Rid) -> u64 {
    (u64::from(rid.page) << 16) | u64::from(rid.slot)
}

fn key_rid(key: u64) -> Rid {
    Rid { page: (key >> 16) as u32, slot: (key & 0xFFFF) as u16 }
}

/// The genomic index of §6.5, wrapped as a `unidb` access method. Answers
/// `contains(column, pattern)` with a candidate superset (no false
/// negatives); the executor re-checks every candidate.
struct KmerAccessMethod {
    adapter: Adapter,
    index: KmerIndex,
    /// Every indexed rid, for unfilterable patterns.
    all: Vec<Rid>,
}

impl KmerAccessMethod {
    fn decode(&self, value: &Datum) -> Option<DnaSeq> {
        match self.adapter.to_value(value).ok()? {
            Value::Dna(d) => Some(d),
            _ => None,
        }
    }

    fn pattern(&self, args: &[Datum]) -> Option<DnaSeq> {
        match args.first()? {
            Datum::Text(s) => DnaSeq::from_text(s).ok(),
            other => self.decode(other),
        }
    }
}

impl AccessMethod for KmerAccessMethod {
    fn name(&self) -> &str {
        "kmer"
    }

    fn on_insert(&mut self, rid: Rid, value: &Datum) {
        self.all.push(rid);
        if let Some(seq) = self.decode(value) {
            self.index.add(rid_key(rid), &seq);
        }
    }

    fn on_delete(&mut self, rid: Rid, value: &Datum) {
        self.all.retain(|r| *r != rid);
        if self.decode(value).is_some() {
            self.index.remove(rid_key(rid));
        }
    }

    fn supports(&self, func: &str) -> bool {
        func == "contains"
    }

    fn probe(&self, func: &str, args: &[Datum]) -> Option<Vec<Rid>> {
        if func != "contains" {
            return None;
        }
        let pattern = self.pattern(args)?;
        match self.index.candidates(&pattern) {
            Some(keys) => {
                let mut rids: Vec<Rid> = keys.into_iter().map(key_rid).collect();
                rids.sort();
                Some(rids)
            }
            // Unfilterable pattern (short or ambiguous): every row is a
            // candidate; the residual predicate does the work.
            None => Some(self.all.clone()),
        }
    }

    fn selectivity(&self, func: &str, args: &[Datum]) -> Option<f64> {
        if func != "contains" {
            return None;
        }
        let pattern = self.pattern(args)?;
        Some(self.index.estimate_selectivity(&pattern))
    }
}

// ---------------------------------------------------------------------------
// A user-defined aggregate over sequences (C14)
// ---------------------------------------------------------------------------

struct LongestSeq {
    adapter: Adapter,
    best: Option<(usize, Datum)>,
}

impl unidb::expr::func::Accumulator for LongestSeq {
    fn update(&mut self, value: &Datum) -> DbResult<()> {
        if value.is_null() {
            return Ok(());
        }
        let len = match self.adapter.to_value(value)? {
            Value::Dna(d) => d.len(),
            Value::Rna(r) => r.len(),
            Value::ProteinSeq(p) => p.len(),
            Value::Str(s) => s.len(),
            other => {
                return Err(DbError::External(format!(
                    "longest_seq() expects a sequence, got sort {}",
                    other.sort()
                )))
            }
        };
        if self.best.as_ref().is_none_or(|(l, _)| len > *l) {
            self.best = Some((len, value.clone()));
        }
        Ok(())
    }

    fn finish(&self) -> Datum {
        self.best.as_ref().map_or(Datum::Null, |(_, d)| d.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::gdt::Gene;

    fn setup() -> (Database, Adapter) {
        let db = Database::in_memory();
        let adapter = Adapter::install(&db).unwrap();
        (db, adapter)
    }

    #[test]
    fn installs_types_and_functions() {
        let (_db, adapter) = setup();
        assert!(adapter.types().id(&SortId::dna()).is_some());
        assert!(adapter.types().id(&SortId::protein()).is_some());
        assert_eq!(adapter.types().sort(adapter.types().dna()), Some(&SortId::dna()));
    }

    #[test]
    fn paper_flagship_query_works_verbatim() {
        let (db, _) = setup();
        db.execute("CREATE TABLE DNAFragments (id INT, fragment dna)").unwrap();
        db.execute(
            "INSERT INTO DNAFragments VALUES
               (1, dna('GGGATTGCCATAGG')),
               (2, dna('TTTTTTTT')),
               (3, dna('ATTGCCATA'))",
        )
        .unwrap();
        let rs = db
            .execute(
                "SELECT id FROM DNAFragments WHERE contains(fragment, 'ATTGCCATA') ORDER BY id",
            )
            .unwrap();
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn operators_work_in_every_clause() {
        let (db, _) = setup();
        db.execute("CREATE TABLE seqs (id INT, s dna)").unwrap();
        db.execute(
            "INSERT INTO seqs VALUES
               (1, dna('GGCC')), (2, dna('ATAT')), (3, dna('GGAT'))",
        )
        .unwrap();
        // SELECT list.
        let rs = db.execute("SELECT gc_content(s) FROM seqs WHERE id = 1").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Float(1.0));
        // WHERE.
        let rs = db.execute("SELECT count(*) FROM seqs WHERE gc_content(s) > 0.4").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Int(2));
        // ORDER BY.
        let rs = db.execute("SELECT id FROM seqs ORDER BY gc_content(s), id").unwrap();
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        // GROUP BY.
        let rs =
            db.execute("SELECT seq_length(s), count(*) FROM seqs GROUP BY seq_length(s)").unwrap();
        assert_eq!(rs.rows[0], vec![Datum::Int(4), Datum::Int(3)]);
    }

    #[test]
    fn central_dogma_through_sql() {
        let (db, adapter) = setup();
        db.execute("CREATE TABLE genes (id INT, g gene)").unwrap();
        let gene = Gene::builder("g1")
            .sequence(DnaSeq::from_text("ATGGCCTTTAAGGTAACCGGGTTTCACTGA").unwrap())
            .exon(0, 12)
            .exon(21, 30)
            .build()
            .unwrap();
        let payload = adapter.to_datum(&Value::Gene(Box::new(gene))).unwrap();
        // Route the opaque payload in through a registered constructor.
        let datum = payload.clone();
        db.register_scalar("the_gene", Arc::new(move |_| Ok(datum.clone()))).unwrap();
        db.execute("INSERT INTO genes VALUES (1, the_gene())").unwrap();

        let rs = db
            .execute("SELECT protein_sequence(translate(splice(transcribe(g)))) FROM genes")
            .unwrap();
        let value = adapter.to_value(&rs.rows[0][0]).unwrap();
        let Value::ProteinSeq(p) = value else { panic!("expected a protein sequence") };
        assert_eq!(p.to_text(), "MAFKFH");

        // And the one-step form.
        let rs = db.execute("SELECT gene_id(g) FROM genes").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Text("g1".into()));
    }

    #[test]
    fn nulls_propagate_through_operators() {
        let (db, _) = setup();
        db.execute("CREATE TABLE seqs (id INT, s dna)").unwrap();
        db.execute("INSERT INTO seqs VALUES (1, NULL)").unwrap();
        let rs = db.execute("SELECT gc_content(s) FROM seqs").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Null);
    }

    #[test]
    fn type_confusion_is_rejected() {
        let (db, _) = setup();
        db.execute("CREATE TABLE seqs (id INT, s dna)").unwrap();
        // protein_seq payload into a dna column.
        assert!(db.execute("INSERT INTO seqs VALUES (1, protein_seq('MAFK'))").is_err());
        // A non-sequence argument to a sequence operator.
        db.execute("INSERT INTO seqs VALUES (1, dna('ACGT'))").unwrap();
        assert!(db.execute("SELECT gc_content(id) FROM seqs").is_err());
    }

    #[test]
    fn kmer_index_accelerates_contains() {
        let (db, adapter) = setup();
        db.execute("CREATE TABLE frags (id INT, s dna)").unwrap();
        for i in 0..50 {
            let seq = if i % 10 == 0 {
                "CCCCCCCCATTGCCATACCCC".to_string()
            } else {
                "GGGGGGGGGGGGGGGGGGGGGG".to_string()
            };
            db.execute(&format!("INSERT INTO frags VALUES ({i}, dna('{seq}'))")).unwrap();
        }
        // Plan is a scan before attaching, a UDI scan after.
        let plan = db
            .execute("EXPLAIN SELECT id FROM frags WHERE contains(s, 'ATTGCCATA')")
            .unwrap()
            .explain
            .unwrap();
        assert!(plan.contains("SeqScan"), "{plan}");
        let before =
            db.execute("SELECT count(*) FROM frags WHERE contains(s, 'ATTGCCATA')").unwrap();

        adapter.attach_kmer_index(&db, "frags", "s", 6).unwrap();
        let plan = db
            .execute("EXPLAIN SELECT id FROM frags WHERE contains(s, 'ATTGCCATA')")
            .unwrap()
            .explain
            .unwrap();
        assert!(plan.contains("UdiScan"), "{plan}");
        let after =
            db.execute("SELECT count(*) FROM frags WHERE contains(s, 'ATTGCCATA')").unwrap();
        assert_eq!(before.rows, after.rows);
        assert_eq!(after.rows[0][0], Datum::Int(5));

        // Short patterns fall back to checking every row, still correct.
        let rs = db.execute("SELECT count(*) FROM frags WHERE contains(s, 'ATT')").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Int(5));

        // Index survives deletes.
        db.execute("DELETE FROM frags WHERE id = 0").unwrap();
        let rs = db.execute("SELECT count(*) FROM frags WHERE contains(s, 'ATTGCCATA')").unwrap();
        assert_eq!(rs.rows[0][0], Datum::Int(4));
    }

    #[test]
    fn user_defined_aggregate_longest_seq() {
        let (db, adapter) = setup();
        db.execute("CREATE TABLE seqs (grp INT, s dna)").unwrap();
        db.execute(
            "INSERT INTO seqs VALUES
               (1, dna('AT')), (1, dna('ATGGCC')), (2, dna('A'))",
        )
        .unwrap();
        let rs =
            db.execute("SELECT grp, longest_seq(s) FROM seqs GROUP BY grp ORDER BY grp").unwrap();
        let v = adapter.to_value(&rs.rows[0][1]).unwrap();
        assert_eq!(v.render(), "ATGGCC");
    }

    #[test]
    fn resembles_in_sql() {
        let (db, _) = setup();
        db.execute("CREATE TABLE seqs (id INT, s dna)").unwrap();
        db.execute(
            "INSERT INTO seqs VALUES
               (1, dna('ATGGCCTTTAAGGGGCCCAAATTTGGGCCCATAT')),
               (2, dna('GCGCGCGCGCGCGCGCGCGCGCGCGCGCGCGCGC'))",
        )
        .unwrap();
        let rs = db
            .execute(
                "SELECT id FROM seqs \
                 WHERE resembles(s, 'ATGGCCTTTAAGGGGCACAAATTTGGGCCCATAT', 0.9, 0.9)",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Datum::Int(1));
    }

    #[test]
    fn extended_analysis_operators_in_sql() {
        let (db, _) = setup();
        db.execute("CREATE TABLE seqs (id INT, s dna)").unwrap();
        db.execute(
            "INSERT INTO seqs VALUES
               (1, dna('CCATGAAATTTTAACC')),  -- carries a complete ORF
               (2, dna('CCCCCCCCCCCC'))",
        )
        .unwrap();
        let rs = db.execute("SELECT id, longest_orf(s) FROM seqs ORDER BY id").unwrap();
        assert!(rs.rows[0][1].as_int().unwrap() >= 12);
        assert_eq!(rs.rows[1][1].as_int(), Some(0));

        // Isoelectric point over protein sequences, straight from text.
        let rs = db.execute("SELECT isoelectric_point(protein_seq('KKKKKK'))").unwrap();
        assert!(rs.rows[0][0].as_float().unwrap() > 9.0);
        let rs = db.execute("SELECT isoelectric_point(protein_seq('DDDDDD'))").unwrap();
        assert!(rs.rows[0][0].as_float().unwrap() < 4.5);
    }

    #[test]
    fn roundtrip_conversions() {
        let (_db, adapter) = setup();
        for v in [
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(1.5),
            Value::Str("abc".into()),
            Value::Dna(DnaSeq::from_text("ATGCN").unwrap()),
            Value::ProteinSeq(ProteinSeq::from_text("MAFK").unwrap()),
        ] {
            let d = adapter.to_datum(&v).unwrap();
            let back = adapter.to_value(&d).unwrap();
            assert_eq!(back, v);
        }
        assert!(adapter.to_value(&Datum::Null).is_err());
        assert!(adapter.to_value(&Datum::Blob(vec![1])).is_err());
        assert!(adapter.to_value(&Datum::opaque(999, vec![1, 2])).is_err());
    }
}
