//! # genalg-xml — GenAlgXML, the standardized input/output format
//!
//! §6.4: existing XML applications for genomic data (GEML, RiboML,
//! phyloML) "are inappropriate for a representation of the high-level
//! objects of the Genomics Algebra. Hence, we plan to design our own XML
//! application, which we name GenAlgXML." This crate is that application:
//! a self-contained XML dialect covering every genomic data type, with a
//! writer ([`to_xml`]) and parser ([`from_xml`]) that round-trip exactly.
//!
//! ```
//! use genalg_core::algebra::Value;
//! use genalg_core::seq::DnaSeq;
//!
//! let values = vec![Value::Dna(DnaSeq::from_text("ATTGCCATA").unwrap())];
//! let xml = genalg_xml::to_xml(&values);
//! assert!(xml.contains("<dna>ATTGCCATA</dna>"));
//! assert_eq!(genalg_xml::from_xml(&xml).unwrap(), values);
//! ```

use genalg_core::algebra::Value;
use genalg_core::alphabet::Strand;
use genalg_core::error::{GenAlgError, Result};
use genalg_core::gdt::{
    Chromosome, Feature, FeatureKind, Gene, Genome, Interval, Location, Mrna, PrimaryTranscript,
    Protein,
};
use genalg_core::seq::{DnaSeq, ProteinSeq, RnaSeq};

// ---------------------------------------------------------------------------
// A minimal XML tree + parser (elements, attributes, text, comments)
// ---------------------------------------------------------------------------

/// One XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
    pub text: String,
}

impl XmlNode {
    pub fn new(name: &str) -> Self {
        XmlNode { name: name.to_string(), ..Default::default() }
    }

    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    pub fn with_text(mut self, text: &str) -> Self {
        self.text = text.to_string();
        self
    }

    pub fn with_child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    fn required_attr(&self, key: &str) -> Result<&str> {
        self.attr(key).ok_or_else(|| {
            GenAlgError::Other(format!("<{}> missing required attribute {key:?}", self.name))
        })
    }

    fn required_child(&self, name: &str) -> Result<&XmlNode> {
        self.child(name).ok_or_else(|| {
            GenAlgError::Other(format!("<{}> missing required child <{name}>", self.name))
        })
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"").replace("&gt;", ">").replace("&lt;", "<").replace("&amp;", "&")
}

/// Serialize a node tree.
pub fn write_node(node: &XmlNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&node.name);
    for (k, v) in &node.attrs {
        out.push_str(&format!(" {k}=\"{}\"", escape(v)));
    }
    if node.children.is_empty() && node.text.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if node.children.is_empty() {
        out.push_str(&escape(&node.text));
        out.push_str(&format!("</{}>\n", node.name));
        return;
    }
    out.push('\n');
    if !node.text.is_empty() {
        out.push_str(&"  ".repeat(depth + 1));
        out.push_str(&escape(&node.text));
        out.push('\n');
    }
    for c in &node.children {
        write_node(c, depth + 1, out);
    }
    out.push_str(&pad);
    out.push_str(&format!("</{}>\n", node.name));
}

/// Parse one document; returns the root element.
pub fn parse_document(text: &str) -> Result<XmlNode> {
    let mut parser = XmlParser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_prolog();
    let root = parser.parse_element()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(GenAlgError::Other("trailing content after root element".into()));
    }
    Ok(root)
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                self.consume_until(b"?>");
            } else if self.starts_with(b"<!--") {
                self.consume_until(b"-->");
            } else {
                return;
            }
        }
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(prefix)
    }

    fn consume_until(&mut self, marker: &[u8]) {
        while self.pos < self.bytes.len() && !self.starts_with(marker) {
            self.pos += 1;
        }
        self.pos = (self.pos + marker.len()).min(self.bytes.len());
    }

    fn parse_element(&mut self) -> Result<XmlNode> {
        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err(GenAlgError::Other("expected '<'".into()));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut node = XmlNode::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(GenAlgError::Other("malformed self-closing tag".into()));
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(GenAlgError::Other(format!("attribute {key} missing '='")));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(GenAlgError::Other("attribute value must be quoted".into()));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"') {
                        self.pos += 1;
                    }
                    if self.at_end() {
                        return Err(GenAlgError::Other("unterminated attribute value".into()));
                    }
                    let value = unescape(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| GenAlgError::Other("invalid UTF-8 in attribute".into()))?,
                    );
                    self.pos += 1;
                    node.attrs.push((key, value));
                }
                None => return Err(GenAlgError::Other("unexpected end inside tag".into())),
            }
        }
        // Content: text and child elements until the closing tag.
        loop {
            if self.starts_with(b"<!--") {
                self.consume_until(b"-->");
                continue;
            }
            match self.peek() {
                Some(b'<') if self.starts_with(b"</") => {
                    self.pos += 2;
                    let close = self.parse_name()?;
                    if close != node.name {
                        return Err(GenAlgError::Other(format!(
                            "mismatched closing tag </{close}> for <{}>",
                            node.name
                        )));
                    }
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(GenAlgError::Other("malformed closing tag".into()));
                    }
                    self.pos += 1;
                    node.text = node.text.trim().to_string();
                    return Ok(node);
                }
                Some(b'<') => {
                    node.children.push(self.parse_element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'<') {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| GenAlgError::Other("invalid UTF-8 in text".into()))?;
                    node.text.push_str(&unescape(raw));
                }
                None => {
                    return Err(GenAlgError::Other(format!("unclosed element <{}>", node.name)))
                }
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(GenAlgError::Other("expected a name".into()));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| GenAlgError::Other("invalid UTF-8 in name".into()))?
            .to_string())
    }
}

// ---------------------------------------------------------------------------
// Value ↔ GenAlgXML mapping
// ---------------------------------------------------------------------------

/// Serialize algebra values as a GenAlgXML document.
pub fn to_xml(values: &[Value]) -> String {
    let mut root = XmlNode::new("genalgxml").with_attr("version", "1.0");
    for v in values {
        root.children.push(value_node(v));
    }
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_node(&root, 0, &mut out);
    out
}

/// Parse a GenAlgXML document back into algebra values.
pub fn from_xml(text: &str) -> Result<Vec<Value>> {
    let root = parse_document(text)?;
    if root.name != "genalgxml" {
        return Err(GenAlgError::Other(format!(
            "expected <genalgxml> root, found <{}>",
            root.name
        )));
    }
    root.children.iter().map(node_value).collect()
}

fn value_node(v: &Value) -> XmlNode {
    match v {
        Value::Dna(d) => XmlNode::new("dna").with_text(&d.to_text()),
        Value::Rna(r) => XmlNode::new("rna").with_text(&r.to_text()),
        Value::ProteinSeq(p) => XmlNode::new("proteinSequence").with_text(&p.to_text()),
        Value::Gene(g) => gene_node(g),
        Value::Transcript(t) => transcript_node(t),
        Value::Mrna(m) => mrna_node(m),
        Value::Protein(p) => protein_node(p),
        Value::Chromosome(c) => chromosome_node(c),
        Value::Genome(g) => genome_node(g),
        other => {
            XmlNode::new("value").with_attr("sort", other.sort().name()).with_text(&other.render())
        }
    }
}

fn node_value(node: &XmlNode) -> Result<Value> {
    Ok(match node.name.as_str() {
        "dna" => Value::Dna(DnaSeq::from_text(&node.text)?),
        "rna" => Value::Rna(RnaSeq::from_text(&node.text)?),
        "proteinSequence" => Value::ProteinSeq(ProteinSeq::from_text(&node.text)?),
        "gene" => Value::Gene(Box::new(parse_gene(node)?)),
        "transcript" => Value::Transcript(Box::new(parse_transcript(node)?)),
        "mrna" => Value::Mrna(Box::new(parse_mrna(node)?)),
        "protein" => Value::Protein(Box::new(parse_protein(node)?)),
        "chromosome" => Value::Chromosome(Box::new(parse_chromosome(node)?)),
        "genome" => Value::Genome(Box::new(parse_genome(node)?)),
        other => return Err(GenAlgError::Other(format!("unknown GenAlgXML element <{other}>"))),
    })
}

fn strand_str(s: Strand) -> &'static str {
    match s {
        Strand::Forward => "+",
        Strand::Reverse => "-",
    }
}

fn parse_strand(s: &str) -> Result<Strand> {
    match s {
        "+" => Ok(Strand::Forward),
        "-" => Ok(Strand::Reverse),
        other => Err(GenAlgError::Other(format!("bad strand {other:?}"))),
    }
}

fn parse_usize(node: &XmlNode, key: &str) -> Result<usize> {
    node.required_attr(key)?
        .parse()
        .map_err(|_| GenAlgError::Other(format!("<{}> {key} is not a number", node.name)))
}

fn feature_node(f: &Feature) -> XmlNode {
    let mut node = XmlNode::new("feature")
        .with_attr("kind", f.kind.key())
        .with_attr("strand", strand_str(f.location.strand()));
    for seg in f.location.segments() {
        node = node.with_child(
            XmlNode::new("segment")
                .with_attr("start", &seg.start.to_string())
                .with_attr("end", &seg.end.to_string()),
        );
    }
    for (k, v) in f.qualifiers() {
        node = node.with_child(XmlNode::new("qualifier").with_attr("key", k).with_attr("value", v));
    }
    node
}

fn parse_feature(node: &XmlNode) -> Result<Feature> {
    let kind = FeatureKind::from_key(node.required_attr("kind")?);
    let strand = parse_strand(node.required_attr("strand")?)?;
    let mut segments = Vec::new();
    for seg in node.children_named("segment") {
        segments.push(Interval::new(parse_usize(seg, "start")?, parse_usize(seg, "end")?)?);
    }
    let mut f = Feature::new(kind, Location::join(segments, strand)?);
    for q in node.children_named("qualifier") {
        f = f.with_qualifier(q.required_attr("key")?, q.required_attr("value")?);
    }
    Ok(f)
}

fn gene_node(g: &Gene) -> XmlNode {
    let mut node = XmlNode::new("gene")
        .with_attr("id", g.id())
        .with_attr("codeTable", &g.code_table().to_string());
    if let Some(name) = g.name() {
        node = node.with_attr("name", name);
    }
    node = node.with_child(XmlNode::new("sequence").with_text(&g.sequence().to_text()));
    for exon in g.exons() {
        node = node.with_child(
            XmlNode::new("exon")
                .with_attr("start", &exon.start.to_string())
                .with_attr("end", &exon.end.to_string()),
        );
    }
    if let Some(locus) = g.locus() {
        node = node.with_child(
            XmlNode::new("locus")
                .with_attr("chromosome", &locus.chromosome)
                .with_attr("start", &locus.interval.start.to_string())
                .with_attr("end", &locus.interval.end.to_string())
                .with_attr("strand", strand_str(locus.strand)),
        );
    }
    for f in g.features() {
        node = node.with_child(feature_node(f));
    }
    node
}

fn parse_gene(node: &XmlNode) -> Result<Gene> {
    let mut builder = Gene::builder(node.required_attr("id")?);
    if let Some(name) = node.attr("name") {
        builder = builder.name(name);
    }
    if let Some(table) = node.attr("codeTable") {
        builder = builder
            .code_table(table.parse().map_err(|_| GenAlgError::Other("bad codeTable".into()))?);
    }
    builder = builder.sequence(DnaSeq::from_text(&node.required_child("sequence")?.text)?);
    for exon in node.children_named("exon") {
        builder = builder.exon(parse_usize(exon, "start")?, parse_usize(exon, "end")?);
    }
    if let Some(locus) = node.child("locus") {
        builder = builder.locus(
            locus.required_attr("chromosome")?,
            Interval::new(parse_usize(locus, "start")?, parse_usize(locus, "end")?)?,
            parse_strand(locus.required_attr("strand")?)?,
        );
    }
    for f in node.children_named("feature") {
        builder = builder.feature(parse_feature(f)?);
    }
    builder.build()
}

fn transcript_node(t: &PrimaryTranscript) -> XmlNode {
    let mut node = XmlNode::new("transcript")
        .with_attr("geneId", t.gene_id())
        .with_attr("codeTable", &t.code_table().to_string())
        .with_child(XmlNode::new("sequence").with_text(&t.sequence().to_text()));
    for exon in t.exons() {
        node = node.with_child(
            XmlNode::new("exon")
                .with_attr("start", &exon.start.to_string())
                .with_attr("end", &exon.end.to_string()),
        );
    }
    node
}

fn parse_transcript(node: &XmlNode) -> Result<PrimaryTranscript> {
    let seq = RnaSeq::from_text(&node.required_child("sequence")?.text)?;
    let mut exons = Vec::new();
    for exon in node.children_named("exon") {
        exons.push(Interval::new(parse_usize(exon, "start")?, parse_usize(exon, "end")?)?);
    }
    let table = node
        .attr("codeTable")
        .map_or(Ok(1), |t| t.parse().map_err(|_| GenAlgError::Other("bad codeTable".into())))?;
    PrimaryTranscript::new(node.required_attr("geneId")?, seq, exons, table)
}

fn mrna_node(m: &Mrna) -> XmlNode {
    let mut node = XmlNode::new("mrna")
        .with_attr("geneId", m.gene_id())
        .with_attr("codeTable", &m.code_table().to_string())
        .with_child(XmlNode::new("sequence").with_text(&m.sequence().to_text()));
    if let Some(cds) = m.cds() {
        node = node
            .with_attr("cdsStart", &cds.start.to_string())
            .with_attr("cdsEnd", &cds.end.to_string());
    }
    node
}

fn parse_mrna(node: &XmlNode) -> Result<Mrna> {
    let seq = RnaSeq::from_text(&node.required_child("sequence")?.text)?;
    let cds = match (node.attr("cdsStart"), node.attr("cdsEnd")) {
        (Some(s), Some(e)) => Some(Interval::new(
            s.parse().map_err(|_| GenAlgError::Other("bad cdsStart".into()))?,
            e.parse().map_err(|_| GenAlgError::Other("bad cdsEnd".into()))?,
        )?),
        _ => None,
    };
    let table = node
        .attr("codeTable")
        .map_or(Ok(1), |t| t.parse().map_err(|_| GenAlgError::Other("bad codeTable".into())))?;
    Mrna::new(node.required_attr("geneId")?, seq, cds, table)
}

fn protein_node(p: &Protein) -> XmlNode {
    let mut node = XmlNode::new("protein").with_attr("id", p.id());
    if let Some(name) = p.name() {
        node = node.with_attr("name", name);
    }
    if let Some(org) = p.organism() {
        node = node.with_attr("organism", org);
    }
    node = node.with_child(XmlNode::new("sequence").with_text(&p.sequence().to_text()));
    for f in p.features() {
        node = node.with_child(feature_node(f));
    }
    node
}

fn parse_protein(node: &XmlNode) -> Result<Protein> {
    let seq = ProteinSeq::from_text(&node.required_child("sequence")?.text)?;
    let mut p = Protein::new(node.required_attr("id")?, seq);
    if let Some(name) = node.attr("name") {
        p = p.with_name(name);
    }
    if let Some(org) = node.attr("organism") {
        p = p.with_organism(org);
    }
    for f in node.children_named("feature") {
        p = p.with_feature(parse_feature(f)?);
    }
    Ok(p)
}

fn chromosome_node(c: &Chromosome) -> XmlNode {
    let mut node = XmlNode::new("chromosome")
        .with_attr("name", c.name())
        .with_child(XmlNode::new("sequence").with_text(&c.sequence().to_text()));
    for g in c.genes() {
        node = node.with_child(gene_node(g));
    }
    node
}

fn parse_chromosome(node: &XmlNode) -> Result<Chromosome> {
    let seq = DnaSeq::from_text(&node.required_child("sequence")?.text)?;
    let mut c = Chromosome::new(node.required_attr("name")?, seq);
    for g in node.children_named("gene") {
        c.add_gene(parse_gene(g)?)?;
    }
    Ok(c)
}

fn genome_node(g: &Genome) -> XmlNode {
    let mut node = XmlNode::new("genome").with_attr("organism", g.organism());
    for t in g.taxonomy() {
        node = node.with_child(XmlNode::new("taxon").with_text(t));
    }
    for c in g.chromosomes() {
        node = node.with_child(chromosome_node(c));
    }
    node
}

fn parse_genome(node: &XmlNode) -> Result<Genome> {
    let taxonomy: Vec<String> = node.children_named("taxon").map(|t| t.text.clone()).collect();
    let lineage: Vec<&str> = taxonomy.iter().map(String::as_str).collect();
    let mut g = Genome::new(node.required_attr("organism")?).with_taxonomy(&lineage);
    for c in node.children_named("chromosome") {
        g.add_chromosome(parse_chromosome(c)?)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::gdt::GenomicLocus;

    fn sample_gene() -> Gene {
        Gene::builder("g1")
            .name("demo & more")
            .sequence(DnaSeq::from_text("ATGGCCTTTAAGGTAACCGGGTTTCACTGA").unwrap())
            .exon(0, 12)
            .exon(21, 30)
            .locus("chr1", Interval::new(100, 130).unwrap(), Strand::Reverse)
            .code_table(11)
            .feature(
                Feature::new(
                    FeatureKind::Cds,
                    Location::join(
                        vec![Interval::new(0, 12).unwrap(), Interval::new(21, 30).unwrap()],
                        Strand::Forward,
                    )
                    .unwrap(),
                )
                .with_qualifier("product", "a \"quoted\" <thing>"),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn sequence_values_roundtrip() {
        let values = vec![
            Value::Dna(DnaSeq::from_text("ATGCRYN").unwrap()),
            Value::Rna(RnaSeq::from_text("AUGGCC").unwrap()),
            Value::ProteinSeq(ProteinSeq::from_text("MAFK*").unwrap()),
        ];
        let xml = to_xml(&values);
        assert!(xml.starts_with("<?xml"));
        assert_eq!(from_xml(&xml).unwrap(), values);
    }

    #[test]
    fn gene_roundtrip_with_escaping() {
        let gene = sample_gene();
        let xml = to_xml(&[Value::Gene(Box::new(gene.clone()))]);
        assert!(xml.contains("&amp;"), "ampersand in name must be escaped");
        assert!(xml.contains("&quot;"), "quote in qualifier must be escaped");
        let back = from_xml(&xml).unwrap();
        assert_eq!(back, vec![Value::Gene(Box::new(gene))]);
    }

    #[test]
    fn dogma_objects_roundtrip() {
        let gene = sample_gene();
        let t = genalg_core::dogma::transcribe(&gene).unwrap();
        let m = genalg_core::dogma::splice(&t).unwrap();
        let code = genalg_core::codon::GeneticCode::by_id(11).unwrap();
        let p = genalg_core::dogma::translate(&m, &code).unwrap();
        let values = vec![
            Value::Transcript(Box::new(t)),
            Value::Mrna(Box::new(m)),
            Value::Protein(Box::new(p.clone())),
            Value::Protein(Box::new(p.with_name("named").with_organism("E. coli"))),
        ];
        let xml = to_xml(&values);
        assert_eq!(from_xml(&xml).unwrap(), values);
    }

    #[test]
    fn chromosome_and_genome_roundtrip() {
        let mut chr = Chromosome::new("chr1", DnaSeq::from_text("CCATGAAATAACC").unwrap());
        let gene = Gene::builder("g1")
            .sequence(DnaSeq::from_text("ATGAAATAA").unwrap())
            .locus("chr1", Interval::new(2, 11).unwrap(), Strand::Forward)
            .build()
            .unwrap();
        chr.add_gene(gene).unwrap();
        let mut genome = Genome::new("Examplia").with_taxonomy(&["Bacteria", "Demo"]);
        genome.add_chromosome(chr).unwrap();
        let values = vec![Value::Genome(Box::new(genome))];
        let xml = to_xml(&values);
        assert_eq!(from_xml(&xml).unwrap(), values);
    }

    #[test]
    fn locus_preserved() {
        let gene = sample_gene();
        let xml = to_xml(&[Value::Gene(Box::new(gene))]);
        let back = from_xml(&xml).unwrap();
        let Value::Gene(g) = &back[0] else { panic!() };
        assert_eq!(
            g.locus(),
            Some(&GenomicLocus {
                chromosome: "chr1".into(),
                interval: Interval::new(100, 130).unwrap(),
                strand: Strand::Reverse,
            })
        );
        assert_eq!(g.code_table(), 11);
    }

    #[test]
    fn parser_handles_prolog_comments_and_whitespace() {
        let xml = "<?xml version=\"1.0\"?>\n<!-- a comment -->\n<genalgxml version=\"1.0\">\n  <!-- inner -->\n  <dna>ATGC</dna>\n</genalgxml>\n";
        let values = from_xml(xml).unwrap();
        assert_eq!(values, vec![Value::Dna(DnaSeq::from_text("ATGC").unwrap())]);
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(from_xml("<genalgxml><dna>ATGC</genalgxml>").is_err(), "mismatched tag");
        assert!(from_xml("<wrongroot/>").is_err());
        assert!(from_xml("<genalgxml><mystery/></genalgxml>").is_err());
        assert!(from_xml("<genalgxml><dna>AT!C</dna></genalgxml>").is_err(), "bad symbol");
        assert!(from_xml("<genalgxml><gene id=\"x\"/></genalgxml>").is_err(), "gene w/o sequence");
        assert!(from_xml("not xml at all").is_err());
        assert!(from_xml("<genalgxml></genalgxml>x").is_err(), "trailing content");
    }

    #[test]
    fn self_closing_and_attributes() {
        let node = parse_document("<a x=\"1\" y=\"two &amp; three\"><b/><c>text</c></a>").unwrap();
        assert_eq!(node.attr("x"), Some("1"));
        assert_eq!(node.attr("y"), Some("two & three"));
        assert_eq!(node.children.len(), 2);
        assert_eq!(node.child("c").unwrap().text, "text");
        assert!(node.child("b").unwrap().children.is_empty());
    }
}
