//! # genalg — the Genomics Algebra system, behind one crate
//!
//! A faithful, from-scratch implementation of Hammer & Schneider's
//! *Genomics Algebra* (CIDR 2003): an extensible algebra of genomic data
//! types and operations ([`core`]), embedded as abstract data types into an
//! extensible relational DBMS ([`unidb`]) through a DBMS-specific adapter
//! ([`adapter`]), fed by an ETL pipeline with per-source change detection
//! ([`etl`]), queried through extended SQL or the Biological Query Language
//! ([`bql`]), and exchanged as GenAlgXML ([`xml`]). The query-driven
//! integration baseline the paper argues against is implemented too
//! ([`mediator`]), so the architectural claim is measurable.
//!
//! ## The five-minute tour
//!
//! ```
//! use genalg::prelude::*;
//!
//! // 1. The kernel algebra stands alone (no database needed).
//! let gene = Gene::builder("demo")
//!     .sequence(DnaSeq::from_text("ATGGCCTTTAAGGTAACCGGGTTTCACTGA").unwrap())
//!     .exon(0, 12)
//!     .exon(21, 30)
//!     .build()
//!     .unwrap();
//! let protein = express(&gene).unwrap();
//! assert_eq!(protein.sequence().to_text(), "MAFKFH");
//!
//! // 2. Plugged into the Unifying Database, the paper's §6.3 query runs
//! //    verbatim.
//! let db = Database::in_memory();
//! let _adapter = Adapter::install(&db).unwrap();
//! db.execute("CREATE TABLE DNAFragments (id INT, fragment dna)").unwrap();
//! db.execute("INSERT INTO DNAFragments VALUES (1, dna('GGATTGCCATAGG'))").unwrap();
//! let rs = db
//!     .execute("SELECT id FROM DNAFragments WHERE contains(fragment, 'ATTGCCATA')")
//!     .unwrap();
//! assert_eq!(rs.rows[0][0].as_int(), Some(1));
//! ```

pub use genalg_adapter as adapter;
pub use genalg_bql as bql;
pub use genalg_core as core;
pub use genalg_etl as etl;
pub use genalg_mediator as mediator;
pub use genalg_ontology as ontology;
pub use genalg_repogen as repogen;
pub use genalg_xml as xml;
pub use unidb;

/// One import for the whole system.
pub mod prelude {
    pub use genalg_adapter::Adapter;
    pub use genalg_bql::{self as bql, QueryBuilder};
    pub use genalg_core::prelude::*;
    pub use genalg_etl::delta::ChangeKind;
    pub use genalg_etl::integrate::{reconcile, TrustModel};
    pub use genalg_etl::loader::Loader;
    pub use genalg_etl::record::SeqRecord;
    pub use genalg_etl::refresh::{RefreshReport, RetryPolicy, Warehouse};
    pub use genalg_etl::source::{Capability, Representation, SimulatedRepository};
    pub use genalg_mediator::Mediator;
    pub use genalg_ontology::{standard_ontology, Ontology};
    pub use genalg_repogen::{GeneratorConfig, RepoGenerator};
    pub use unidb::catalog::Role;
    pub use unidb::{Database, Datum, ResultSet};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn the_whole_stack_composes() {
        // Ontology ⇄ algebra coherence.
        let ontology = standard_ontology();
        let algebra = genalg_core::algebra::KernelAlgebra::standard();
        ontology.verify_algebra(&algebra).unwrap();

        // Warehouse end to end.
        let mut w = Warehouse::new().unwrap();
        w.add_source(SimulatedRepository::new(
            "genbank-sim",
            Representation::FlatFile,
            Capability::NonQueryable,
        ))
        .unwrap();
        let mut gen = RepoGenerator::new(GeneratorConfig { seed: 1, ..Default::default() });
        for rec in gen.records(20) {
            w.source_mut("genbank-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
        }
        let report = w.refresh().unwrap();
        assert_eq!(report.upserted, 20);

        // BQL over the warehouse.
        let rs = bql::run(w.db(), "COUNT SEQUENCES BY organism").unwrap();
        assert!(!rs.is_empty());

        // GenAlgXML out of query results.
        let rs = w.db().execute("SELECT seq FROM public.sequences LIMIT 1").unwrap();
        let value = w.adapter().to_value(&rs.rows[0][0]).unwrap();
        let xml = genalg_xml::to_xml(std::slice::from_ref(&value));
        assert_eq!(genalg_xml::from_xml(&xml).unwrap(), vec![value]);
    }
}
