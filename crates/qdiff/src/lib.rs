//! # qdiff — differential query fuzzing for the Unifying Database
//!
//! A seeded generator produces random schemas, datasets, and SQL
//! statements; every statement runs through the real unidb
//! parser/planner/executor **and** through an independent reference oracle
//! ([`oracle`]) — a naive tuple-at-a-time interpreter over in-memory rows
//! that implements only the documented semantics contract (three-valued
//! logic, NULLS LAST under ascending ORDER BY, `sum`/`avg` i128
//! accumulation, LIKE with ESCAPE, …; see DESIGN.md). Any disagreement is
//! a [`Divergence`]; the [`mod@shrink`] module then minimizes the scenario and
//! the CLI dumps a reproducible `.sql` artifact.
//!
//! The whole pipeline is deterministic per seed: same seed, same schema,
//! same rows, same statements, same verdict.
//!
//! ## What the generator deliberately avoids
//!
//! The oracle executes statements in a different row order than the
//! engine's heap scan, so generated statements are restricted to forms
//! whose *outcome* is order-independent:
//!
//! * `sum`/`avg` only over INT columns — float accumulation order matters,
//!   and UPDATEs relocate heap rows;
//! * DML assignments are literals or same-type column copies, so an
//!   UPDATE can never fail halfway through (engine updates are not atomic
//!   per statement);
//! * WHERE predicates are error-free by construction (no arithmetic that
//!   can overflow, division only by non-zero literals) because predicate
//!   pushdown legitimately changes *which rows* a sub-predicate is
//!   evaluated on. SELECT-list expressions have no such restriction: both
//!   sides evaluate them on the same surviving rows, so error outcomes
//!   agree.

pub mod diff;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod txn;

pub use diff::{check_scenario, check_scenario_with_parallelism, Divergence};
pub use gen::{gen_scenario, gen_scenario_with_profile, Profile};
pub use shrink::shrink;
pub use txn::{check_txn_scenario, gen_txn_scenario, shrink_txn, TxnDivergence, TxnScenario};

use std::cmp::Ordering;

/// A generated value. Mirrors the subset of `unidb::Datum` the fuzzer
/// exercises (no BLOB / opaque values — those have no literal syntax).
#[derive(Clone, Debug)]
pub enum Val {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
}

impl Val {
    pub fn is_null(&self) -> bool {
        matches!(self, Val::Null)
    }

    /// Mirror of `Datum::total_cmp`: NULL first, then BOOL, then numbers
    /// (Int/Float compared by value, as f64 across types), then TEXT.
    pub fn total_cmp(&self, other: &Val) -> Ordering {
        fn rank(v: &Val) -> u8 {
            match v {
                Val::Null => 0,
                Val::Bool(_) => 1,
                Val::Int(_) | Val::Float(_) => 2,
                Val::Text(_) => 3,
            }
        }
        match (self, other) {
            (Val::Null, Val::Null) => Ordering::Equal,
            (Val::Bool(a), Val::Bool(b)) => a.cmp(b),
            (Val::Int(a), Val::Int(b)) => a.cmp(b),
            (Val::Float(a), Val::Float(b)) => a.total_cmp(b),
            (Val::Int(a), Val::Float(b)) => (*a as f64).total_cmp(b),
            (Val::Float(a), Val::Int(b)) => a.total_cmp(&(*b as f64)),
            (Val::Text(a), Val::Text(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Render as a SQL literal.
    pub fn render(&self) -> String {
        match self {
            Val::Null => "NULL".into(),
            Val::Bool(b) => b.to_string(),
            Val::Int(i) => i.to_string(),
            // `{:?}` keeps a decimal point or exponent so the literal lexes
            // back as a FLOAT, not an INT.
            Val::Float(f) => format!("{f:?}"),
            Val::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

/// Column types the fuzzer generates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColTy {
    Int,
    Float,
    Text,
    Bool,
}

impl ColTy {
    pub fn sql_name(self) -> &'static str {
        match self {
            ColTy::Int => "INT",
            ColTy::Float => "FLOAT",
            ColTy::Text => "TEXT",
            ColTy::Bool => "BOOL",
        }
    }
}

#[derive(Clone, Debug)]
pub struct ColSpec {
    pub name: String,
    pub ty: ColTy,
    pub nullable: bool,
}

#[derive(Clone, Debug)]
pub struct TableSpec {
    pub name: String,
    pub cols: Vec<ColSpec>,
    /// Non-unique B-tree index on this column, if any — changes the plans
    /// the engine picks without changing results.
    pub index_on: Option<usize>,
}

/// One self-contained fuzz case: a schema plus a statement sequence.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub seed: u64,
    pub tables: Vec<TableSpec>,
    pub ops: Vec<Op>,
}

/// Where an UPDATE assignment gets its value.
#[derive(Clone, Debug)]
pub enum SetSrc {
    Lit(Val),
    /// Copy another column of the same row (by column index).
    Col(usize),
}

#[derive(Clone, Debug)]
pub enum Op {
    Insert { table: usize, rows: Vec<Vec<Val>> },
    Update { table: usize, sets: Vec<(usize, SetSrc)>, filter: Option<QExpr> },
    Delete { table: usize, filter: Option<QExpr> },
    Query(Query),
}

/// Scalar expression. Rendered fully parenthesized, so the SQL text has a
/// single possible parse (parser precedence is pinned separately by golden
/// tests in `unidb::sql::parser`).
#[derive(Clone, Debug)]
pub enum QExpr {
    Lit(Val),
    /// Column reference. Column names are unique across the whole scenario,
    /// so references never need table qualification.
    Col(String),
    Neg(Box<QExpr>),
    Not(Box<QExpr>),
    Bin(QOp, Box<QExpr>, Box<QExpr>),
    IsNull {
        expr: Box<QExpr>,
        negated: bool,
    },
    InList {
        expr: Box<QExpr>,
        list: Vec<QExpr>,
        negated: bool,
    },
    Between {
        expr: Box<QExpr>,
        lo: Box<QExpr>,
        hi: Box<QExpr>,
        negated: bool,
    },
    Like {
        expr: Box<QExpr>,
        pattern: String,
        escape: Option<char>,
        negated: bool,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl QOp {
    fn sym(self) -> &'static str {
        match self {
            QOp::And => "AND",
            QOp::Or => "OR",
            QOp::Eq => "=",
            QOp::NotEq => "<>",
            QOp::Lt => "<",
            QOp::LtEq => "<=",
            QOp::Gt => ">",
            QOp::GtEq => ">=",
            QOp::Add => "+",
            QOp::Sub => "-",
            QOp::Mul => "*",
            QOp::Div => "/",
            QOp::Mod => "%",
        }
    }
}

impl QExpr {
    pub fn render(&self) -> String {
        match self {
            QExpr::Lit(v) => v.render(),
            QExpr::Col(name) => name.clone(),
            // The space after `-` keeps `- -2` from lexing as a `--` comment.
            QExpr::Neg(e) => format!("(- {})", e.render()),
            QExpr::Not(e) => format!("(NOT {})", e.render()),
            QExpr::Bin(op, l, r) => format!("({} {} {})", l.render(), op.sym(), r.render()),
            QExpr::IsNull { expr, negated } => {
                format!("({} IS {}NULL)", expr.render(), if *negated { "NOT " } else { "" })
            }
            QExpr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(QExpr::render).collect();
                format!(
                    "({} {}IN ({}))",
                    expr.render(),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            QExpr::Between { expr, lo, hi, negated } => format!(
                "({} {}BETWEEN {} AND {})",
                expr.render(),
                if *negated { "NOT " } else { "" },
                lo.render(),
                hi.render()
            ),
            QExpr::Like { expr, pattern, escape, negated } => format!(
                "({} {}LIKE '{}'{})",
                expr.render(),
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''"),
                escape.map_or(String::new(), |c| format!(" ESCAPE '{c}'"))
            ),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

#[derive(Clone, Debug)]
pub struct JoinSpec {
    pub table: usize,
    pub kind: JoinKind,
    /// Equi-join columns `(left, right)`; `None` only for CROSS.
    pub on: Option<(String, String)>,
}

#[derive(Clone, Debug)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

#[derive(Clone, Debug)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Argument column; `None` renders `count(*)`.
    pub col: Option<String>,
}

#[derive(Clone, Debug)]
pub enum Proj {
    Plain(Vec<QExpr>),
    Agg { group: Vec<String>, aggs: Vec<AggSpec> },
}

#[derive(Clone, Debug)]
pub struct Query {
    pub table: usize,
    pub join: Option<JoinSpec>,
    pub distinct: bool,
    pub proj: Proj,
    pub filter: Option<QExpr>,
    /// `(output column index, ascending)` — ORDER BY always targets the
    /// projection aliases `o0, o1, …`.
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

impl Query {
    /// Number of output columns.
    pub fn out_arity(&self) -> usize {
        match &self.proj {
            Proj::Plain(exprs) => exprs.len(),
            Proj::Agg { group, aggs } => group.len() + aggs.len(),
        }
    }
}

impl Scenario {
    /// DDL statements creating the schema (tables, then indexes).
    pub fn setup_sql(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.tables {
            let cols: Vec<String> = t
                .cols
                .iter()
                .map(|c| {
                    format!(
                        "{} {}{}",
                        c.name,
                        c.ty.sql_name(),
                        if c.nullable { "" } else { " NOT NULL" }
                    )
                })
                .collect();
            out.push(format!("CREATE TABLE {} ({})", t.name, cols.join(", ")));
        }
        for t in &self.tables {
            if let Some(i) = t.index_on {
                out.push(format!("CREATE INDEX ON {} ({})", t.name, t.cols[i].name));
            }
        }
        out
    }

    /// Render one op as SQL.
    pub fn op_sql(&self, op: &Op) -> String {
        match op {
            Op::Insert { table, rows } => {
                let t = &self.tables[*table];
                let tuples: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> = r.iter().map(Val::render).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                format!("INSERT INTO {} VALUES {}", t.name, tuples.join(", "))
            }
            Op::Update { table, sets, filter } => {
                let t = &self.tables[*table];
                let assigns: Vec<String> = sets
                    .iter()
                    .map(|(col, src)| {
                        let rhs = match src {
                            SetSrc::Lit(v) => v.render(),
                            SetSrc::Col(c) => t.cols[*c].name.clone(),
                        };
                        format!("{} = {}", t.cols[*col].name, rhs)
                    })
                    .collect();
                let mut sql = format!("UPDATE {} SET {}", t.name, assigns.join(", "));
                if let Some(f) = filter {
                    sql.push_str(&format!(" WHERE {}", f.render()));
                }
                sql
            }
            Op::Delete { table, filter } => {
                let mut sql = format!("DELETE FROM {}", self.tables[*table].name);
                if let Some(f) = filter {
                    sql.push_str(&format!(" WHERE {}", f.render()));
                }
                sql
            }
            Op::Query(q) => self.query_sql(q),
        }
    }

    fn query_sql(&self, q: &Query) -> String {
        let mut items: Vec<String> = Vec::new();
        match &q.proj {
            Proj::Plain(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    items.push(format!("{} AS o{i}", e.render()));
                }
            }
            Proj::Agg { group, aggs } => {
                for (i, g) in group.iter().enumerate() {
                    items.push(format!("{g} AS o{i}"));
                }
                for (j, a) in aggs.iter().enumerate() {
                    let arg = a.col.as_deref().unwrap_or("*");
                    items.push(format!("{}({arg}) AS o{}", a.func.sql_name(), group.len() + j));
                }
            }
        }
        let mut sql = format!(
            "SELECT {}{} FROM {}",
            if q.distinct { "DISTINCT " } else { "" },
            items.join(", "),
            self.tables[q.table].name
        );
        if let Some(j) = &q.join {
            let right = &self.tables[j.table].name;
            match (j.kind, &j.on) {
                (JoinKind::Cross, _) => sql.push_str(&format!(" CROSS JOIN {right}")),
                (JoinKind::Inner, Some((l, r))) => {
                    sql.push_str(&format!(" INNER JOIN {right} ON {l} = {r}"))
                }
                (JoinKind::Left, Some((l, r))) => {
                    sql.push_str(&format!(" LEFT JOIN {right} ON {l} = {r}"))
                }
                (_, None) => unreachable!("non-cross join always has an ON pair"),
            }
        }
        if let Some(f) = &q.filter {
            sql.push_str(&format!(" WHERE {}", f.render()));
        }
        if let Proj::Agg { group, .. } = &q.proj {
            if !group.is_empty() {
                sql.push_str(&format!(" GROUP BY {}", group.join(", ")));
            }
        }
        if !q.order_by.is_empty() {
            let keys: Vec<String> = q
                .order_by
                .iter()
                .map(|(i, asc)| format!("o{i}{}", if *asc { "" } else { " DESC" }))
                .collect();
            sql.push_str(&format!(" ORDER BY {}", keys.join(", ")));
        }
        if let Some(n) = q.limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        if let Some(m) = q.offset {
            sql.push_str(&format!(" OFFSET {m}"));
        }
        sql
    }

    /// The whole scenario as a runnable SQL script (the artifact format).
    pub fn render_script(&self) -> String {
        let mut out = format!("-- qdiff scenario, seed {}\n", self.seed);
        for s in self.setup_sql() {
            out.push_str(&s);
            out.push_str(";\n");
        }
        for op in &self.ops {
            out.push_str(&self.op_sql(op));
            out.push_str(";\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_render_roundtrips_through_the_lexer() {
        let d = unidb::Database::in_memory();
        for v in [
            Val::Null,
            Val::Bool(true),
            Val::Int(-7),
            Val::Int(i64::MAX),
            Val::Float(0.25),
            Val::Float(1e15),
            Val::Float(-2.5),
            Val::Text("a'b%_é".into()),
        ] {
            let rs = d.execute(&format!("SELECT {} AS x", v.render())).unwrap();
            // The engine's datum must compare equal to the source value.
            let got = crate::diff::datum_to_val(&rs.rows[0][0]).unwrap();
            assert_eq!(got.total_cmp(&v), std::cmp::Ordering::Equal, "{v:?} -> {got:?}");
        }
    }

    #[test]
    fn total_cmp_mirrors_datum() {
        use std::cmp::Ordering::*;
        assert_eq!(Val::Int(3).total_cmp(&Val::Float(3.0)), Equal);
        assert_eq!(Val::Null.total_cmp(&Val::Int(0)), Less);
        assert_eq!(Val::Bool(true).total_cmp(&Val::Int(-99)), Less);
        assert_eq!(Val::Text("a".into()).total_cmp(&Val::Int(9)), Greater);
        // Large ints compare exactly against each other but by f64 value
        // against floats, exactly like Datum.
        assert_eq!(Val::Int(i64::MAX).total_cmp(&Val::Int(i64::MAX - 1)), Greater);
        assert_eq!(Val::Int(i64::MAX).total_cmp(&Val::Float(i64::MAX as f64)), Equal);
    }

    #[test]
    fn negative_literal_renders_without_comment_ambiguity() {
        let e = QExpr::Neg(Box::new(QExpr::Lit(Val::Int(-2))));
        assert_eq!(e.render(), "(- -2)");
        let d = unidb::Database::in_memory();
        let rs = d.execute(&format!("SELECT {} AS x", e.render())).unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(2));
    }
}
