//! Differential fuzzing of interleaved concurrent transactions.
//!
//! A seeded generator produces an *interleaving*: BEGIN / statement /
//! COMMIT / ROLLBACK events spread across up to three transaction slots,
//! mixed with auto-commit statements, all over one table
//! `t (k INT, v INT)` with a unique index on `k`. Every event runs through
//! the real engine's transaction API **and** through an independent
//! snapshot-isolation reference model, and the outcomes — result rows,
//! affected counts, and the *kind* of error (serialization conflict vs
//! constraint violation vs transaction misuse) — must agree event by
//! event.
//!
//! The reference model is the commit-order oracle: it keeps the committed
//! state as a map plus a per-key version stamp (the commit timestamp that
//! last wrote the key), gives each transaction a frozen clone of the
//! committed state as its snapshot, buffers its writes in an overlay, and
//! at COMMIT applies first-committer-wins validation — exactly the
//! documented engine semantics (DESIGN.md "Transactions & MVCC"), but
//! implemented as ~100 lines of map manipulation with no shared code.
//! Statement-level SQL replay would *not* be a sound oracle here: a
//! statement's match set depends on the transaction's snapshot, so the
//! model replays buffered **write-sets** in commit order instead.
//!
//! Events that reference a slot with no open transaction (or BEGIN on an
//! already-open slot) are no-ops on both sides. That makes every
//! subsequence of an interleaving a valid interleaving, which is what lets
//! [`shrink_txn`] minimize divergences by just deleting events.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::btree_map::Entry;
use std::collections::hash_map::Entry as HashEntry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use unidb::{Database, Datum, DbError, ResultSet};

/// Concurrent transaction slots the generator interleaves.
pub const TXN_SLOTS: u8 = 3;
/// Small key space so transactions collide often.
const KEYS: i64 = 8;

/// One statement against the fuzz table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TOp {
    Insert { k: i64, v: i64 },
    Update { k: i64, v: i64 },
    Delete { k: i64 },
    Get { k: i64 },
    Scan,
}

impl TOp {
    fn sql(self) -> String {
        match self {
            TOp::Insert { k, v } => format!("INSERT INTO t VALUES ({k}, {v})"),
            TOp::Update { k, v } => format!("UPDATE t SET v = {v} WHERE k = {k}"),
            TOp::Delete { k } => format!("DELETE FROM t WHERE k = {k}"),
            TOp::Get { k } => format!("SELECT k, v FROM t WHERE k = {k}"),
            TOp::Scan => "SELECT k, v FROM t".into(),
        }
    }

    fn is_read(self) -> bool {
        matches!(self, TOp::Get { .. } | TOp::Scan)
    }
}

/// One step of an interleaving.
#[derive(Clone, Copy, Debug)]
pub enum TEvent {
    /// Open a transaction on a slot (no-op if the slot is already open).
    Begin(u8),
    /// Run a statement inside the slot's open transaction.
    Stmt(u8, TOp),
    Commit(u8),
    Rollback(u8),
    /// Run a statement in auto-commit mode, racing the open transactions.
    Auto(TOp),
}

impl TEvent {
    fn slot(self) -> Option<u8> {
        match self {
            TEvent::Begin(s) | TEvent::Stmt(s, _) | TEvent::Commit(s) | TEvent::Rollback(s) => {
                Some(s)
            }
            TEvent::Auto(_) => None,
        }
    }

    fn describe(self) -> String {
        match self {
            TEvent::Begin(s) => format!("[s{s}] BEGIN"),
            TEvent::Stmt(s, op) => format!("[s{s}] {}", op.sql()),
            TEvent::Commit(s) => format!("[s{s}] COMMIT"),
            TEvent::Rollback(s) => format!("[s{s}] ROLLBACK"),
            TEvent::Auto(op) => format!("[auto] {}", op.sql()),
        }
    }
}

/// A generated interleaving.
#[derive(Clone, Debug)]
pub struct TxnScenario {
    pub seed: u64,
    pub events: Vec<TEvent>,
}

impl TxnScenario {
    /// Render as the artifact format: a commented trace, one line per
    /// event, that a human (or a future replay harness) can follow.
    pub fn render_script(&self) -> String {
        let mut out = format!(
            "-- qdiff txn scenario, seed {}\n\
             -- setup: CREATE TABLE t (k INT, v INT); CREATE UNIQUE INDEX ON t (k)\n",
            self.seed
        );
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(&format!("-- #{i:03} {}\n", ev.describe()));
        }
        out
    }
}

/// What one event produced, reduced to the comparable essentials.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TOutcome {
    /// Query result, sorted (scan order is not pinned).
    Rows(Vec<(i64, i64)>),
    /// DML affected-row count.
    Affected(u64),
    /// Successful BEGIN / COMMIT / ROLLBACK.
    Unit,
    /// An error of the given kind (messages are not compared).
    Fail(ErrKind),
}

/// Error classification — the *kind* is part of the contract (a conflict
/// is retryable, a constraint violation is not), so the oracle checks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrKind {
    Conflict,
    Constraint,
    Txn,
    Other,
}

fn err_kind(e: &DbError) -> ErrKind {
    match e {
        DbError::Conflict(_) => ErrKind::Conflict,
        DbError::Constraint(_) => ErrKind::Constraint,
        DbError::Txn(_) => ErrKind::Txn,
        _ => ErrKind::Other,
    }
}

/// One disagreement between the engine and the SI model.
#[derive(Debug)]
pub struct TxnDivergence {
    /// Index into `scenario.events`, or `events.len()` for the final-state
    /// check after all transactions wound down.
    pub event_index: usize,
    /// Human-readable rendering of that event.
    pub event: String,
    pub detail: String,
}

impl std::fmt::Display for TxnDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event #{}: {}\n  event: {}", self.event_index, self.detail, self.event)
    }
}

// ---------------------------------------------------------------------------
// Reference model: snapshot isolation over a key/value map.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MTxn {
    /// Commit timestamp visible to this transaction.
    snap: u64,
    /// Frozen committed state at BEGIN.
    snap_live: BTreeMap<i64, i64>,
    /// Buffered updates of committed rows (key → new value).
    upd: BTreeMap<i64, i64>,
    /// Buffered deletes of committed rows.
    del: BTreeSet<i64>,
    /// Own inserts still alive (key → value).
    ins: BTreeMap<i64, i64>,
    /// Keys whose *committed* row this transaction updated or deleted —
    /// the write-set first-committer-wins validation ranges over.
    touched: BTreeSet<i64>,
    /// A statement hit a serialization conflict; everything after must
    /// fail until rollback.
    doomed: bool,
}

impl MTxn {
    fn visible(&self, k: i64) -> Option<i64> {
        if let Some(&v) = self.ins.get(&k) {
            Some(v)
        } else if let Some(&v) = self.upd.get(&k) {
            Some(v)
        } else if self.del.contains(&k) {
            None
        } else {
            self.snap_live.get(&k).copied()
        }
    }
}

#[derive(Default)]
struct Model {
    /// Latest committed state.
    committed: BTreeMap<i64, i64>,
    /// Per-key version: the commit timestamp that last wrote (inserted,
    /// updated, or deleted) the key.
    ver: BTreeMap<i64, u64>,
    /// Commit timestamp counter.
    ts: u64,
    open: HashMap<u8, MTxn>,
}

impl Model {
    fn begin(&mut self, slot: u8) {
        self.open.insert(
            slot,
            MTxn { snap: self.ts, snap_live: self.committed.clone(), ..MTxn::default() },
        );
    }

    fn write_key(&mut self, k: i64, v: Option<i64>) {
        self.ts += 1;
        match v {
            Some(v) => {
                self.committed.insert(k, v);
            }
            None => {
                self.committed.remove(&k);
            }
        }
        self.ver.insert(k, self.ts);
    }

    fn auto(&mut self, op: TOp) -> TOutcome {
        match op {
            TOp::Insert { k, v } => {
                if self.committed.contains_key(&k) {
                    return TOutcome::Fail(ErrKind::Constraint);
                }
                self.write_key(k, Some(v));
                TOutcome::Affected(1)
            }
            TOp::Update { k, v } => {
                if self.committed.contains_key(&k) {
                    self.write_key(k, Some(v));
                    TOutcome::Affected(1)
                } else {
                    TOutcome::Affected(0)
                }
            }
            TOp::Delete { k } => {
                if self.committed.contains_key(&k) {
                    self.write_key(k, None);
                    TOutcome::Affected(1)
                } else {
                    TOutcome::Affected(0)
                }
            }
            TOp::Get { k } => {
                TOutcome::Rows(self.committed.get(&k).map(|&v| (k, v)).into_iter().collect())
            }
            TOp::Scan => TOutcome::Rows(self.committed.iter().map(|(&k, &v)| (k, v)).collect()),
        }
    }

    fn stmt(&mut self, slot: u8, op: TOp) -> TOutcome {
        let mut txn = self.open.remove(&slot).expect("stmt on open slot");
        let out = self.stmt_inner(&mut txn, op);
        self.open.insert(slot, txn);
        out
    }

    fn stmt_inner(&self, txn: &mut MTxn, op: TOp) -> TOutcome {
        if txn.doomed {
            return TOutcome::Fail(ErrKind::Conflict);
        }
        // A key is *stale* when the snapshot still sees its old image but
        // a concurrent commit has since rewritten or removed it — the
        // engine serves that image from the version chain and refuses to
        // write through it.
        let key_ver = |k: i64| self.ver.get(&k).copied().unwrap_or(0);
        let stale = |txn: &MTxn, k: i64| txn.snap_live.contains_key(&k) && key_ver(k) > txn.snap;
        match op {
            TOp::Get { k } => TOutcome::Rows(txn.visible(k).map(|v| (k, v)).into_iter().collect()),
            TOp::Scan => {
                let mut rows: BTreeMap<i64, i64> = txn.snap_live.clone();
                for k in &txn.del {
                    rows.remove(k);
                }
                for (&k, &v) in txn.upd.iter().chain(txn.ins.iter()) {
                    rows.insert(k, v);
                }
                TOutcome::Rows(rows.into_iter().collect())
            }
            TOp::Insert { k, v } => {
                if self.committed.contains_key(&k) {
                    if key_ver(k) > txn.snap {
                        // The committed row was claimed after our snapshot:
                        // a duplicate we cannot even see. Retryable.
                        txn.doomed = true;
                        return TOutcome::Fail(ErrKind::Conflict);
                    }
                    if !txn.touched.contains(&k) {
                        // Plain visible duplicate.
                        return TOutcome::Fail(ErrKind::Constraint);
                    }
                    // Our own buffered update/delete owns the committed
                    // row; fall through to the overlay checks.
                } else if stale(txn, k) {
                    // Concurrently deleted, but the old image is still
                    // visible to us — a duplicate in our snapshot.
                    return TOutcome::Fail(ErrKind::Constraint);
                }
                if txn.ins.contains_key(&k) || txn.upd.contains_key(&k) {
                    return TOutcome::Fail(ErrKind::Constraint);
                }
                txn.ins.insert(k, v);
                TOutcome::Affected(1)
            }
            TOp::Update { k, v } => {
                if stale(txn, k) {
                    txn.doomed = true;
                    return TOutcome::Fail(ErrKind::Conflict);
                }
                if txn.visible(k).is_none() {
                    return TOutcome::Affected(0);
                }
                if let Entry::Occupied(mut e) = txn.ins.entry(k) {
                    e.insert(v);
                } else {
                    txn.upd.insert(k, v);
                    txn.touched.insert(k);
                }
                TOutcome::Affected(1)
            }
            TOp::Delete { k } => {
                if stale(txn, k) {
                    txn.doomed = true;
                    return TOutcome::Fail(ErrKind::Conflict);
                }
                if txn.visible(k).is_none() {
                    return TOutcome::Affected(0);
                }
                if txn.ins.remove(&k).is_none() {
                    txn.upd.remove(&k);
                    txn.del.insert(k);
                    txn.touched.insert(k);
                }
                TOutcome::Affected(1)
            }
        }
    }

    fn commit(&mut self, slot: u8) -> TOutcome {
        let txn = self.open.remove(&slot).expect("commit on open slot");
        if txn.doomed {
            return TOutcome::Fail(ErrKind::Conflict);
        }
        if txn.touched.is_empty() && txn.ins.is_empty() {
            return TOutcome::Unit;
        }
        // First-committer-wins: every committed row we wrote must be
        // untouched since our snapshot, and every key we insert must not
        // have been claimed by a commit we cannot see.
        for &k in &txn.touched {
            if self.ver.get(&k).copied().unwrap_or(0) > txn.snap {
                return TOutcome::Fail(ErrKind::Conflict);
            }
        }
        for &k in txn.ins.keys() {
            if self.committed.contains_key(&k) && !txn.touched.contains(&k) {
                return TOutcome::Fail(ErrKind::Conflict);
            }
        }
        self.ts += 1;
        for &k in &txn.del {
            self.committed.remove(&k);
            self.ver.insert(k, self.ts);
        }
        for (&k, &v) in txn.upd.iter().chain(txn.ins.iter()) {
            self.committed.insert(k, v);
            self.ver.insert(k, self.ts);
        }
        TOutcome::Unit
    }

    fn rollback(&mut self, slot: u8) -> TOutcome {
        self.open.remove(&slot);
        TOutcome::Unit
    }
}

// ---------------------------------------------------------------------------
// Engine runner + comparison.
// ---------------------------------------------------------------------------

fn unit_rs(_: ()) -> ResultSet {
    ResultSet { columns: Vec::new(), rows: Vec::new(), affected: 0, explain: None }
}

fn rows_of(rs: &ResultSet) -> Result<Vec<(i64, i64)>, String> {
    let mut out = Vec::with_capacity(rs.rows.len());
    for row in &rs.rows {
        match (row.first(), row.get(1)) {
            (Some(Datum::Int(k)), Some(Datum::Int(v))) => out.push((*k, *v)),
            other => return Err(format!("engine produced non-int row {other:?}")),
        }
    }
    out.sort_unstable();
    Ok(out)
}

fn engine_outcome(
    op: Option<TOp>,
    res: std::thread::Result<Result<ResultSet, DbError>>,
) -> Result<TOutcome, String> {
    match res {
        Err(_) => Err("engine panicked".into()),
        Ok(Err(e)) => Ok(TOutcome::Fail(err_kind(&e))),
        Ok(Ok(rs)) => match op {
            Some(o) if o.is_read() => rows_of(&rs).map(TOutcome::Rows),
            Some(_) => Ok(TOutcome::Affected(rs.affected)),
            None => Ok(TOutcome::Unit),
        },
    }
}

/// Run the interleaving against the real engine and the SI model, event by
/// event, then compare the final committed state after winding down any
/// transactions left open. Returns the first disagreement.
pub fn check_txn_scenario(sc: &TxnScenario) -> Option<TxnDivergence> {
    let db = Database::in_memory();
    for ddl in ["CREATE TABLE t (k INT, v INT)", "CREATE UNIQUE INDEX ON t (k)"] {
        if let Err(e) = db.execute(ddl) {
            return Some(TxnDivergence {
                event_index: 0,
                event: ddl.into(),
                detail: format!("setup failed: {e}"),
            });
        }
    }
    let mut model = Model::default();
    let mut ids: HashMap<u8, u64> = HashMap::new();

    let diverge = |i: usize, ev: TEvent, detail: String| {
        Some(TxnDivergence { event_index: i, event: ev.describe(), detail })
    };

    for (i, &ev) in sc.events.iter().enumerate() {
        let (engine, expected) = match ev {
            TEvent::Begin(s) => {
                if let HashEntry::Vacant(e) = ids.entry(s) {
                    e.insert(db.txn_begin());
                    model.begin(s);
                }
                continue;
            }
            TEvent::Stmt(s, op) => {
                let Some(&id) = ids.get(&s) else { continue };
                let res = catch_unwind(AssertUnwindSafe(|| db.txn_execute(id, &op.sql())));
                (engine_outcome(Some(op), res), model.stmt(s, op))
            }
            TEvent::Commit(s) => {
                let Some(id) = ids.remove(&s) else { continue };
                let res = catch_unwind(AssertUnwindSafe(|| db.txn_commit(id).map(unit_rs)));
                (engine_outcome(None, res), model.commit(s))
            }
            TEvent::Rollback(s) => {
                let Some(id) = ids.remove(&s) else { continue };
                let res = catch_unwind(AssertUnwindSafe(|| db.txn_rollback(id).map(unit_rs)));
                (engine_outcome(None, res), model.rollback(s))
            }
            TEvent::Auto(op) => {
                let res = catch_unwind(AssertUnwindSafe(|| db.execute(&op.sql())));
                (engine_outcome(Some(op), res), model.auto(op))
            }
        };
        let engine = match engine {
            Ok(o) => o,
            Err(msg) => return diverge(i, ev, msg),
        };
        if engine != expected {
            return diverge(i, ev, format!("engine {engine:?}, oracle {expected:?}"));
        }
    }

    // Wind down: roll back dangling transactions on both sides, then the
    // committed states must agree.
    for (_, id) in ids.drain() {
        let _ = db.txn_rollback(id);
    }
    model.open.clear();
    let final_ev = TEvent::Auto(TOp::Scan);
    let res = catch_unwind(AssertUnwindSafe(|| db.execute("SELECT k, v FROM t")));
    let engine = match engine_outcome(Some(TOp::Scan), res) {
        Ok(o) => o,
        Err(msg) => return diverge(sc.events.len(), final_ev, msg),
    };
    let expected = TOutcome::Rows(model.committed.iter().map(|(&k, &v)| (k, v)).collect());
    if engine != expected {
        return diverge(
            sc.events.len(),
            final_ev,
            format!("final state: engine {engine:?}, oracle {expected:?}"),
        );
    }
    None
}

// ---------------------------------------------------------------------------
// Generation + shrinking.
// ---------------------------------------------------------------------------

fn gen_op(rng: &mut StdRng) -> TOp {
    let k = rng.gen_range(0..KEYS);
    match rng.gen_range(0..100u32) {
        0..=29 => TOp::Insert { k, v: rng.gen_range(0..100) },
        30..=54 => TOp::Update { k, v: rng.gen_range(0..100) },
        55..=69 => TOp::Delete { k },
        70..=89 => TOp::Get { k },
        _ => TOp::Scan,
    }
}

/// Deterministically generate an interleaving from a seed.
pub fn gen_txn_scenario(seed: u64) -> TxnScenario {
    // Domain-separated from the scalar scenario stream so seed N of each
    // sweep exercises different ground.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7178_6469_6666_7478);
    let mut events = Vec::new();
    // Seed committed rows so early transactions have something to fight
    // over.
    for _ in 0..rng.gen_range(2..=5usize) {
        events.push(TEvent::Auto(TOp::Insert {
            k: rng.gen_range(0..KEYS),
            v: rng.gen_range(0..100),
        }));
    }
    let mut open: Vec<u8> = Vec::new();
    for _ in 0..rng.gen_range(24..=56usize) {
        let roll = rng.gen_range(0..100u32);
        if roll < 15 && open.len() < TXN_SLOTS as usize {
            let slot = (0..TXN_SLOTS).find(|s| !open.contains(s)).expect("free slot");
            open.push(slot);
            events.push(TEvent::Begin(slot));
        } else if roll < 65 && !open.is_empty() {
            let slot = open[rng.gen_range(0..open.len())];
            events.push(TEvent::Stmt(slot, gen_op(&mut rng)));
        } else if roll < 75 && !open.is_empty() {
            let slot = open.remove(rng.gen_range(0..open.len()));
            events.push(TEvent::Commit(slot));
        } else if roll < 80 && !open.is_empty() {
            let slot = open.remove(rng.gen_range(0..open.len()));
            events.push(TEvent::Rollback(slot));
        } else {
            events.push(TEvent::Auto(gen_op(&mut rng)));
        }
    }
    // Half the scenarios wind down cleanly; the rest leave transactions
    // dangling, exercising the checker's end-of-run rollback.
    if rng.gen_bool(0.5) {
        while let Some(slot) = open.pop() {
            events.push(TEvent::Commit(slot));
        }
    }
    TxnScenario { seed, events }
}

/// ddmin-lite for interleavings: drop every event of one slot, then drop
/// single events (last first), looping to a fixpoint under a probe budget.
/// Sound because events on closed slots are no-ops — every subsequence is
/// a valid interleaving.
pub fn shrink_txn(
    sc: &TxnScenario,
    fails: &mut dyn FnMut(&TxnScenario) -> bool,
    budget: usize,
) -> TxnScenario {
    let mut cur = sc.clone();
    let mut left = budget;
    let probe = |cur: &mut TxnScenario,
                 events: Vec<TEvent>,
                 fails: &mut dyn FnMut(&TxnScenario) -> bool,
                 left: &mut usize| {
        if *left == 0 || events.len() == cur.events.len() {
            return false;
        }
        *left -= 1;
        let cand = TxnScenario { seed: cur.seed, events };
        if fails(&cand) {
            *cur = cand;
            true
        } else {
            false
        }
    };
    loop {
        let mut changed = false;
        for slot in 0..TXN_SLOTS {
            let events: Vec<TEvent> =
                cur.events.iter().filter(|e| e.slot() != Some(slot)).copied().collect();
            changed |= probe(&mut cur, events, fails, &mut left);
        }
        let mut i = cur.events.len();
        while i > 0 {
            i -= 1;
            if i >= cur.events.len() {
                continue;
            }
            let mut events = cur.events.clone();
            events.remove(i);
            changed |= probe(&mut cur, events, fails, &mut left);
        }
        if !changed || left == 0 {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 9, 42] {
            let a = gen_txn_scenario(seed).render_script();
            let b = gen_txn_scenario(seed).render_script();
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn handwritten_conflict_interleaving_agrees() {
        // Two writers race the same row; the first committer wins and the
        // loser's COMMIT must conflict — on both sides.
        let sc = TxnScenario {
            seed: 0,
            events: vec![
                TEvent::Auto(TOp::Insert { k: 1, v: 10 }),
                TEvent::Begin(0),
                TEvent::Begin(1),
                TEvent::Stmt(0, TOp::Update { k: 1, v: 11 }),
                TEvent::Stmt(1, TOp::Update { k: 1, v: 12 }),
                TEvent::Commit(0),
                TEvent::Commit(1),
                TEvent::Auto(TOp::Get { k: 1 }),
            ],
        };
        assert!(check_txn_scenario(&sc).is_none());
        // And directly: the model alone calls the loser a conflict.
        let mut m = Model::default();
        assert_eq!(m.auto(TOp::Insert { k: 1, v: 10 }), TOutcome::Affected(1));
        m.begin(0);
        m.begin(1);
        assert_eq!(m.stmt(0, TOp::Update { k: 1, v: 11 }), TOutcome::Affected(1));
        assert_eq!(m.stmt(1, TOp::Update { k: 1, v: 12 }), TOutcome::Affected(1));
        assert_eq!(m.commit(0), TOutcome::Unit);
        assert_eq!(m.commit(1), TOutcome::Fail(ErrKind::Conflict));
        assert_eq!(m.auto(TOp::Get { k: 1 }), TOutcome::Rows(vec![(1, 11)]));
    }

    #[test]
    fn handwritten_snapshot_interleaving_agrees() {
        // A reader opened before a concurrent commit keeps seeing the old
        // state; statements through stale rows doom the transaction.
        let sc = TxnScenario {
            seed: 0,
            events: vec![
                TEvent::Auto(TOp::Insert { k: 2, v: 20 }),
                TEvent::Begin(0),
                TEvent::Auto(TOp::Update { k: 2, v: 21 }),
                TEvent::Stmt(0, TOp::Get { k: 2 }),    // sees v=20
                TEvent::Stmt(0, TOp::Scan),            // still v=20
                TEvent::Stmt(0, TOp::Delete { k: 2 }), // stale → conflict
                TEvent::Stmt(0, TOp::Get { k: 2 }),    // doomed → conflict
                TEvent::Commit(0),                     // aborted → conflict
                TEvent::Auto(TOp::Get { k: 2 }),       // v=21 survives
            ],
        };
        assert!(check_txn_scenario(&sc).is_none());
    }

    #[test]
    fn shrinker_minimizes_a_synthetic_failure() {
        let sc = gen_txn_scenario(3);
        // Synthetic predicate: "fails" while any Commit event survives.
        let mut fails = |s: &TxnScenario| s.events.iter().any(|e| matches!(e, TEvent::Commit(_)));
        if !fails(&sc) {
            return; // this seed has no commits; nothing to test
        }
        let small = shrink_txn(&sc, &mut fails, 500);
        assert_eq!(small.events.len(), 1, "should shrink to a single Commit event");
        assert!(matches!(small.events[0], TEvent::Commit(_)));
    }
}
