//! Seeded scenario generation.
//!
//! Everything derives deterministically from the seed. The generator is
//! free to produce *error-prone* SELECT-list expressions (overflow,
//! division by zero) — the engine and oracle evaluate them over the same
//! surviving rows, so error outcomes agree — but WHERE predicates and DML
//! assignments are error-free by construction: predicate pushdown changes
//! which rows a sub-predicate sees, and engine UPDATEs are not atomic per
//! statement, so an error there would make outcomes depend on row order.

use crate::{
    AggFunc, AggSpec, ColSpec, ColTy, JoinKind, JoinSpec, Op, Proj, QExpr, QOp, Query, Scenario,
    SetSrc, TableSpec, Val,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel-ish large ints that exercise overflow and i128/f64 widening.
const BIG_INTS: [i64; 4] = [i64::MAX, i64::MAX - 1, i64::MIN + 1, 1 << 62];

/// Exact-in-f64 float pool: no accumulation surprises, no NaN.
const FLOATS: [f64; 10] = [-2.5, -1.0, -0.5, 0.0, 0.25, 0.5, 1.5, 3.5, 10.0, 1e15];

const TEXT_CHARS: [char; 6] = ['a', 'b', 'c', '%', '_', 'é'];

const CMP_OPS: [QOp; 6] = [QOp::Eq, QOp::NotEq, QOp::Lt, QOp::LtEq, QOp::Gt, QOp::GtEq];
const ARITH_OPS: [QOp; 5] = [QOp::Add, QOp::Sub, QOp::Mul, QOp::Div, QOp::Mod];

/// One in-scope column the expression generators can reference.
#[derive(Clone)]
struct EnvCol {
    name: String,
    ty: ColTy,
}

/// Generation profile: tilts the workload mix without changing the
/// number of RNG draws, so a given `(seed, profile)` pair is stable and
/// `Profile::Default` reproduces the historical `gen_scenario` output
/// exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Profile {
    /// The balanced mix: 1–3 tables, ~35% of queries join.
    #[default]
    Default,
    /// Join-pressure: always ≥2 tables, ~85% of queries join, and NULLs
    /// land in nullable columns more often, so NULL join keys (which must
    /// never match under 3VL) get dense differential coverage.
    JoinHeavy,
    /// Scan-pressure: wider tables (up to 8 columns), larger seed
    /// INSERTs, few joins, NULL-rich data, and leaf predicates tilted
    /// toward comparisons and BETWEEN — exactly the shapes zone-map
    /// pruning and sparse column decode act on, so the differential
    /// oracle hammers the pruned-scan path.
    ScanHeavy,
}

impl Profile {
    /// Parse a CLI/env spelling; `None` for an unknown name.
    pub fn from_name(name: &str) -> Option<Profile> {
        match name {
            "default" => Some(Profile::Default),
            "join-heavy" => Some(Profile::JoinHeavy),
            "scan-heavy" => Some(Profile::ScanHeavy),
            _ => None,
        }
    }

    fn min_tables(self) -> usize {
        match self {
            Profile::Default | Profile::ScanHeavy => 1,
            Profile::JoinHeavy => 2,
        }
    }

    fn join_chance(self) -> f64 {
        match self {
            Profile::Default => 0.35,
            Profile::JoinHeavy => 0.85,
            Profile::ScanHeavy => 0.10,
        }
    }

    fn null_chance(self) -> f64 {
        match self {
            Profile::Default => 0.25,
            Profile::JoinHeavy => 0.45,
            Profile::ScanHeavy => 0.55,
        }
    }

    /// Widest table the schema generator may produce.
    fn max_cols(self) -> usize {
        match self {
            Profile::Default | Profile::JoinHeavy => 5,
            Profile::ScanHeavy => 8,
        }
    }

    /// Cap on rows per seed-data INSERT.
    fn seed_rows(self) -> usize {
        match self {
            Profile::Default | Profile::JoinHeavy => 12,
            Profile::ScanHeavy => 30,
        }
    }

    /// Leaf-predicate shape thresholds for one `0..100` roll:
    /// inclusive upper bounds for comparison, IS NULL, IN, and BETWEEN;
    /// the remainder is LIKE. One roll regardless of profile, so the
    /// draw count — and therefore `(seed, profile)` stability — is
    /// unchanged.
    fn pred_bands(self) -> (u32, u32, u32, u32) {
        match self {
            Profile::Default | Profile::JoinHeavy => (44, 59, 74, 89),
            Profile::ScanHeavy => (59, 71, 77, 95),
        }
    }
}

pub fn gen_scenario(seed: u64) -> Scenario {
    gen_scenario_with_profile(seed, Profile::Default)
}

pub fn gen_scenario_with_profile(seed: u64, profile: Profile) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut col_counter = 0usize;

    // Schema: 1–3 tables; column 0 is always INT so joins, indexes, and
    // sum/avg always have a target. `big[t]` marks tables whose INT columns
    // may hold near-i64 values (their columns stay out of filter
    // arithmetic, see module doc).
    let n_tables = rng.gen_range(profile.min_tables()..=3usize);
    let mut tables = Vec::with_capacity(n_tables);
    let mut big = Vec::with_capacity(n_tables);
    for t in 0..n_tables {
        let n_cols = rng.gen_range(2..=profile.max_cols());
        let mut cols = Vec::with_capacity(n_cols);
        for c in 0..n_cols {
            let ty = if c == 0 {
                ColTy::Int
            } else {
                match rng.gen_range(0..100u32) {
                    0..=39 => ColTy::Int,
                    40..=64 => ColTy::Text,
                    65..=84 => ColTy::Float,
                    _ => ColTy::Bool,
                }
            };
            cols.push(ColSpec { name: format!("c{col_counter}"), ty, nullable: rng.gen_bool(0.5) });
            col_counter += 1;
        }
        let index_on = if rng.gen_bool(0.4) {
            let int_cols: Vec<usize> =
                (0..cols.len()).filter(|&i| cols[i].ty == ColTy::Int).collect();
            Some(int_cols[rng.gen_range(0..int_cols.len())])
        } else {
            None
        };
        tables.push(TableSpec { name: format!("t{t}"), cols, index_on });
        big.push(rng.gen_bool(0.2));
    }

    let mut g = Gen { rng, tables: &tables, big: &big, profile };

    let mut ops = Vec::new();
    // Seed data: 1–2 INSERTs per table.
    for t in 0..n_tables {
        for _ in 0..g.rng.gen_range(1..=2usize) {
            let cap = profile.seed_rows();
            ops.push(g.gen_insert(t, cap));
        }
    }
    // Mixed workload.
    for _ in 0..g.rng.gen_range(4..=10usize) {
        let roll = g.rng.gen_range(0..100u32);
        let t = g.rng.gen_range(0..n_tables);
        ops.push(match roll {
            0..=54 => Op::Query(g.gen_query()),
            55..=69 => g.gen_insert(t, 5),
            70..=84 => g.gen_update(t),
            _ => g.gen_delete(t),
        });
    }

    Scenario { seed, tables, ops }
}

struct Gen<'a> {
    rng: StdRng,
    tables: &'a [TableSpec],
    big: &'a [bool],
    profile: Profile,
}

impl Gen<'_> {
    // ---- values ------------------------------------------------------------

    fn gen_value(&mut self, col: &ColSpec, big: bool) -> Val {
        if col.nullable && self.rng.gen_bool(self.profile.null_chance()) {
            return Val::Null;
        }
        match col.ty {
            ColTy::Int => {
                if big && self.rng.gen_bool(0.15) {
                    Val::Int(BIG_INTS[self.rng.gen_range(0..BIG_INTS.len())])
                } else {
                    Val::Int(self.rng.gen_range(-5..=20i64))
                }
            }
            ColTy::Float => Val::Float(FLOATS[self.rng.gen_range(0..FLOATS.len())]),
            ColTy::Text => Val::Text(self.gen_text(5)),
            ColTy::Bool => Val::Bool(self.rng.gen_bool(0.5)),
        }
    }

    fn gen_text(&mut self, max_len: usize) -> String {
        let len = self.rng.gen_range(0..=max_len);
        (0..len).map(|_| TEXT_CHARS[self.rng.gen_range(0..TEXT_CHARS.len())]).collect()
    }

    /// A literal of the given type for use in predicates (never NULL unless
    /// asked; big ints show up so comparisons cover the extremes).
    fn gen_lit(&mut self, ty: ColTy) -> Val {
        match ty {
            ColTy::Int => {
                if self.rng.gen_bool(0.1) {
                    Val::Int(BIG_INTS[self.rng.gen_range(0..BIG_INTS.len())])
                } else {
                    Val::Int(self.rng.gen_range(-5..=20i64))
                }
            }
            ColTy::Float => Val::Float(FLOATS[self.rng.gen_range(0..FLOATS.len())]),
            ColTy::Text => Val::Text(self.gen_text(4)),
            ColTy::Bool => Val::Bool(self.rng.gen_bool(0.5)),
        }
    }

    // ---- DML ---------------------------------------------------------------

    fn gen_insert(&mut self, t: usize, max_rows: usize) -> Op {
        let n = self.rng.gen_range(1..=max_rows);
        let table = &self.tables[t];
        let big = self.big[t];
        let rows =
            (0..n).map(|_| table.cols.iter().map(|c| self.gen_value(c, big)).collect()).collect();
        Op::Insert { table: t, rows }
    }

    fn gen_update(&mut self, t: usize) -> Op {
        let table = &self.tables[t];
        let big = self.big[t];
        let n_sets = self.rng.gen_range(1..=table.cols.len().min(3));
        let mut targets: Vec<usize> = (0..table.cols.len()).collect();
        shuffle(&mut self.rng, &mut targets);
        targets.truncate(n_sets);
        let sets = targets
            .into_iter()
            .map(|col| {
                // Same-type column copy (40%) when one exists whose
                // nullability fits; otherwise a literal.
                let copy_from: Vec<usize> = (0..table.cols.len())
                    .filter(|&c| {
                        c != col
                            && table.cols[c].ty == table.cols[col].ty
                            && (table.cols[col].nullable || !table.cols[c].nullable)
                    })
                    .collect();
                let src = if !copy_from.is_empty() && self.rng.gen_bool(0.4) {
                    SetSrc::Col(copy_from[self.rng.gen_range(0..copy_from.len())])
                } else {
                    SetSrc::Lit(self.gen_value(&table.cols[col], big))
                };
                (col, src)
            })
            .collect();
        let filter = if self.rng.gen_bool(0.7) {
            let env = self.env_of(&[t]);
            Some(self.gen_pred(&env, 2))
        } else {
            None
        };
        Op::Update { table: t, sets, filter }
    }

    fn gen_delete(&mut self, t: usize) -> Op {
        let filter = if self.rng.gen_bool(0.8) {
            let env = self.env_of(&[t]);
            Some(self.gen_pred(&env, 2))
        } else {
            None
        };
        Op::Delete { table: t, filter }
    }

    // ---- queries -----------------------------------------------------------

    fn env_of(&self, tables: &[usize]) -> Vec<EnvCol> {
        tables
            .iter()
            .flat_map(|&t| self.tables[t].cols.iter())
            .map(|c| EnvCol { name: c.name.clone(), ty: c.ty })
            .collect()
    }

    fn gen_query(&mut self) -> Query {
        let left = self.rng.gen_range(0..self.tables.len());
        let join = if self.tables.len() >= 2 && self.rng.gen_bool(self.profile.join_chance()) {
            let mut right = self.rng.gen_range(0..self.tables.len() - 1);
            if right >= left {
                right += 1;
            }
            let kind = match self.rng.gen_range(0..100u32) {
                0..=49 => JoinKind::Inner,
                50..=84 => JoinKind::Left,
                _ => JoinKind::Cross,
            };
            let on = if kind == JoinKind::Cross {
                None
            } else {
                // Column 0 of every table is INT; sometimes pick another
                // INT column for variety.
                let pick_int = |g: &mut Self, t: usize| {
                    let ints: Vec<&ColSpec> =
                        g.tables[t].cols.iter().filter(|c| c.ty == ColTy::Int).collect();
                    ints[g.rng.gen_range(0..ints.len())].name.clone()
                };
                let l = pick_int(self, left);
                let r = pick_int(self, right);
                Some((l, r))
            };
            Some(JoinSpec { table: right, kind, on })
        } else {
            None
        };
        let scope: Vec<usize> = match &join {
            Some(j) => vec![left, j.table],
            None => vec![left],
        };
        let env = self.env_of(&scope);

        let proj = if self.rng.gen_bool(0.3) {
            self.gen_agg_proj(&env)
        } else {
            let n = self.rng.gen_range(1..=4usize);
            Proj::Plain((0..n).map(|_| self.gen_scalar(&env, 2)).collect())
        };
        let distinct = matches!(proj, Proj::Plain(_)) && self.rng.gen_bool(0.2);

        let filter = if self.rng.gen_bool(0.6) { Some(self.gen_pred(&env, 2)) } else { None };

        let arity = match &proj {
            Proj::Plain(e) => e.len(),
            Proj::Agg { group, aggs } => group.len() + aggs.len(),
        };
        let order_by = if self.rng.gen_bool(0.45) {
            let mut idxs: Vec<usize> = (0..arity).collect();
            shuffle(&mut self.rng, &mut idxs);
            idxs.truncate(self.rng.gen_range(1..=arity.min(2)));
            idxs.into_iter().map(|i| (i, self.rng.gen_bool(0.6))).collect()
        } else {
            Vec::new()
        };
        let limit = if self.rng.gen_bool(0.35) { Some(self.rng.gen_range(0..=8u64)) } else { None };
        let offset = if limit.is_some() && self.rng.gen_bool(0.4) || self.rng.gen_bool(0.12) {
            Some(self.rng.gen_range(0..=5u64))
        } else {
            None
        };

        Query { table: left, join, distinct, proj, filter, order_by, limit, offset }
    }

    fn gen_agg_proj(&mut self, env: &[EnvCol]) -> Proj {
        // Group keys: 0–2 non-float columns (float grouping works but adds
        // nothing; -0.0 vs 0.0 is the only interesting case and the value
        // pool avoids it anyway).
        let groupable: Vec<&EnvCol> = env.iter().filter(|c| c.ty != ColTy::Float).collect();
        let n_group = self.rng.gen_range(0..=2usize.min(groupable.len()));
        let mut picks: Vec<usize> = (0..groupable.len()).collect();
        shuffle(&mut self.rng, &mut picks);
        let group: Vec<String> =
            picks.iter().take(n_group).map(|&i| groupable[i].name.clone()).collect();

        let int_cols: Vec<&EnvCol> = env.iter().filter(|c| c.ty == ColTy::Int).collect();
        let n_aggs = self.rng.gen_range(1..=3usize);
        let aggs = (0..n_aggs)
            .map(|_| match self.rng.gen_range(0..6u32) {
                0 => AggSpec { func: AggFunc::Count, col: None },
                1 => AggSpec {
                    func: AggFunc::Count,
                    col: Some(env[self.rng.gen_range(0..env.len())].name.clone()),
                },
                // sum/avg only over INT columns: float accumulation is
                // order-sensitive and heap scan order is not stable.
                2 | 3 => AggSpec {
                    func: if self.rng.gen_bool(0.5) { AggFunc::Sum } else { AggFunc::Avg },
                    col: Some(int_cols[self.rng.gen_range(0..int_cols.len())].name.clone()),
                },
                _ => AggSpec {
                    func: if self.rng.gen_bool(0.5) { AggFunc::Min } else { AggFunc::Max },
                    col: Some(env[self.rng.gen_range(0..env.len())].name.clone()),
                },
            })
            .collect();
        Proj::Agg { group, aggs }
    }

    /// Error-free predicate: comparisons, IS NULL, IN, BETWEEN, LIKE over
    /// raw columns and literals, combined with AND/OR/NOT. No arithmetic,
    /// so no overflow or division errors — see the module doc for why.
    fn gen_pred(&mut self, env: &[EnvCol], depth: usize) -> QExpr {
        if depth > 0 && self.rng.gen_bool(0.45) {
            let l = self.gen_pred(env, depth - 1);
            if self.rng.gen_bool(0.25) {
                return QExpr::Not(Box::new(l));
            }
            let r = self.gen_pred(env, depth - 1);
            let op = if self.rng.gen_bool(0.5) { QOp::And } else { QOp::Or };
            return QExpr::Bin(op, Box::new(l), Box::new(r));
        }
        let col = &env[self.rng.gen_range(0..env.len())];
        let negated = self.rng.gen_bool(0.3);
        let (cmp_hi, is_null_hi, in_hi, between_hi) = self.profile.pred_bands();
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            // Comparison against a literal (10% deliberately cross-typed:
            // total_cmp rank ordering is part of the contract).
            r if r <= cmp_hi => {
                let lit_ty = if self.rng.gen_bool(0.9) {
                    col.ty
                } else {
                    [ColTy::Int, ColTy::Float, ColTy::Text, ColTy::Bool]
                        [self.rng.gen_range(0..4usize)]
                };
                let lit = self.gen_lit(lit_ty);
                let op = CMP_OPS[self.rng.gen_range(0..CMP_OPS.len())];
                QExpr::Bin(op, Box::new(QExpr::Col(col.name.clone())), Box::new(QExpr::Lit(lit)))
            }
            r if r <= is_null_hi => {
                QExpr::IsNull { expr: Box::new(QExpr::Col(col.name.clone())), negated }
            }
            r if r <= in_hi => {
                let n = self.rng.gen_range(1..=4usize);
                let mut list: Vec<QExpr> =
                    (0..n).map(|_| QExpr::Lit(self.gen_lit(col.ty))).collect();
                if self.rng.gen_bool(0.15) {
                    list.push(QExpr::Lit(Val::Null));
                }
                QExpr::InList { expr: Box::new(QExpr::Col(col.name.clone())), list, negated }
            }
            r if r <= between_hi => {
                // NULL bounds on purpose: `x BETWEEN NULL AND hi` must
                // still go FALSE when the non-NULL leg decides.
                let mut lo = self.gen_lit(col.ty);
                let mut hi = self.gen_lit(col.ty);
                if self.rng.gen_bool(0.15) {
                    lo = Val::Null;
                }
                if self.rng.gen_bool(0.15) {
                    hi = Val::Null;
                }
                QExpr::Between {
                    expr: Box::new(QExpr::Col(col.name.clone())),
                    lo: Box::new(QExpr::Lit(lo)),
                    hi: Box::new(QExpr::Lit(hi)),
                    negated,
                }
            }
            _ => {
                // LIKE over a text column if one exists, else fall back to
                // a comparison.
                let text_cols: Vec<&EnvCol> = env.iter().filter(|c| c.ty == ColTy::Text).collect();
                match text_cols.is_empty() {
                    true => QExpr::Bin(
                        QOp::Eq,
                        Box::new(QExpr::Col(col.name.clone())),
                        Box::new(QExpr::Lit(self.gen_lit(col.ty))),
                    ),
                    false => {
                        let tc = text_cols[self.rng.gen_range(0..text_cols.len())];
                        let escape = if self.rng.gen_bool(0.3) { Some('#') } else { None };
                        let pattern = self.gen_pattern(escape);
                        QExpr::Like {
                            expr: Box::new(QExpr::Col(tc.name.clone())),
                            pattern,
                            escape,
                            negated,
                        }
                    }
                }
            }
        }
    }

    /// A LIKE pattern that is always well-formed (no trailing escape — the
    /// trailing-escape error path is pinned by unit tests instead, where
    /// row-order doesn't blur which side errored).
    fn gen_pattern(&mut self, escape: Option<char>) -> String {
        let n = self.rng.gen_range(0..=4usize);
        let mut p = String::new();
        for _ in 0..n {
            match self.rng.gen_range(0..100u32) {
                0..=29 => p.push('%'),
                30..=49 => p.push('_'),
                50..=69 if escape.is_some() => {
                    p.push(escape.unwrap());
                    p.push(['%', '_', 'a', '#'][self.rng.gen_range(0..4usize)]);
                }
                _ => p.push(['a', 'b', 'c', 'é'][self.rng.gen_range(0..4usize)]),
            }
        }
        p
    }

    /// SELECT-list scalar of a random type. May overflow or divide by zero
    /// at runtime — that is the point: both sides see the same rows, so
    /// checked-arithmetic error paths get differential coverage.
    fn gen_scalar(&mut self, env: &[EnvCol], depth: usize) -> QExpr {
        let ty = [ColTy::Int, ColTy::Float, ColTy::Text, ColTy::Bool]
            [self.rng.gen_range(0..100u32) as usize % 4];
        self.gen_typed(env, ty, depth)
    }

    fn gen_typed(&mut self, env: &[EnvCol], ty: ColTy, depth: usize) -> QExpr {
        let cols: Vec<&EnvCol> = env.iter().filter(|c| c.ty == ty).collect();
        if depth == 0 || self.rng.gen_bool(0.35) {
            return if !cols.is_empty() && self.rng.gen_bool(0.7) {
                QExpr::Col(cols[self.rng.gen_range(0..cols.len())].name.clone())
            } else {
                QExpr::Lit(self.gen_lit(ty))
            };
        }
        match ty {
            ColTy::Int => {
                let op = ARITH_OPS[self.rng.gen_range(0..ARITH_OPS.len())];
                let l = self.gen_typed(env, ColTy::Int, depth - 1);
                let r = self.gen_typed(env, ColTy::Int, depth - 1);
                if self.rng.gen_bool(0.15) {
                    QExpr::Neg(Box::new(l))
                } else {
                    QExpr::Bin(op, Box::new(l), Box::new(r))
                }
            }
            ColTy::Float => {
                let op = ARITH_OPS[self.rng.gen_range(0..ARITH_OPS.len())];
                // Mixed int/float operands exercise the f64 coercion path.
                let l = self.gen_typed(env, ColTy::Float, depth - 1);
                let r = if self.rng.gen_bool(0.3) {
                    self.gen_typed(env, ColTy::Int, depth - 1)
                } else {
                    self.gen_typed(env, ColTy::Float, depth - 1)
                };
                QExpr::Bin(op, Box::new(l), Box::new(r))
            }
            ColTy::Text => {
                let l = self.gen_typed(env, ColTy::Text, depth - 1);
                let r = self.gen_typed(env, ColTy::Text, depth - 1);
                QExpr::Bin(QOp::Add, Box::new(l), Box::new(r))
            }
            ColTy::Bool => {
                if self.rng.gen_bool(0.5) {
                    self.gen_pred(env, depth - 1)
                } else {
                    let operand_ty =
                        [ColTy::Int, ColTy::Float, ColTy::Text][self.rng.gen_range(0..3usize)];
                    let op = CMP_OPS[self.rng.gen_range(0..CMP_OPS.len())];
                    let l = self.gen_typed(env, operand_ty, depth - 1);
                    let r = self.gen_typed(env, operand_ty, depth - 1);
                    QExpr::Bin(op, Box::new(l), Box::new(r))
                }
            }
        }
    }
}

/// Fisher–Yates over indices (the shim's `SliceRandom::shuffle` needs a
/// `&mut self` borrow that conflicts with `self.rng` field access in
/// closures, so this standalone helper keeps call sites simple).
fn shuffle(rng: &mut StdRng, v: &mut [usize]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_scenario(42);
        let b = gen_scenario(42);
        assert_eq!(a.render_script(), b.render_script());
        let c = gen_scenario(43);
        assert_ne!(a.render_script(), c.render_script());
    }

    #[test]
    fn scenarios_have_substance() {
        // Across a seed range, the generator actually produces the variety
        // it promises: queries, DML, joins, aggregates, windows.
        let (mut queries, mut dml, mut joins, mut aggs, mut windows) = (0, 0, 0, 0, 0);
        for seed in 0..60 {
            let sc = gen_scenario(seed);
            assert!(!sc.tables.is_empty());
            for op in &sc.ops {
                match op {
                    Op::Query(q) => {
                        queries += 1;
                        joins += q.join.is_some() as usize;
                        aggs += matches!(q.proj, Proj::Agg { .. }) as usize;
                        windows += (q.limit.is_some() || q.offset.is_some()) as usize;
                    }
                    _ => dml += 1,
                }
            }
        }
        assert!(queries > 50, "queries: {queries}");
        assert!(dml > 50, "dml: {dml}");
        assert!(joins > 5, "joins: {joins}");
        assert!(aggs > 10, "aggs: {aggs}");
        assert!(windows > 10, "windows: {windows}");
    }

    #[test]
    fn join_heavy_profile_is_join_heavy() {
        // The profile's whole point: multiple tables every time, a join in
        // most queries, and deterministic per (seed, profile).
        let (mut queries, mut joins) = (0usize, 0usize);
        for seed in 0..60 {
            let sc = gen_scenario_with_profile(seed, Profile::JoinHeavy);
            assert!(sc.tables.len() >= 2, "seed {seed}: join-heavy needs ≥2 tables");
            for op in &sc.ops {
                if let Op::Query(q) = op {
                    queries += 1;
                    joins += q.join.is_some() as usize;
                }
            }
        }
        assert!(joins * 10 > queries * 6, "joins: {joins}/{queries} — expected a clear majority");
        let a = gen_scenario_with_profile(7, Profile::JoinHeavy);
        let b = gen_scenario_with_profile(7, Profile::JoinHeavy);
        assert_eq!(a.render_script(), b.render_script());
        // The default profile is untouched by the profile machinery.
        assert_eq!(
            gen_scenario(7).render_script(),
            gen_scenario_with_profile(7, Profile::Default).render_script()
        );
    }

    #[test]
    fn scan_heavy_profile_is_scan_heavy() {
        // Few joins, predicate-dense queries, wider tables, and more seed
        // rows than the default — the mix zone-map pruning feeds on.
        let (mut queries, mut joins, mut filters) = (0usize, 0usize, 0usize);
        let (mut widest, mut seed_rows) = (0usize, 0usize);
        for seed in 0..60 {
            let sc = gen_scenario_with_profile(seed, Profile::ScanHeavy);
            widest = widest.max(sc.tables.iter().map(|t| t.cols.len()).max().unwrap());
            for op in &sc.ops {
                match op {
                    Op::Query(q) => {
                        queries += 1;
                        joins += q.join.is_some() as usize;
                        filters += q.filter.is_some() as usize;
                    }
                    Op::Insert { rows, .. } => seed_rows += rows.len(),
                    _ => {}
                }
            }
        }
        assert!(joins * 4 < queries, "joins: {joins}/{queries} — expected a small minority");
        assert!(filters * 2 > queries, "filters: {filters}/{queries}");
        assert!(widest > 5, "widest table: {widest} — expected >5 columns somewhere");
        assert!(seed_rows > 60 * 20, "seed rows: {seed_rows}");
        let a = gen_scenario_with_profile(7, Profile::ScanHeavy);
        let b = gen_scenario_with_profile(7, Profile::ScanHeavy);
        assert_eq!(a.render_script(), b.render_script());
    }

    #[test]
    fn every_generated_statement_parses() {
        for seed in 0..30 {
            let sc = gen_scenario(seed);
            for sql in sc.setup_sql() {
                unidb::sql::parser::parse(&sql)
                    .unwrap_or_else(|e| panic!("seed {seed}: DDL failed to parse: {e}\n  {sql}"));
            }
            for op in &sc.ops {
                let sql = sc.op_sql(op);
                unidb::sql::parser::parse(&sql)
                    .unwrap_or_else(|e| panic!("seed {seed}: op failed to parse: {e}\n  {sql}"));
            }
        }
    }
}
