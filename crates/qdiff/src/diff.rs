//! Run a scenario against the real engine and the oracle, and compare.
//!
//! Comparison rules, chosen so that every legitimate source of engine
//! nondeterminism (heap scan order, hash-group order, which rows a LIMIT
//! keeps among ties) is accepted while every genuine disagreement is
//! flagged:
//!
//! * DML: affected-row counts must match exactly.
//! * Queries without LIMIT/OFFSET: results must be equal as **multisets**
//!   (sorted under `Val::total_cmp` and compared pairwise).
//! * ORDER BY: additionally, the engine's rows must actually be sorted —
//!   checked with the NULLS-LAST-ascending comparator over the projected
//!   key columns.
//! * LIMIT/OFFSET: the engine's window must have the clamped expected
//!   size, be a sub-multiset of the oracle's full result, and — when an
//!   ORDER BY pins the window — its key columns must equal the key columns
//!   of the oracle's window at the same offsets.
//! * Errors: both sides erroring counts as agreement (messages are not
//!   compared); an engine panic is always a divergence.

use crate::oracle::{order_by_cmp, rows_equal, OracleDb, OracleOut};
use crate::{Op, Query, Scenario, Val};
use std::cmp::Ordering;
use std::panic::{catch_unwind, AssertUnwindSafe};
use unidb::{Database, Datum};

/// One disagreement between engine and oracle.
#[derive(Debug)]
pub struct Divergence {
    /// Index into `scenario.ops` of the statement that disagreed.
    pub op_index: usize,
    /// The SQL text of that statement.
    pub sql: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op #{}: {}\n  sql: {}", self.op_index, self.detail, self.sql)
    }
}

/// Convert an engine datum to an oracle value. Blob/opaque values are never
/// generated, so hitting one is itself a divergence-worthy surprise.
pub fn datum_to_val(d: &Datum) -> Result<Val, String> {
    match d {
        Datum::Null => Ok(Val::Null),
        Datum::Bool(b) => Ok(Val::Bool(*b)),
        Datum::Int(i) => Ok(Val::Int(*i)),
        Datum::Float(f) => Ok(Val::Float(*f)),
        Datum::Text(s) => Ok(Val::Text(s.clone())),
        other => Err(format!("engine produced unexpected datum {other}")),
    }
}

/// Execute the scenario on a fresh in-memory database and on the oracle,
/// statement by statement. Returns the first divergence, if any.
///
/// The engine's parallelism defaults from the environment
/// (`UNIDB_PARALLELISM`), so CI shards can sweep the same seeds serial and
/// parallel; [`check_scenario_with_parallelism`] pins it explicitly.
pub fn check_scenario(sc: &Scenario) -> Option<Divergence> {
    check_inner(sc, None)
}

/// [`check_scenario`] with the engine's worker-thread count pinned. The
/// oracle is always scalar and single-threaded; running the same scenario
/// at parallelism 1 and >1 against it is what proves morsel-parallel
/// execution is observationally identical to serial.
pub fn check_scenario_with_parallelism(sc: &Scenario, parallelism: usize) -> Option<Divergence> {
    check_inner(sc, Some(parallelism))
}

fn check_inner(sc: &Scenario, parallelism: Option<usize>) -> Option<Divergence> {
    let db = Database::in_memory();
    if let Some(n) = parallelism {
        db.set_parallelism(n);
    }
    for (i, ddl) in sc.setup_sql().iter().enumerate() {
        if let Err(e) = db.execute(ddl) {
            return Some(Divergence {
                op_index: i,
                sql: ddl.clone(),
                detail: format!("setup DDL failed: {e}"),
            });
        }
    }
    let mut oracle = OracleDb::new(sc);
    for (i, op) in sc.ops.iter().enumerate() {
        let sql = sc.op_sql(op);
        // A panic inside the engine (debug overflow, slicing bug, …) is the
        // worst kind of divergence; catch it so the sweep keeps going and
        // the seed gets reported like any other counterexample.
        let engine = catch_unwind(AssertUnwindSafe(|| db.execute(&sql)));
        let expected = oracle.apply(sc, op);
        let detail = match (engine, expected) {
            (Err(_), _) => Some("engine panicked".to_string()),
            (Ok(Err(_)), Err(_)) => None, // both error: agreement
            (Ok(Err(e)), Ok(_)) => Some(format!("engine errored ({e}), oracle succeeded")),
            (Ok(Ok(_)), Err(e)) => Some(format!("oracle errored ({e}), engine succeeded")),
            (Ok(Ok(rs)), Ok(OracleOut::Affected(n))) => {
                if rs.affected == n {
                    None
                } else {
                    Some(format!("affected rows: engine {} vs oracle {n}", rs.affected))
                }
            }
            (Ok(Ok(rs)), Ok(OracleOut::Rows(oracle_rows))) => {
                let Op::Query(q) = op else { unreachable!("rows only come from queries") };
                let converted: Result<Vec<Vec<Val>>, String> =
                    rs.rows.iter().map(|r| r.iter().map(datum_to_val).collect()).collect();
                match converted {
                    Err(e) => Some(e),
                    Ok(engine_rows) => compare_query(q, &engine_rows, &oracle_rows)
                        .err()
                        .or_else(|| analyze_crosscheck(&db, &sql, engine_rows.len(), q)),
                }
            }
        };
        if let Some(detail) = detail {
            return Some(Divergence { op_index: i, sql, detail });
        }
    }
    None
}

/// Re-run a query that already agreed with the oracle under
/// `EXPLAIN ANALYZE` and cross-check the runtime counters themselves:
///
/// * the root operator's `rows_out` must equal the result's row count;
/// * for non-windowed queries (no LIMIT/OFFSET — those may legitimately
///   stop scanning early, at a point that depends on morsel scheduling),
///   the planner's `upper_bound_rows` must dominate both the observed row
///   count and its own `estimate_rows` (the estimate-vs-observed check),
///   and the deterministic counter rendering must be byte-identical at
///   parallelism 1 and 4.
fn analyze_crosscheck(db: &Database, sql: &str, row_count: usize, q: &Query) -> Option<String> {
    let saved = db.parallelism();
    let outcome = (|| {
        let (_, stats) =
            db.explain_analyze(sql).map_err(|e| format!("EXPLAIN ANALYZE failed: {e}"))?;
        if stats.rows_out as usize != row_count {
            return Err(format!(
                "ANALYZE root rows_out {} vs result row count {row_count}",
                stats.rows_out
            ));
        }
        if q.limit.is_none() && q.offset.is_none() {
            let (estimate, upper) =
                db.plan_estimate(sql).map_err(|e| format!("plan_estimate failed: {e}"))?;
            if row_count as f64 > upper + 0.5 {
                return Err(format!(
                    "observed {row_count} rows exceeds planner upper bound {upper}"
                ));
            }
            if estimate > upper * 1.0001 + 1.0 {
                return Err(format!(
                    "planner estimate {estimate} exceeds its own upper bound {upper}"
                ));
            }
            db.set_parallelism(1);
            let (_, s1) = db
                .explain_analyze(sql)
                .map_err(|e| format!("EXPLAIN ANALYZE (parallelism 1) failed: {e}"))?;
            db.set_parallelism(4);
            let (_, s4) = db
                .explain_analyze(sql)
                .map_err(|e| format!("EXPLAIN ANALYZE (parallelism 4) failed: {e}"))?;
            let (c1, c4) = (s1.render_counters(), s4.render_counters());
            if c1 != c4 {
                return Err(format!(
                    "ANALYZE counters diverge at parallelism 1 vs 4:\n{c1}vs\n{c4}"
                ));
            }
        }
        Ok(())
    })();
    db.set_parallelism(saved);
    outcome.err()
}

/// Compare a query's engine rows against the oracle's full (pre-window)
/// result. Public so tests can probe the rules directly.
pub fn compare_query(
    q: &Query,
    engine: &[Vec<Val>],
    oracle_full: &[Vec<Val>],
) -> Result<(), String> {
    let total = oracle_full.len();
    let windowed = q.limit.is_some() || q.offset.is_some();
    let offset = q.offset.unwrap_or(0) as usize;
    let expected_len = if windowed {
        let after_skip = total.saturating_sub(offset);
        match q.limit {
            Some(n) => after_skip.min(n as usize),
            None => after_skip,
        }
    } else {
        total
    };
    if engine.len() != expected_len {
        return Err(format!("row count: engine {} vs expected {expected_len}", engine.len()));
    }

    // ORDER BY: the engine's output must be sorted by the projected keys.
    if !q.order_by.is_empty() {
        for pair in engine.windows(2) {
            if key_cmp(q, &pair[0], &pair[1]) == Ordering::Greater {
                return Err(format!("ORDER BY violated between {:?} and {:?}", pair[0], pair[1]));
            }
        }
    }

    if !windowed {
        // Full comparison: multiset equality.
        if !multiset_eq(engine, oracle_full) {
            return Err(format!(
                "result multiset mismatch: engine {engine:?} vs oracle {oracle_full:?}"
            ));
        }
        return Ok(());
    }

    // Windowed: the engine's rows must all exist in the oracle's full
    // result (with multiplicity)…
    if !multiset_contains(oracle_full, engine) {
        return Err(format!(
            "window rows not a sub-multiset of the full result: engine {engine:?} vs full {oracle_full:?}"
        ));
    }
    // …and when sorted, the window is pinned up to ties: the ORDER BY key
    // columns of the engine window must equal those of the oracle's window
    // (the oracle rows are already sorted).
    if !q.order_by.is_empty() {
        let oracle_window = &oracle_full[offset.min(total)..(offset + expected_len).min(total)];
        for (e, o) in engine.iter().zip(oracle_window) {
            for (idx, _) in &q.order_by {
                if e[*idx].total_cmp(&o[*idx]) != Ordering::Equal {
                    return Err(format!(
                        "window keys differ: engine row {e:?} vs expected keys of {o:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

fn key_cmp(q: &Query, a: &[Val], b: &[Val]) -> Ordering {
    for (idx, asc) in &q.order_by {
        let ord = order_by_cmp(&a[*idx], &b[*idx]);
        let ord = if *asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn row_cmp(a: &[Val], b: &[Val]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn sorted(rows: &[Vec<Val>]) -> Vec<&Vec<Val>> {
    let mut v: Vec<&Vec<Val>> = rows.iter().collect();
    v.sort_by(|a, b| row_cmp(a, b));
    v
}

fn multiset_eq(a: &[Vec<Val>], b: &[Vec<Val>]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    sorted(a).iter().zip(sorted(b)).all(|(x, y)| rows_equal(x, y))
}

/// Is `small` a sub-multiset of `big`?
fn multiset_contains(big: &[Vec<Val>], small: &[Vec<Val>]) -> bool {
    let big = sorted(big);
    let small = sorted(small);
    let mut bi = 0;
    'outer: for s in small {
        while bi < big.len() {
            match row_cmp(big[bi], s) {
                Ordering::Less => bi += 1,
                Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Proj, QExpr};

    fn plain_query(order_by: Vec<(usize, bool)>, limit: Option<u64>, offset: Option<u64>) -> Query {
        Query {
            table: 0,
            join: None,
            distinct: false,
            proj: Proj::Plain(vec![QExpr::Col("a".into())]),
            filter: None,
            order_by,
            limit,
            offset,
        }
    }

    fn rows(vals: &[i64]) -> Vec<Vec<Val>> {
        vals.iter().map(|v| vec![Val::Int(*v)]).collect()
    }

    #[test]
    fn multiset_comparison_ignores_order() {
        let q = plain_query(vec![], None, None);
        assert!(compare_query(&q, &rows(&[3, 1, 2]), &rows(&[1, 2, 3])).is_ok());
        assert!(compare_query(&q, &rows(&[3, 1]), &rows(&[1, 2, 3])).is_err());
        assert!(compare_query(&q, &rows(&[1, 1, 2]), &rows(&[1, 2, 2])).is_err());
    }

    #[test]
    fn order_by_requires_sortedness() {
        let q = plain_query(vec![(0, true)], None, None);
        assert!(compare_query(&q, &rows(&[1, 2, 3]), &rows(&[1, 2, 3])).is_ok());
        assert!(compare_query(&q, &rows(&[2, 1, 3]), &rows(&[1, 2, 3])).is_err());
        // NULLS LAST under ascending order.
        let with_null = vec![vec![Val::Int(1)], vec![Val::Null]];
        assert!(compare_query(&q, &with_null, &with_null).is_ok());
        let null_first = vec![vec![Val::Null], vec![Val::Int(1)]];
        assert!(compare_query(&q, &null_first, &with_null).is_err());
    }

    #[test]
    fn windows_check_count_containment_and_keys() {
        // LIMIT 2 over {1,2,2,3} sorted ascending must yield keys (1, 2).
        let q = plain_query(vec![(0, true)], Some(2), None);
        let full = rows(&[1, 2, 2, 3]);
        assert!(compare_query(&q, &rows(&[1, 2]), &full).is_ok());
        assert!(compare_query(&q, &rows(&[2, 3]), &full).is_err(), "wrong window keys");
        assert!(compare_query(&q, &rows(&[1]), &full).is_err(), "short window");
        assert!(compare_query(&q, &rows(&[1, 9]), &full).is_err(), "foreign row");
        // OFFSET past the end clamps to empty.
        let q = plain_query(vec![(0, true)], Some(5), Some(10));
        assert!(compare_query(&q, &[], &full).is_ok());
        // Unordered LIMIT accepts any sub-multiset of the right size.
        let q = plain_query(vec![], Some(2), None);
        assert!(compare_query(&q, &rows(&[3, 1]), &full).is_ok());
        assert!(compare_query(&q, &rows(&[3, 4]), &full).is_err());
    }
}
