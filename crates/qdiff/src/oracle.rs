//! The reference oracle: a naive, independent interpreter for generated
//! scenarios.
//!
//! Nothing here touches unidb's planner or executor — tables are plain
//! `Vec<Vec<Val>>`, joins are nested loops, aggregation is a linear group
//! scan. The only thing it shares with the engine is the *documented
//! semantics contract* (DESIGN.md): three-valued logic, `Datum::total_cmp`
//! value ordering, NULLS LAST under ascending ORDER BY, i128 `sum`/`avg`
//! accumulation with float widening, LIKE with ESCAPE. If the engine and
//! this interpreter disagree, one of them is wrong — and this one is small
//! enough to audit by eye.

use crate::{AggFunc, AggSpec, JoinKind, Op, Proj, QExpr, QOp, Query, Scenario, SetSrc, Val};
use std::cmp::Ordering;

/// Oracle-side database state: one row store per scenario table.
pub struct OracleDb {
    tables: Vec<Vec<Vec<Val>>>,
}

/// What one op produced.
pub enum OracleOut {
    /// DML: number of affected rows.
    Affected(u64),
    /// Query: the full result *before* LIMIT/OFFSET, sorted when the query
    /// has an ORDER BY. The differ owns the windowing comparison.
    Rows(Vec<Vec<Val>>),
}

impl OracleDb {
    pub fn new(sc: &Scenario) -> Self {
        OracleDb { tables: vec![Vec::new(); sc.tables.len()] }
    }

    /// Execute one op. `Err` models a statement-level SQL error; the differ
    /// treats "both sides errored" as agreement without comparing messages.
    pub fn apply(&mut self, sc: &Scenario, op: &Op) -> Result<OracleOut, String> {
        match op {
            Op::Insert { table, rows } => {
                for r in rows {
                    self.tables[*table].push(r.clone());
                }
                Ok(OracleOut::Affected(rows.len() as u64))
            }
            Op::Update { table, sets, filter } => {
                let names: Vec<String> =
                    sc.tables[*table].cols.iter().map(|c| c.name.clone()).collect();
                let matched = self.matching(*table, &names, filter.as_ref())?;
                for &i in &matched {
                    let old = self.tables[*table][i].clone();
                    for (col, src) in sets {
                        self.tables[*table][i][*col] = match src {
                            SetSrc::Lit(v) => v.clone(),
                            SetSrc::Col(c) => old[*c].clone(),
                        };
                    }
                }
                Ok(OracleOut::Affected(matched.len() as u64))
            }
            Op::Delete { table, filter } => {
                let names: Vec<String> =
                    sc.tables[*table].cols.iter().map(|c| c.name.clone()).collect();
                let matched = self.matching(*table, &names, filter.as_ref())?;
                let n = matched.len() as u64;
                let keep: Vec<Vec<Val>> = self.tables[*table]
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !matched.contains(i))
                    .map(|(_, r)| r.clone())
                    .collect();
                self.tables[*table] = keep;
                Ok(OracleOut::Affected(n))
            }
            Op::Query(q) => self.query(sc, q).map(OracleOut::Rows),
        }
    }

    /// Indices of rows whose filter evaluates to TRUE. Errors if the filter
    /// errors on *any* row — mirroring the engine, which collects matches
    /// before mutating, so a filter error aborts the whole statement.
    fn matching(
        &self,
        table: usize,
        names: &[String],
        filter: Option<&QExpr>,
    ) -> Result<Vec<usize>, String> {
        let mut out = Vec::new();
        for (i, row) in self.tables[table].iter().enumerate() {
            let keep = match filter {
                None => true,
                Some(f) => matches!(eval(f, names, row)?, Val::Bool(true)),
            };
            if keep {
                out.push(i);
            }
        }
        Ok(out)
    }

    fn query(&self, sc: &Scenario, q: &Query) -> Result<Vec<Vec<Val>>, String> {
        // FROM: base rows, joined by nested loop if requested.
        let base = &sc.tables[q.table];
        let mut names: Vec<String> = base.cols.iter().map(|c| c.name.clone()).collect();
        let mut rows: Vec<Vec<Val>> = self.tables[q.table].clone();
        if let Some(j) = &q.join {
            let right_tbl = &sc.tables[j.table];
            let right_names: Vec<String> = right_tbl.cols.iter().map(|c| c.name.clone()).collect();
            let right_rows = &self.tables[j.table];
            let mut joined_names = names.clone();
            joined_names.extend(right_names.clone());
            let mut joined = Vec::new();
            for l in &rows {
                let mut matched = false;
                for r in right_rows {
                    let keep = match (&j.kind, &j.on) {
                        (JoinKind::Cross, _) => true,
                        (_, Some((lc, rc))) => {
                            let lv = resolve(&names, l, lc)
                                .or_else(|| resolve(&right_names, r, lc))
                                .ok_or_else(|| format!("unknown join column {lc}"))?;
                            let rv = resolve(&right_names, r, rc)
                                .or_else(|| resolve(&names, l, rc))
                                .ok_or_else(|| format!("unknown join column {rc}"))?;
                            // SQL equality: NULL keys never match.
                            !lv.is_null() && !rv.is_null() && lv.total_cmp(rv) == Ordering::Equal
                        }
                        (_, None) => return Err("non-cross join without ON".into()),
                    };
                    if keep {
                        matched = true;
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        joined.push(row);
                    }
                }
                if !matched && j.kind == JoinKind::Left {
                    let mut row = l.clone();
                    row.resize(row.len() + right_names.len(), Val::Null);
                    joined.push(row);
                }
            }
            names = joined_names;
            rows = joined;
        }

        // WHERE.
        if let Some(f) = &q.filter {
            let mut kept = Vec::new();
            for row in rows {
                if matches!(eval(f, &names, &row)?, Val::Bool(true)) {
                    kept.push(row);
                }
            }
            rows = kept;
        }

        // Projection or aggregation.
        let mut out: Vec<Vec<Val>> = match &q.proj {
            Proj::Plain(exprs) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in &rows {
                    let mut proj = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        proj.push(eval(e, &names, row)?);
                    }
                    out.push(proj);
                }
                out
            }
            Proj::Agg { group, aggs } => aggregate(&names, &rows, group, aggs)?,
        };

        // DISTINCT: keep the first row of each total_cmp-equal class.
        if q.distinct {
            let mut kept: Vec<Vec<Val>> = Vec::new();
            for row in out {
                if !kept.iter().any(|k| rows_equal(k, &row)) {
                    kept.push(row);
                }
            }
            out = kept;
        }

        // ORDER BY over output columns: NULLS LAST ascending, reversed for
        // descending; stable, so ties keep their prior order.
        if !q.order_by.is_empty() {
            out.sort_by(|a, b| {
                for (idx, asc) in &q.order_by {
                    let ord = order_by_cmp(&a[*idx], &b[*idx]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }
        Ok(out)
    }
}

/// Mirror of `unidb::exec::order_by_cmp` (independently stated): NULL is
/// the largest value under ascending order.
pub fn order_by_cmp(a: &Val, b: &Val) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(b),
    }
}

/// Whole-row equality under SQL value comparison (Int 3 == Float 3.0).
pub fn rows_equal(a: &[Val], b: &[Val]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.total_cmp(y) == Ordering::Equal)
}

fn resolve<'a>(names: &[String], row: &'a [Val], col: &str) -> Option<&'a Val> {
    names.iter().position(|n| n == col).map(|i| &row[i])
}

// ---- aggregation -----------------------------------------------------------

fn aggregate(
    names: &[String],
    rows: &[Vec<Val>],
    group: &[String],
    aggs: &[AggSpec],
) -> Result<Vec<Vec<Val>>, String> {
    // Group rows by their key values, first-seen order, total_cmp equality
    // (so Int and Float keys with equal value share a group, and all NULLs
    // form one group).
    let mut keys: Vec<Vec<Val>> = Vec::new();
    let mut buckets: Vec<Vec<&Vec<Val>>> = Vec::new();
    for row in rows {
        let key: Vec<Val> = group
            .iter()
            .map(|g| resolve(names, row, g).cloned().ok_or_else(|| format!("unknown column {g}")))
            .collect::<Result<_, _>>()?;
        match keys.iter().position(|k| rows_equal(k, &key)) {
            Some(i) => buckets[i].push(row),
            None => {
                keys.push(key);
                buckets.push(vec![row]);
            }
        }
    }
    // A global aggregate over zero rows still produces one row.
    if group.is_empty() && keys.is_empty() {
        keys.push(Vec::new());
        buckets.push(Vec::new());
    }

    let mut out = Vec::with_capacity(keys.len());
    for (key, bucket) in keys.into_iter().zip(buckets) {
        let mut row = key;
        for a in aggs {
            row.push(agg_one(names, &bucket, a)?);
        }
        out.push(row);
    }
    Ok(out)
}

fn agg_one(names: &[String], bucket: &[&Vec<Val>], spec: &AggSpec) -> Result<Val, String> {
    // Collect the argument values, skipping NULLs (every aggregate here
    // ignores NULL inputs; count(*) counts rows).
    let values: Vec<Val> = match &spec.col {
        None => return Ok(Val::Int(bucket.len() as i64)),
        Some(col) => bucket
            .iter()
            .map(|row| {
                resolve(names, row, col).cloned().ok_or_else(|| format!("unknown column {col}"))
            })
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .filter(|v| !v.is_null())
            .collect(),
    };
    match spec.func {
        AggFunc::Count => Ok(Val::Int(values.len() as i64)),
        AggFunc::Sum => {
            // i128 accumulation; a total past i64 widens to FLOAT.
            let mut int_sum: i128 = 0;
            let mut float_sum = 0.0f64;
            let mut saw_float = false;
            for v in &values {
                match v {
                    Val::Int(i) => int_sum += *i as i128,
                    Val::Float(f) => {
                        float_sum += f;
                        saw_float = true;
                    }
                    other => return Err(format!("sum over non-number {other:?}")),
                }
            }
            if values.is_empty() {
                Ok(Val::Null)
            } else if saw_float {
                Ok(Val::Float(float_sum + int_sum as f64))
            } else if let Ok(i) = i64::try_from(int_sum) {
                Ok(Val::Int(i))
            } else {
                Ok(Val::Float(int_sum as f64))
            }
        }
        AggFunc::Avg => {
            let mut int_sum: i128 = 0;
            let mut float_sum = 0.0f64;
            for v in &values {
                match v {
                    Val::Int(i) => int_sum += *i as i128,
                    Val::Float(f) => float_sum += f,
                    other => return Err(format!("avg over non-number {other:?}")),
                }
            }
            if values.is_empty() {
                Ok(Val::Null)
            } else {
                Ok(Val::Float((int_sum as f64 + float_sum) / values.len() as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let want_min = matches!(spec.func, AggFunc::Min);
            let mut best: Option<Val> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take = if want_min {
                            v.total_cmp(&b) == Ordering::Less
                        } else {
                            v.total_cmp(&b) == Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Val::Null))
        }
    }
}

// ---- scalar evaluation -----------------------------------------------------

/// Evaluate a scalar expression against one row with three-valued logic.
pub fn eval(e: &QExpr, names: &[String], row: &[Val]) -> Result<Val, String> {
    match e {
        QExpr::Lit(v) => Ok(v.clone()),
        QExpr::Col(name) => {
            resolve(names, row, name).cloned().ok_or_else(|| format!("unknown column {name}"))
        }
        QExpr::Neg(inner) => match eval(inner, names, row)? {
            Val::Null => Ok(Val::Null),
            Val::Int(i) => i.checked_neg().map(Val::Int).ok_or_else(|| "overflow".to_string()),
            Val::Float(f) => Ok(Val::Float(-f)),
            other => Err(format!("cannot negate {other:?}")),
        },
        QExpr::Not(inner) => Ok(match bool3(eval(inner, names, row)?)? {
            None => Val::Null,
            Some(b) => Val::Bool(!b),
        }),
        QExpr::Bin(op, l, r) => eval_bin(*op, l, r, names, row),
        QExpr::IsNull { expr, negated } => {
            let v = eval(expr, names, row)?;
            Ok(Val::Bool(v.is_null() != *negated))
        }
        QExpr::InList { expr, list, negated } => {
            let v = eval(expr, names, row)?;
            if v.is_null() {
                return Ok(Val::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, names, row)?;
                if w.is_null() {
                    saw_null = true;
                } else if v.total_cmp(&w) == Ordering::Equal {
                    return Ok(Val::Bool(!*negated));
                }
            }
            if saw_null {
                Ok(Val::Null)
            } else {
                Ok(Val::Bool(*negated))
            }
        }
        QExpr::Between { expr, lo, hi, negated } => {
            let v = eval(expr, names, row)?;
            let l = eval(lo, names, row)?;
            let h = eval(hi, names, row)?;
            // Desugars to `v >= lo AND v <= hi` under 3VL: one FALSE leg
            // forces FALSE even when the other bound is NULL.
            let ge = cmp3(&v, &l).map(|o| o != Ordering::Less);
            let le = cmp3(&v, &h).map(|o| o != Ordering::Greater);
            let inside = match (ge, le) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            };
            Ok(inside.map_or(Val::Null, |b| Val::Bool(b != *negated)))
        }
        QExpr::Like { expr, pattern, escape, negated } => {
            let v = eval(expr, names, row)?;
            match v {
                Val::Null => Ok(Val::Null),
                Val::Text(s) => {
                    let m = like(&s, pattern, *escape)?;
                    Ok(Val::Bool(m != *negated))
                }
                other => Err(format!("LIKE on non-text {other:?}")),
            }
        }
    }
}

fn eval_bin(op: QOp, l: &QExpr, r: &QExpr, names: &[String], row: &[Val]) -> Result<Val, String> {
    if matches!(op, QOp::And | QOp::Or) {
        let lv = bool3(eval(l, names, row)?)?;
        // Short-circuit left-first, like the engine: a decided AND/OR never
        // evaluates (or errors on) its right side.
        match (op, lv) {
            (QOp::And, Some(false)) => return Ok(Val::Bool(false)),
            (QOp::Or, Some(true)) => return Ok(Val::Bool(true)),
            _ => {}
        }
        let rv = bool3(eval(r, names, row)?)?;
        let out = match op {
            QOp::And => match (lv, rv) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            _ => match (lv, rv) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        return Ok(out.map_or(Val::Null, Val::Bool));
    }

    let a = eval(l, names, row)?;
    let b = eval(r, names, row)?;
    if a.is_null() || b.is_null() {
        return Ok(Val::Null);
    }
    match op {
        QOp::Eq => Ok(Val::Bool(a.total_cmp(&b) == Ordering::Equal)),
        QOp::NotEq => Ok(Val::Bool(a.total_cmp(&b) != Ordering::Equal)),
        QOp::Lt => Ok(Val::Bool(a.total_cmp(&b) == Ordering::Less)),
        QOp::LtEq => Ok(Val::Bool(a.total_cmp(&b) != Ordering::Greater)),
        QOp::Gt => Ok(Val::Bool(a.total_cmp(&b) == Ordering::Greater)),
        QOp::GtEq => Ok(Val::Bool(a.total_cmp(&b) != Ordering::Less)),
        QOp::Add | QOp::Sub | QOp::Mul | QOp::Div | QOp::Mod => arith(op, &a, &b),
        QOp::And | QOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: QOp, a: &Val, b: &Val) -> Result<Val, String> {
    if op == QOp::Add {
        if let (Val::Text(x), Val::Text(y)) = (a, b) {
            return Ok(Val::Text(format!("{x}{y}")));
        }
    }
    match (a, b) {
        (Val::Int(x), Val::Int(y)) => {
            let r = match op {
                QOp::Add => x.checked_add(*y),
                QOp::Sub => x.checked_sub(*y),
                QOp::Mul => x.checked_mul(*y),
                QOp::Div => {
                    if *y == 0 {
                        return Err("division by zero".into());
                    }
                    x.checked_div(*y)
                }
                QOp::Mod => {
                    if *y == 0 {
                        return Err("division by zero".into());
                    }
                    x.checked_rem(*y)
                }
                _ => unreachable!(),
            };
            r.map(Val::Int).ok_or_else(|| "integer overflow".into())
        }
        _ => {
            let x = num(a).ok_or_else(|| format!("arithmetic on {a:?}"))?;
            let y = num(b).ok_or_else(|| format!("arithmetic on {b:?}"))?;
            let v = match op {
                QOp::Add => x + y,
                QOp::Sub => x - y,
                QOp::Mul => x * y,
                QOp::Div => {
                    if y == 0.0 {
                        return Err("division by zero".into());
                    }
                    x / y
                }
                QOp::Mod => {
                    if y == 0.0 {
                        return Err("division by zero".into());
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Val::Float(v))
        }
    }
}

fn num(v: &Val) -> Option<f64> {
    match v {
        Val::Int(i) => Some(*i as f64),
        Val::Float(f) => Some(*f),
        _ => None,
    }
}

fn bool3(v: Val) -> Result<Option<bool>, String> {
    match v {
        Val::Null => Ok(None),
        Val::Bool(b) => Ok(Some(b)),
        other => Err(format!("expected BOOL, got {other:?}")),
    }
}

fn cmp3(a: &Val, b: &Val) -> Option<Ordering> {
    if a.is_null() || b.is_null() {
        None
    } else {
        Some(a.total_cmp(b))
    }
}

/// Recursive LIKE matcher — deliberately the simple exponential formulation
/// rather than the engine's two-pointer loop, so a bug would have to be
/// re-invented rather than copied. Patterns are short enough that the
/// worst case does not matter.
fn like(text: &str, pattern: &str, escape: Option<char>) -> Result<bool, String> {
    // (char, literal?) — a literal char never acts as a wildcard.
    let mut toks: Vec<(char, bool)> = Vec::new();
    let mut it = pattern.chars();
    while let Some(c) = it.next() {
        if Some(c) == escape {
            match it.next() {
                Some(n) => toks.push((n, true)),
                None => return Err("pattern ends with escape".into()),
            }
        } else {
            toks.push((c, false));
        }
    }
    fn rec(t: &[char], p: &[(char, bool)]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(('%', false)) => (0..=t.len()).any(|k| rec(&t[k..], &p[1..])),
            Some((pc, literal)) => match t.first() {
                Some(tc) => ((!literal && *pc == '_') || pc == tc) && rec(&t[1..], &p[1..]),
                None => false,
            },
        }
    }
    let chars: Vec<char> = text.chars().collect();
    Ok(rec(&chars, &toks))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into(), "s".into()]
    }

    fn ev(e: &QExpr, row: &[Val]) -> Result<Val, String> {
        eval(e, &names(), row)
    }

    fn lit(v: Val) -> Box<QExpr> {
        Box::new(QExpr::Lit(v))
    }

    #[test]
    fn three_valued_between() {
        // 6 BETWEEN NULL AND 5 is FALSE (the <= leg decides), not NULL.
        let e = QExpr::Between {
            expr: lit(Val::Int(6)),
            lo: lit(Val::Null),
            hi: lit(Val::Int(5)),
            negated: false,
        };
        assert!(matches!(ev(&e, &[]).unwrap(), Val::Bool(false)));
        let e = QExpr::Between {
            expr: lit(Val::Int(3)),
            lo: lit(Val::Null),
            hi: lit(Val::Int(5)),
            negated: false,
        };
        assert!(ev(&e, &[]).unwrap().is_null());
    }

    #[test]
    fn short_circuit_skips_right_side_errors() {
        // FALSE AND (1/0 = 1) is FALSE, not an error.
        let bomb = QExpr::Bin(
            QOp::Eq,
            Box::new(QExpr::Bin(QOp::Div, lit(Val::Int(1)), lit(Val::Int(0)))),
            lit(Val::Int(1)),
        );
        let e = QExpr::Bin(QOp::And, lit(Val::Bool(false)), Box::new(bomb.clone()));
        assert!(matches!(ev(&e, &[]).unwrap(), Val::Bool(false)));
        let e = QExpr::Bin(QOp::Or, Box::new(bomb), lit(Val::Bool(true)));
        assert!(ev(&e, &[]).is_err());
    }

    #[test]
    fn like_with_escape() {
        assert!(like("100%", "100\\%", Some('\\')).unwrap());
        assert!(!like("100x", "100\\%", Some('\\')).unwrap());
        assert!(like("héllo", "h_llo", None).unwrap());
        assert!(like("", "%", None).unwrap());
        assert!(like("x", "x\\", Some('\\')).is_err());
    }

    #[test]
    fn sum_widens_past_i64() {
        let rows: Vec<Vec<Val>> = vec![vec![Val::Int(i64::MAX)], vec![Val::Int(i64::MAX)]];
        let refs: Vec<&Vec<Val>> = rows.iter().collect();
        let got =
            agg_one(&["a".into()], &refs, &AggSpec { func: AggFunc::Sum, col: Some("a".into()) })
                .unwrap();
        match got {
            Val::Float(f) => assert_eq!(f, i64::MAX as f64 * 2.0),
            other => panic!("expected widened float, got {other:?}"),
        }
    }

    #[test]
    fn global_aggregate_over_empty_input_is_one_row() {
        let out = aggregate(
            &["a".into()],
            &[],
            &[],
            &[
                AggSpec { func: AggFunc::Count, col: None },
                AggSpec { func: AggFunc::Sum, col: Some("a".into()) },
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0][0], Val::Int(0)));
        assert!(out[0][1].is_null());
    }
}
