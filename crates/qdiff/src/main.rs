//! qdiff CLI: sweep a seed range, report divergences, shrink and dump
//! reproducible counterexamples.
//!
//! ```text
//! cargo run -p qdiff -- --seeds 500
//! QDIFF_SEED_START=125 QDIFF_SEED_COUNT=125 cargo run -p qdiff
//! ```
//!
//! Exit status is non-zero iff any seed diverged. Each divergent seed is
//! written to `<out>/seed-<n>.sql` as a self-contained SQL script whose
//! trailing comments describe the disagreement — paste it into any unidb
//! shell to replay.

use qdiff::{
    check_scenario, check_txn_scenario, gen_scenario_with_profile, gen_txn_scenario, shrink,
    shrink_txn, Profile,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    start: u64,
    count: u64,
    txn_count: u64,
    shrink_budget: usize,
    out: PathBuf,
    profile: Profile,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        start: 0,
        count: 200,
        txn_count: 200,
        shrink_budget: 400,
        out: PathBuf::from("target/qdiff"),
        profile: Profile::Default,
    };
    // Env overrides first (the CI shard matrix sets these), flags on top.
    if let Ok(s) = std::env::var("QDIFF_SEED_START") {
        args.start = s.parse().map_err(|_| format!("bad QDIFF_SEED_START: {s}"))?;
    }
    if let Ok(s) = std::env::var("QDIFF_PROFILE") {
        args.profile = Profile::from_name(&s).ok_or_else(|| format!("bad QDIFF_PROFILE: {s}"))?;
    }
    if let Ok(s) = std::env::var("QDIFF_SEED_COUNT") {
        args.count = s.parse().map_err(|_| format!("bad QDIFF_SEED_COUNT: {s}"))?;
    }
    if let Ok(s) = std::env::var("QDIFF_TXN_SEED_COUNT") {
        args.txn_count = s.parse().map_err(|_| format!("bad QDIFF_TXN_SEED_COUNT: {s}"))?;
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => args.count = parse(&val("--seeds")?)?,
            "--txn-seeds" => args.txn_count = parse(&val("--txn-seeds")?)?,
            "--start" => args.start = parse(&val("--start")?)?,
            "--shrink-budget" => args.shrink_budget = parse::<usize>(&val("--shrink-budget")?)?,
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--profile" => {
                let name = val("--profile")?;
                args.profile =
                    Profile::from_name(&name).ok_or_else(|| format!("bad --profile: {name}"))?;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: qdiff [--seeds N] [--txn-seeds N] [--start S] [--shrink-budget B] \
                     [--out DIR] [--profile default|join-heavy|scan-heavy]\n\
                     env: QDIFF_SEED_START, QDIFF_SEED_COUNT, QDIFF_TXN_SEED_COUNT, QDIFF_PROFILE"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qdiff: {e}");
            return ExitCode::from(2);
        }
    };

    let mut divergent = 0u64;
    for seed in args.start..args.start + args.count {
        let sc = gen_scenario_with_profile(seed, args.profile);
        let Some(first) = check_scenario(&sc) else { continue };
        divergent += 1;
        eprintln!("seed {seed}: DIVERGENCE — {first}");

        // Minimize, then re-check to get the divergence of the *shrunk*
        // scenario (shrinking can move the failing op index around).
        let mut fails = |s: &qdiff::Scenario| check_scenario(s).is_some();
        let small = shrink(&sc, &mut fails, args.shrink_budget);
        let report = check_scenario(&small)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "shrunk scenario no longer diverges (flaky?)".into());

        let mut script = small.render_script();
        script.push_str("\n-- DIVERGENCE:\n");
        for line in report.lines() {
            script.push_str("--   ");
            script.push_str(line);
            script.push('\n');
        }
        if let Err(e) = std::fs::create_dir_all(&args.out) {
            eprintln!("qdiff: cannot create {}: {e}", args.out.display());
            return ExitCode::from(2);
        }
        let path = args.out.join(format!("seed-{seed}.sql"));
        match std::fs::write(&path, &script) {
            Ok(()) => eprintln!("  shrunk repro written to {}", path.display()),
            Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
        }
        for line in report.lines() {
            eprintln!("  {line}");
        }
    }

    // Concurrent-transaction sweep: interleaved BEGIN/COMMIT events across
    // slots, checked against the snapshot-isolation oracle.
    for seed in args.start..args.start + args.txn_count {
        let sc = gen_txn_scenario(seed);
        let Some(first) = check_txn_scenario(&sc) else { continue };
        divergent += 1;
        eprintln!("txn seed {seed}: DIVERGENCE — {first}");

        let mut fails = |s: &qdiff::TxnScenario| check_txn_scenario(s).is_some();
        let small = shrink_txn(&sc, &mut fails, args.shrink_budget);
        let report = check_txn_scenario(&small)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "shrunk scenario no longer diverges (flaky?)".into());

        let mut script = small.render_script();
        script.push_str("\n-- DIVERGENCE:\n");
        for line in report.lines() {
            script.push_str("--   ");
            script.push_str(line);
            script.push('\n');
        }
        if let Err(e) = std::fs::create_dir_all(&args.out) {
            eprintln!("qdiff: cannot create {}: {e}", args.out.display());
            return ExitCode::from(2);
        }
        let path = args.out.join(format!("txn-seed-{seed}.txt"));
        match std::fs::write(&path, &script) {
            Ok(()) => eprintln!("  shrunk repro written to {}", path.display()),
            Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
        }
        for line in report.lines() {
            eprintln!("  {line}");
        }
    }

    println!(
        "qdiff: {} scalar + {} txn seeds checked (from {}), {divergent} divergence(s)",
        args.count, args.txn_count, args.start
    );
    if divergent == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
