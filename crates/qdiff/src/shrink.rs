//! Counterexample minimization.
//!
//! A ddmin-lite greedy loop: repeatedly try structural simplifications —
//! drop whole statements, drop inserted rows, strip query clauses, replace
//! expressions by their children, drop unreferenced tables — keeping a
//! candidate whenever the failure predicate still holds, until a full pass
//! changes nothing or the probe budget runs out. The predicate is abstract
//! (`FnMut(&Scenario) -> bool`) so tests can shrink against synthetic
//! properties without touching a database.

use crate::{Op, Proj, QExpr, Query, Scenario};

/// Minimize `sc` under `fails` (true = still reproduces). `budget` caps
/// predicate evaluations; each probe runs the whole scenario, so this is
/// the knob that bounds shrink time.
pub fn shrink(sc: &Scenario, fails: &mut dyn FnMut(&Scenario) -> bool, budget: usize) -> Scenario {
    let mut cur = sc.clone();
    let mut left = budget;
    loop {
        let mut changed = false;
        changed |= pass_drop_ops(&mut cur, fails, &mut left);
        changed |= pass_drop_rows(&mut cur, fails, &mut left);
        changed |= pass_simplify_queries(&mut cur, fails, &mut left);
        changed |= pass_drop_filters(&mut cur, fails, &mut left);
        changed |= pass_drop_tables(&mut cur, fails, &mut left);
        if !changed || left == 0 {
            return cur;
        }
    }
}

fn accept(
    cur: &mut Scenario,
    cand: Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    left: &mut usize,
) -> bool {
    if *left == 0 {
        return false;
    }
    *left -= 1;
    if fails(&cand) {
        *cur = cand;
        true
    } else {
        false
    }
}

/// Drop whole statements, last first (later ops depend on earlier state,
/// so trailing ops are the cheapest to lose).
fn pass_drop_ops(
    cur: &mut Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    left: &mut usize,
) -> bool {
    let mut changed = false;
    let mut i = cur.ops.len();
    while i > 0 {
        i -= 1;
        if i >= cur.ops.len() {
            continue;
        }
        let mut cand = cur.clone();
        cand.ops.remove(i);
        changed |= accept(cur, cand, fails, left);
    }
    changed
}

/// Thin out INSERT rows: halves first, then single rows.
fn pass_drop_rows(
    cur: &mut Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    left: &mut usize,
) -> bool {
    let mut changed = false;
    for i in 0..cur.ops.len() {
        let Op::Insert { rows, .. } = &cur.ops[i] else { continue };
        let n = rows.len();
        if n > 1 {
            for keep_second in [false, true] {
                let Op::Insert { rows, .. } = &cur.ops[i] else { continue };
                if rows.len() < 2 {
                    break;
                }
                let mid = rows.len() / 2;
                let mut cand = cur.clone();
                if let Op::Insert { rows, .. } = &mut cand.ops[i] {
                    *rows = if keep_second { rows.split_off(mid) } else { rows[..mid].to_vec() };
                }
                changed |= accept(cur, cand, fails, left);
            }
        }
        // Single-row removal (an empty INSERT isn't valid SQL, so stop at 1;
        // the op-drop pass removes the remainder if it's irrelevant).
        let mut r = n;
        while r > 0 {
            r -= 1;
            let Op::Insert { rows, .. } = &cur.ops[i] else { break };
            if r >= rows.len() || rows.len() == 1 {
                continue;
            }
            let mut cand = cur.clone();
            if let Op::Insert { rows, .. } = &mut cand.ops[i] {
                rows.remove(r);
            }
            changed |= accept(cur, cand, fails, left);
        }
    }
    changed
}

/// Strip query decorations and thin projections.
fn pass_simplify_queries(
    cur: &mut Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    left: &mut usize,
) -> bool {
    let mut changed = false;
    for i in 0..cur.ops.len() {
        if !matches!(cur.ops[i], Op::Query(_)) {
            continue;
        }
        // Clause-dropping candidates, cheapest simplification first.
        type Tweak = fn(&mut Query) -> bool; // returns false if inapplicable
        let tweaks: [Tweak; 6] = [
            |q| q.limit.take().is_some(),
            |q| q.offset.take().is_some(),
            |q| !std::mem::take(&mut q.order_by).is_empty(),
            |q| std::mem::replace(&mut q.distinct, false),
            |q| q.filter.take().is_some(),
            |q| q.join.take().is_some(),
        ];
        for tweak in tweaks {
            let Op::Query(q) = &cur.ops[i] else { break };
            let mut q2 = q.clone();
            if !tweak(&mut q2) {
                continue;
            }
            let mut cand = cur.clone();
            cand.ops[i] = Op::Query(q2);
            changed |= accept(cur, cand, fails, left);
        }
        // Drop one output column at a time (remapping ORDER BY indices).
        let mut progress = true;
        while progress {
            let Op::Query(q) = &cur.ops[i] else { break };
            let arity = q.out_arity();
            let mut any = false;
            for k in 0..arity {
                let Op::Query(q) = &cur.ops[i] else { break };
                if q.out_arity() <= 1 || k >= q.out_arity() {
                    continue;
                }
                let Some(q2) = drop_output_column(q, k) else { continue };
                let mut cand = cur.clone();
                cand.ops[i] = Op::Query(q2);
                any |= accept(cur, cand, fails, left);
            }
            changed |= any;
            progress = any;
        }
        // Replace plain projections with their sub-expressions.
        let mut progress = true;
        while progress {
            let Op::Query(q) = &cur.ops[i] else { break };
            let Proj::Plain(exprs) = &q.proj else { break };
            let mut any = false;
            for k in 0..exprs.len() {
                let Op::Query(q) = &cur.ops[i] else { break };
                let Proj::Plain(exprs) = &q.proj else { break };
                if k >= exprs.len() {
                    continue;
                }
                for child in children(&exprs[k]) {
                    let Op::Query(q) = &cur.ops[i] else { break };
                    let mut q2 = q.clone();
                    if let Proj::Plain(exprs) = &mut q2.proj {
                        exprs[k] = child;
                    }
                    let mut cand = cur.clone();
                    cand.ops[i] = Op::Query(q2);
                    any |= accept(cur, cand, fails, left);
                }
            }
            changed |= any;
            progress = any;
        }
    }
    changed
}

/// Simplify WHERE clauses (queries and DML alike) by replacing them with
/// their boolean sub-expressions.
fn pass_drop_filters(
    cur: &mut Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    left: &mut usize,
) -> bool {
    let mut changed = false;
    for i in 0..cur.ops.len() {
        loop {
            let filter = match &cur.ops[i] {
                Op::Query(q) => q.filter.clone(),
                Op::Update { filter, .. } | Op::Delete { filter, .. } => filter.clone(),
                Op::Insert { .. } => None,
            };
            let Some(f) = filter else { break };
            let mut any = false;
            // Dropping entirely first, then one structural level.
            let mut candidates: Vec<Option<QExpr>> = vec![None];
            candidates.extend(bool_children(&f).into_iter().map(Some));
            for repl in candidates {
                let mut cand = cur.clone();
                match &mut cand.ops[i] {
                    Op::Query(q) => q.filter = repl.clone(),
                    Op::Update { filter, .. } | Op::Delete { filter, .. } => *filter = repl.clone(),
                    Op::Insert { .. } => {}
                }
                if accept(cur, cand, fails, left) {
                    any = true;
                    break; // filter changed; restart from the new one
                }
            }
            changed |= any;
            if !any {
                break;
            }
        }
    }
    changed
}

/// Remove tables no op references (remapping indices above the gap).
fn pass_drop_tables(
    cur: &mut Scenario,
    fails: &mut dyn FnMut(&Scenario) -> bool,
    left: &mut usize,
) -> bool {
    let mut changed = false;
    let mut t = cur.tables.len();
    while t > 0 {
        t -= 1;
        if cur.tables.len() <= 1 || t >= cur.tables.len() {
            continue;
        }
        let referenced = cur.ops.iter().any(|op| match op {
            Op::Insert { table, .. } | Op::Update { table, .. } | Op::Delete { table, .. } => {
                *table == t
            }
            Op::Query(q) => q.table == t || q.join.as_ref().is_some_and(|j| j.table == t),
        });
        if referenced {
            continue;
        }
        let mut cand = cur.clone();
        cand.tables.remove(t);
        for op in &mut cand.ops {
            let remap = |x: &mut usize| {
                if *x > t {
                    *x -= 1;
                }
            };
            match op {
                Op::Insert { table, .. } | Op::Update { table, .. } | Op::Delete { table, .. } => {
                    remap(table)
                }
                Op::Query(q) => {
                    remap(&mut q.table);
                    if let Some(j) = &mut q.join {
                        remap(&mut j.table);
                    }
                }
            }
        }
        changed |= accept(cur, cand, fails, left);
    }
    changed
}

/// Remove output column `k` from a query, remapping ORDER BY indices.
/// Returns `None` when a key references `k` itself (dropping it would
/// change which query we're testing in a way the ORDER BY can't follow).
fn drop_output_column(q: &Query, k: usize) -> Option<Query> {
    if q.order_by.iter().any(|(i, _)| *i == k) {
        return None;
    }
    let mut q2 = q.clone();
    match &mut q2.proj {
        Proj::Plain(exprs) => {
            exprs.remove(k);
        }
        Proj::Agg { group, aggs } => {
            // Group columns can't be dropped without changing the grouping;
            // only aggregate outputs are droppable.
            if k < group.len() {
                return None;
            }
            aggs.remove(k - group.len());
        }
    }
    for (i, _) in &mut q2.order_by {
        if *i > k {
            *i -= 1;
        }
    }
    Some(q2)
}

/// Direct sub-expressions (any type) — used to peel projection trees.
fn children(e: &QExpr) -> Vec<QExpr> {
    match e {
        QExpr::Lit(_) | QExpr::Col(_) => Vec::new(),
        QExpr::Neg(x) | QExpr::Not(x) => vec![(**x).clone()],
        QExpr::Bin(_, l, r) => vec![(**l).clone(), (**r).clone()],
        QExpr::IsNull { expr, .. } => vec![(**expr).clone()],
        QExpr::InList { expr, list, .. } => {
            let mut v = vec![(**expr).clone()];
            v.extend(list.iter().cloned());
            v
        }
        QExpr::Between { expr, lo, hi, .. } => {
            vec![(**expr).clone(), (**lo).clone(), (**hi).clone()]
        }
        QExpr::Like { expr, .. } => vec![(**expr).clone()],
    }
}

/// Boolean-valued sub-expressions only — valid WHERE replacements.
fn bool_children(e: &QExpr) -> Vec<QExpr> {
    match e {
        QExpr::Bin(QOp::And | QOp::Or, l, r) => vec![(**l).clone(), (**r).clone()],
        QExpr::Not(x) => vec![(**x).clone()],
        QExpr::Between { expr, lo, hi, negated } if *negated => vec![QExpr::Between {
            expr: expr.clone(),
            lo: lo.clone(),
            hi: hi.clone(),
            negated: false,
        }],
        QExpr::Like { expr, pattern, escape, negated } if *negated => vec![QExpr::Like {
            expr: expr.clone(),
            pattern: pattern.clone(),
            escape: *escape,
            negated: false,
        }],
        QExpr::InList { expr, list, negated } if *negated => {
            vec![QExpr::InList { expr: expr.clone(), list: list.clone(), negated: false }]
        }
        _ => Vec::new(),
    }
}

use crate::QOp;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_scenario;

    /// Shrinking against "contains at least one UPDATE" must strip the
    /// scenario down to almost nothing but an UPDATE.
    #[test]
    fn shrinks_to_the_predicate_core() {
        // Find a seed whose scenario has an UPDATE.
        let sc = (0..50)
            .map(gen_scenario)
            .find(|s| s.ops.iter().any(|o| matches!(o, Op::Update { .. })))
            .expect("some seed generates an UPDATE");
        let before_ops = sc.ops.len();
        let mut fails = |s: &Scenario| s.ops.iter().any(|o| matches!(o, Op::Update { .. }));
        let small = shrink(&sc, &mut fails, 500);
        assert!(fails(&small), "shrinking must preserve the property");
        assert!(small.ops.len() <= before_ops);
        assert_eq!(
            small.ops.iter().filter(|o| matches!(o, Op::Update { .. })).count(),
            small.ops.len(),
            "every surviving op should be an UPDATE: {:?}",
            small.ops
        );
        assert_eq!(small.tables.len(), 1, "unreferenced tables should be gone");
    }

    /// The budget is a hard cap on predicate probes.
    #[test]
    fn respects_probe_budget() {
        let sc = gen_scenario(3);
        let mut calls = 0usize;
        let mut fails = |_: &Scenario| {
            calls += 1;
            true
        };
        let _ = shrink(&sc, &mut fails, 17);
        assert!(calls <= 17, "made {calls} probes with budget 17");
    }

    /// Query decorations (LIMIT, ORDER BY, DISTINCT, filters, joins) are
    /// all strippable when irrelevant to the failure.
    #[test]
    fn strips_irrelevant_query_clauses() {
        let sc = (0..80)
            .map(gen_scenario)
            .find(|s| {
                s.ops.iter().any(|o| {
                    matches!(o, Op::Query(q)
                        if q.limit.is_some() && !q.order_by.is_empty() && q.filter.is_some())
                })
            })
            .expect("some seed generates a decorated query");
        let mut fails = |s: &Scenario| s.ops.iter().any(|o| matches!(o, Op::Query(_)));
        let small = shrink(&sc, &mut fails, 800);
        let Some(Op::Query(q)) = small.ops.first() else {
            panic!("expected a lone query, got {:?}", small.ops)
        };
        assert_eq!(small.ops.len(), 1);
        assert!(q.limit.is_none() && q.order_by.is_empty() && q.filter.is_none());
    }
}
