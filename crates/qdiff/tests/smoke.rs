//! Always-on differential smoke sweep: a bounded seed range must produce
//! zero divergences between the engine and the reference oracle. The CI
//! qdiff job covers a much wider range; this keeps `cargo test` honest.

use qdiff::{check_scenario, gen_scenario};

#[test]
fn seeds_0_to_47_agree_with_the_oracle() {
    let mut failures = Vec::new();
    for seed in 0..48 {
        if let Some(d) = check_scenario(&gen_scenario(seed)) {
            failures.push(format!("seed {seed}: {d}"));
        }
    }
    assert!(failures.is_empty(), "engine/oracle divergences:\n{}", failures.join("\n"));
}

#[test]
fn scenarios_replay_deterministically() {
    // Same seed, two runs, same SQL — the whole design rests on this.
    for seed in [0, 7, 23] {
        let a = gen_scenario(seed).render_script();
        let b = gen_scenario(seed).render_script();
        assert_eq!(a, b, "seed {seed} not deterministic");
    }
}
