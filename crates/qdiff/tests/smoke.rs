//! Always-on differential smoke sweep: a bounded seed range must produce
//! zero divergences between the engine and the reference oracle. The CI
//! qdiff job covers a much wider range; this keeps `cargo test` honest.

use qdiff::{check_scenario, check_scenario_with_parallelism, gen_scenario};

#[test]
fn seeds_0_to_47_agree_with_the_oracle() {
    let mut failures = Vec::new();
    for seed in 0..48 {
        if let Some(d) = check_scenario(&gen_scenario(seed)) {
            failures.push(format!("seed {seed}: {d}"));
        }
    }
    assert!(failures.is_empty(), "engine/oracle divergences:\n{}", failures.join("\n"));
}

#[test]
fn parallel_execution_matches_the_scalar_oracle() {
    // The oracle is single-threaded and tuple-at-a-time by design; running
    // the same seeds with the engine pinned serial and 4-way parallel is
    // the determinism proof for morsel-driven execution.
    let mut failures = Vec::new();
    for seed in 0..32 {
        let sc = gen_scenario(seed);
        for par in [1, 4] {
            if let Some(d) = check_scenario_with_parallelism(&sc, par) {
                failures.push(format!("seed {seed} (parallelism {par}): {d}"));
            }
        }
    }
    assert!(failures.is_empty(), "engine/oracle divergences:\n{}", failures.join("\n"));
}

#[test]
fn concurrent_txn_seeds_agree_with_the_si_oracle() {
    // Interleaved-transaction sweep: 300 seeds of BEGIN/COMMIT interleavings
    // across three slots plus racing auto-commit statements, compared event
    // by event against the snapshot-isolation reference model.
    let mut failures = Vec::new();
    for seed in 0..300 {
        if let Some(d) = qdiff::check_txn_scenario(&qdiff::gen_txn_scenario(seed)) {
            failures.push(format!("txn seed {seed}: {d}"));
        }
    }
    assert!(failures.is_empty(), "engine/oracle divergences:\n{}", failures.join("\n"));
}

#[test]
fn scenarios_replay_deterministically() {
    // Same seed, two runs, same SQL — the whole design rests on this.
    for seed in [0, 7, 23] {
        let a = gen_scenario(seed).render_script();
        let b = gen_scenario(seed).render_script();
        assert_eq!(a, b, "seed {seed} not deterministic");
    }
}
