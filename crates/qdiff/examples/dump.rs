//! Print the SQL script for one seed, and — if it diverges — the shrunk
//! counterexample. Handy when triaging a CI artifact by seed number:
//!
//! ```text
//! cargo run -p qdiff --example dump -- 4
//! ```

fn main() {
    let seed: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).expect("usage: dump <seed>");
    let sc = qdiff::gen_scenario(seed);
    println!("{}", sc.render_script());
    if let Some(d) = qdiff::check_scenario(&sc) {
        println!("-- DIVERGENCE: {d}");
        let mut fails = |s: &qdiff::Scenario| qdiff::check_scenario(s).is_some();
        let small = qdiff::shrink(&sc, &mut fails, 400);
        println!("-- SHRUNK:\n{}", small.render_script());
        if let Some(d) = qdiff::check_scenario(&small) {
            println!("-- {d}");
        }
    }
}
