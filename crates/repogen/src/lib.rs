//! # genalg-repogen — deterministic synthetic genomic repositories
//!
//! DESIGN.md substitution: the paper's workloads live in GenBank, EMBL and
//! friends; ours are generated. The generator is seeded and fully
//! deterministic so every benchmark run sees identical data, and it
//! reproduces the *statistical* properties the paper leans on:
//!
//! * noisy entries (ambiguity codes) at a configurable rate — problem B10
//!   estimates 30–60 % of GenBank entries are erroneous;
//! * overlapping contents across repositories with a configurable conflict
//!   rate — problems B2/C8 (additive and conflicting information);
//! * annotation features (gene/CDS with exon structure);
//! * mutation streams for exercising change detection.

use genalg_core::alphabet::{DnaBase, IupacDna, Strand};
use genalg_core::gdt::{Feature, FeatureKind, Gene, Interval, Location};
use genalg_core::seq::DnaSeq;
use genalg_etl::delta::ChangeKind;
use genalg_etl::record::SeqRecord;
use genalg_etl::source::SimulatedRepository;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds yield byte-identical data.
    pub seed: u64,
    /// Sequence length range (inclusive).
    pub min_len: usize,
    pub max_len: usize,
    /// Fraction of records carrying injected noise (ambiguity symbols).
    pub error_rate: f64,
    /// Expected annotation features per record.
    pub feature_density: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            min_len: 120,
            max_len: 600,
            error_rate: 0.4,
            feature_density: 1.5,
        }
    }
}

/// The generator.
pub struct RepoGenerator {
    rng: StdRng,
    config: GeneratorConfig,
    organisms: Vec<&'static str>,
}

impl RepoGenerator {
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        RepoGenerator {
            rng,
            config,
            organisms: vec![
                "Escherichia coli",
                "Saccharomyces cerevisiae",
                "Homo sapiens",
                "Mus musculus",
                "Drosophila melanogaster",
            ],
        }
    }

    /// Uniform random strict DNA of the given length.
    pub fn random_dna(&mut self, len: usize) -> DnaSeq {
        let bases: Vec<DnaBase> =
            (0..len).map(|_| DnaBase::ALL[self.rng.gen_range(0..4)]).collect();
        DnaSeq::from_bases(&bases)
    }

    /// One synthetic record with accession `SYN{idx:06}`.
    pub fn record(&mut self, idx: usize) -> SeqRecord {
        let len = self.rng.gen_range(self.config.min_len..=self.config.max_len);
        let mut seq = self.random_dna(len);
        // Noise injection: replace a few symbols with ambiguity codes.
        if self.rng.gen_bool(self.config.error_rate) {
            let n_errors = self.rng.gen_range(1..=3.min(len));
            for _ in 0..n_errors {
                let pos = self.rng.gen_range(0..len);
                let code =
                    [IupacDna::N, IupacDna::R, IupacDna::Y, IupacDna::S][self.rng.gen_range(0..4)];
                seq.set(pos, code).expect("pos < len");
            }
        }
        let organism = self.organisms[self.rng.gen_range(0..self.organisms.len())];
        let mut rec = SeqRecord::new(&format!("SYN{idx:06}"), seq)
            .with_description(&format!("synthetic locus {idx}"))
            .with_organism(organism);
        // Features.
        let n_features = self.poisson_ish(self.config.feature_density);
        for f in 0..n_features {
            let max_start = len.saturating_sub(20).max(1);
            let start = self.rng.gen_range(0..max_start);
            let end = (start + self.rng.gen_range(10..60)).min(len);
            if end <= start {
                continue;
            }
            let strand = if self.rng.gen_bool(0.5) { Strand::Forward } else { Strand::Reverse };
            let kind = if f == 0 { FeatureKind::Gene } else { FeatureKind::Cds };
            rec = rec.with_feature(
                Feature::new(
                    kind,
                    Location::simple(Interval::new(start, end).expect("start < end"), strand),
                )
                .with_qualifier("note", &format!("synthetic feature {f}")),
            );
        }
        rec
    }

    fn poisson_ish(&mut self, mean: f64) -> usize {
        // Cheap discrete approximation good enough for workload shaping.
        let whole = mean.floor() as usize;
        whole + usize::from(self.rng.gen_bool(mean.fract().clamp(0.0, 1.0)))
    }

    /// Generate `n` records.
    pub fn records(&mut self, n: usize) -> Vec<SeqRecord> {
        (0..n).map(|i| self.record(i)).collect()
    }

    /// Fill a repository with `n` fresh records.
    pub fn populate(&mut self, repo: &mut SimulatedRepository, n: usize) {
        for rec in self.records(n) {
            repo.apply(ChangeKind::Insert, rec).expect("fresh accessions");
        }
    }

    /// Two record sets sharing `overlap` of their accessions; a `conflict`
    /// fraction of the shared records differ between the sets (B2: additive
    /// *and* conflicting information).
    pub fn overlapping_pair(
        &mut self,
        n: usize,
        overlap: f64,
        conflict: f64,
    ) -> (Vec<SeqRecord>, Vec<SeqRecord>) {
        let base = self.records(n);
        let n_shared = ((n as f64) * overlap.clamp(0.0, 1.0)) as usize;
        let mut second: Vec<SeqRecord> = Vec::with_capacity(n);
        for rec in base.iter().take(n_shared) {
            let mut copy = rec.clone();
            if self.rng.gen_bool(conflict.clamp(0.0, 1.0)) {
                copy = self.mutate_record(&copy);
            }
            second.push(copy);
        }
        // The remainder of the second set is fresh data.
        for i in 0..(n - n_shared) {
            second.push(self.record(n + i));
        }
        (base, second)
    }

    /// Introduce 1–3 point substitutions into a record's sequence (same
    /// accession and version — a genuine inter-source conflict).
    pub fn mutate_record(&mut self, rec: &SeqRecord) -> SeqRecord {
        let mut seq = rec.sequence.clone();
        let len = seq.len().max(1);
        for _ in 0..self.rng.gen_range(1..=3) {
            let pos = self.rng.gen_range(0..len);
            let new_base = DnaBase::ALL[self.rng.gen_range(0..4)];
            seq.set(pos, IupacDna::from_base(new_base)).expect("pos < len");
        }
        let mut out = rec.clone();
        out.sequence = seq;
        out
    }

    /// Apply `ops` random changes to a repository: ~50 % updates, ~30 %
    /// inserts, ~20 % deletes (never deleting below one record).
    pub fn mutation_round(&mut self, repo: &mut SimulatedRepository, ops: usize) {
        for _ in 0..ops {
            // Curators see their own repository; a transiently-failing
            // external interface degrades the round to inserts only.
            let existing: Vec<SeqRecord> = repo.snapshot().unwrap_or_default();
            let roll: f64 = self.rng.gen();
            if roll < 0.3 || existing.is_empty() {
                let idx = self.rng.gen_range(1_000_000..2_000_000);
                let rec = self.record(idx);
                let _ = repo.apply(ChangeKind::Insert, rec);
            } else if roll < 0.8 || existing.len() <= 1 {
                let target = existing.choose(&mut self.rng).expect("non-empty");
                let mutated = self.mutate_record(target);
                let _ = repo.apply(ChangeKind::Update, mutated);
            } else {
                let target = existing.choose(&mut self.rng).expect("non-empty");
                let _ = repo.apply(ChangeKind::Delete, target.clone());
            }
        }
    }

    /// A structurally valid multi-exon gene whose spliced CDS translates
    /// cleanly: used by the algebra benchmarks.
    pub fn gene_with_structure(&mut self, id: &str, n_exons: usize, exon_len: usize) -> Gene {
        assert!(n_exons >= 1 && exon_len >= 3 && exon_len.is_multiple_of(3));
        // Coding sequence: ATG, interior codons that are never stops, stop.
        let coding_codons = (n_exons * exon_len) / 3;
        let mut coding = String::from("ATG");
        let safe_codons = ["GCT", "GGC", "TTT", "AAA", "CCC", "GAT", "CAT", "AGT", "GTT", "ACA"];
        for _ in 0..coding_codons.saturating_sub(2) {
            coding.push_str(safe_codons[self.rng.gen_range(0..safe_codons.len())]);
        }
        coding.push_str("TGA");
        let coding = DnaSeq::from_text(&coding).expect("constructed from valid codons");

        // Slice into exons and interleave intron spacers.
        let exon_total = coding.len();
        let per_exon = exon_total / n_exons;
        let mut builder = Gene::builder(id);
        let mut genomic = DnaSeq::empty();
        let mut cursor = 0usize;
        for e in 0..n_exons {
            let take = if e == n_exons - 1 { exon_total - cursor } else { per_exon };
            let exon_seq = coding.subseq(cursor, cursor + take).expect("within coding");
            let start = genomic.len();
            genomic = genomic.concat(&exon_seq);
            builder = builder.exon(start, genomic.len());
            cursor += take;
            if e != n_exons - 1 {
                // Intron: GT…AG canonical ends, stop-free interior irrelevant.
                let intron_len = self.rng.gen_range(12..40);
                let mut intron = DnaSeq::from_text("GT").expect("valid");
                intron = intron.concat(&self.random_dna(intron_len));
                intron = intron.concat(&DnaSeq::from_text("AG").expect("valid"));
                genomic = genomic.concat(&intron);
            }
        }
        builder.sequence(genomic).name(id).build().expect("structurally valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_core::dogma::express;
    use genalg_etl::source::{Capability, Representation};

    fn generator(seed: u64) -> RepoGenerator {
        RepoGenerator::new(GeneratorConfig { seed, ..GeneratorConfig::default() })
    }

    #[test]
    fn determinism() {
        let a = generator(7).records(20);
        let b = generator(7).records(20);
        assert_eq!(a, b);
        let c = generator(8).records(20);
        assert_ne!(a, c);
    }

    #[test]
    fn records_look_reasonable() {
        let recs = generator(1).records(200);
        assert_eq!(recs.len(), 200);
        let noisy = recs.iter().filter(|r| !r.sequence.is_strict()).count();
        // error_rate 0.4 → expect roughly 60–100 noisy records.
        assert!((40..=140).contains(&noisy), "noisy = {noisy}");
        for r in &recs {
            assert!(r.sequence.len() >= 120 && r.sequence.len() <= 600);
            assert!(r.accession.starts_with("SYN"));
            assert!(r.organism.is_some());
        }
        let with_features = recs.iter().filter(|r| !r.features.is_empty()).count();
        assert!(with_features > 100);
    }

    #[test]
    fn populate_repository() {
        let mut repo =
            SimulatedRepository::new("s", Representation::FlatFile, Capability::Queryable);
        generator(3).populate(&mut repo, 50);
        assert_eq!(repo.len(), 50);
    }

    #[test]
    fn overlap_and_conflicts() {
        let (a, b) = generator(5).overlapping_pair(100, 0.5, 0.4);
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 100);
        let a_accs: std::collections::HashSet<&str> =
            a.iter().map(|r| r.accession.as_str()).collect();
        let shared: Vec<&SeqRecord> =
            b.iter().filter(|r| a_accs.contains(r.accession.as_str())).collect();
        assert_eq!(shared.len(), 50);
        let conflicting = shared
            .iter()
            .filter(|r| {
                let original = a.iter().find(|o| o.accession == r.accession).unwrap();
                original.sequence != r.sequence
            })
            .count();
        assert!((8..=35).contains(&conflicting), "conflicting = {conflicting}");
    }

    #[test]
    fn mutation_rounds_change_things() {
        let mut repo =
            SimulatedRepository::new("s", Representation::Relational, Capability::Logged);
        let mut g = generator(9);
        g.populate(&mut repo, 30);
        let before = repo.clock();
        g.mutation_round(&mut repo, 20);
        assert_eq!(repo.clock() - before, 20);
        assert!(repo.read_log(0).unwrap().len() >= 50);
    }

    #[test]
    fn generated_genes_express() {
        let mut g = generator(11);
        for (n_exons, exon_len) in [(1, 30), (3, 30), (5, 60), (10, 90)] {
            let gene = g.gene_with_structure("syn-gene", n_exons, exon_len);
            assert_eq!(gene.exons().len(), n_exons);
            let protein = express(&gene).expect("generated genes must translate");
            // Coding length (minus stop) / 3 − 1 initiator already counted.
            let expected_residues = (n_exons * exon_len) / 3 - 1;
            assert_eq!(protein.sequence().len(), expected_residues);
            // First residue is always Met.
            assert_eq!(protein.sequence().to_text().chars().next(), Some('M'));
        }
    }
}
