//! # genalg-bql — the Biological Query Language
//!
//! §6.4: "The extended SQL query language … is not necessarily the
//! appropriate end user query language for the biologist. … Thus, the
//! issue is here to design such a biological query language based on the
//! biologists' needs. A query formulated in this query language will then
//! be mapped to the extended SQL of the Unifying Database."
//!
//! BQL reads like the questions biologists ask and compiles to the
//! extended SQL the adapter installed:
//!
//! ```text
//! FIND sequences CONTAINING 'ATTGCCATA' FROM ORGANISM 'Escherichia coli'
//!      SHOW accession, description SORTED BY gc DESCENDING TOP 10
//! COUNT sequences BY organism
//! FIND disputed sequences
//! FIND sequences RESEMBLING 'ATGGCC…' IDENTITY 90% COVERING 80% AS FASTA
//! ```
//!
//! Three pieces of §6.4 live here:
//! * the **textual language** ([`parse`] → [`BqlQuery`] → [`BqlQuery::to_sql`]);
//! * the **graphical output description language** — the trailing
//!   `AS TABLE | AS HISTOGRAM | AS FASTA` directive rendered by [`render`];
//! * the **visual query builder** ([`QueryBuilder`]) — the programmatic AST
//!   the paper's GUI would construct instead of text.

use genalg_core::error::{GenAlgError, Result};
use unidb::{Database, ResultSet};

/// What the query returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Sequences,
    DisputedSequences,
    Features,
    /// The §5.2 protein extension tables (derived by the loader).
    Proteins,
}

/// One biologist-level filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    FromOrganism(String),
    Containing(String),
    Resembling { query: String, identity: f64, cover: f64 },
    LongerThan(u64),
    ShorterThan(u64),
    GcAbove(f64),
    GcBelow(f64),
    DescribedAs(String),
    OfKind(String),
}

/// Output rendering directive (§6.4's graphical output description
/// language, in terminal form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputSpec {
    #[default]
    Table,
    /// ASCII histogram over the first numeric column.
    Histogram,
    /// FASTA dump of (accession, sequence-text) results.
    Fasta,
}

/// A parsed BQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct BqlQuery {
    pub target: Target,
    pub count_by: Option<String>,
    pub filters: Vec<Filter>,
    pub show: Vec<String>,
    pub sort_by: Option<(String, bool)>,
    pub top: Option<u64>,
    pub output: OutputSpec,
}

impl BqlQuery {
    fn new(target: Target) -> Self {
        BqlQuery {
            target,
            count_by: None,
            filters: Vec::new(),
            show: Vec::new(),
            sort_by: None,
            top: None,
            output: OutputSpec::Table,
        }
    }

    /// Map a biologist field name onto a SQL expression for this query's
    /// target table.
    fn map_field(&self, field: &str) -> Result<String> {
        if self.target == Target::Proteins {
            return Ok(match field.to_ascii_lowercase().as_str() {
                "accession" | "length" | "weight" | "cds_start" | "cds_end" => {
                    field.to_ascii_lowercase()
                }
                "residues" | "sequence" => "residues".into(),
                other => {
                    return Err(GenAlgError::Other(format!(
                        "unknown protein field {other:?}; known fields: accession, \
                         length, weight, cds_start, cds_end, residues"
                    )))
                }
            });
        }
        Self::field_sql(field)
    }

    /// Map a biologist field name onto a SQL expression.
    fn field_sql(field: &str) -> Result<String> {
        Ok(match field.to_ascii_lowercase().as_str() {
            "accession" => "accession".into(),
            "organism" => "organism".into(),
            "description" => "description".into(),
            "version" => "version".into(),
            "confidence" => "confidence".into(),
            "sources" => "n_sources".into(),
            "length" => "seq_length(seq)".into(),
            "gc" => "gc_content(seq)".into(),
            "sequence" => "seq".into(),
            "kind" => "kind".into(),
            other => {
                return Err(GenAlgError::Other(format!(
                    "unknown field {other:?}; known fields: accession, organism, \
                     description, version, confidence, sources, length, gc, sequence, kind"
                )))
            }
        })
    }

    /// Compile to the extended SQL of the Unifying Database.
    pub fn to_sql(&self) -> Result<String> {
        let table = match self.target {
            Target::Sequences | Target::DisputedSequences => "public.sequences",
            Target::Features => "public.features",
            Target::Proteins => "public.proteins",
        };
        let mut conditions: Vec<String> = Vec::new();
        if self.target == Target::DisputedSequences {
            conditions.push("disputed = true".into());
        }
        for f in &self.filters {
            conditions.push(match f {
                Filter::FromOrganism(o) => format!("organism = '{}'", escape(o)),
                Filter::Containing(p) => format!("contains(seq, '{}')", escape(p)),
                Filter::Resembling { query, identity, cover } => {
                    format!("resembles(seq, '{}', {identity}, {cover})", escape(query))
                }
                Filter::LongerThan(n) => {
                    if self.target == Target::Proteins {
                        format!("length > {n}")
                    } else {
                        format!("seq_length(seq) > {n}")
                    }
                }
                Filter::ShorterThan(n) => {
                    if self.target == Target::Proteins {
                        format!("length < {n}")
                    } else {
                        format!("seq_length(seq) < {n}")
                    }
                }
                Filter::GcAbove(x) => format!("gc_content(seq) > {x}"),
                Filter::GcBelow(x) => format!("gc_content(seq) < {x}"),
                Filter::DescribedAs(t) => format!("description LIKE '%{}%'", escape(t)),
                Filter::OfKind(k) => format!("kind = '{}'", escape(k)),
            });
        }
        let where_clause = if conditions.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", conditions.join(" AND "))
        };

        let sql = if let Some(by) = &self.count_by {
            let field = self.map_field(by)?;
            format!(
                "SELECT {field} AS {by}, count(*) AS n FROM {table}{where_clause} \
                 GROUP BY {field} ORDER BY count(*) DESC"
            )
        } else {
            let projection = if self.show.is_empty() {
                match self.target {
                    Target::Features => "accession, kind, loc_start, loc_end, strand".to_string(),
                    Target::Proteins => "accession, length, weight".to_string(),
                    _ => "accession, organism, description, seq_length(seq) AS length".to_string(),
                }
            } else {
                self.show
                    .iter()
                    .map(|f| {
                        self.map_field(f).map(
                            |sql| {
                                if sql == *f {
                                    sql
                                } else {
                                    format!("{sql} AS {f}")
                                }
                            },
                        )
                    })
                    .collect::<Result<Vec<_>>>()?
                    .join(", ")
            };
            let order = match &self.sort_by {
                Some((field, asc)) => format!(
                    " ORDER BY {}{}",
                    self.map_field(field)?,
                    if *asc { "" } else { " DESC" }
                ),
                None => String::new(),
            };
            let limit = self.top.map_or(String::new(), |n| format!(" LIMIT {n}"));
            format!("SELECT {projection} FROM {table}{where_clause}{order}{limit}")
        };
        Ok(sql)
    }
}

fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn tokenize(text: &str) -> Result<Vec<String>> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() || c == ',' {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut s = String::from("'");
            loop {
                match chars.next() {
                    Some('\'') => break,
                    Some(c) => s.push(c),
                    None => return Err(GenAlgError::Other("unterminated quote in query".into())),
                }
            }
            tokens.push(s);
        } else {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() || c == ',' || c == '\'' {
                    break;
                }
                s.push(c);
                chars.next();
            }
            tokens.push(s);
        }
    }
    Ok(tokens)
}

struct P {
    tokens: Vec<String>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(GenAlgError::Other(format!(
                "expected {kw}, found {}",
                self.peek().unwrap_or("end of query")
            )))
        }
    }

    fn word(&mut self) -> Result<String> {
        match self.tokens.get(self.pos) {
            Some(t) if !t.starts_with('\'') => {
                self.pos += 1;
                Ok(t.clone())
            }
            other => Err(GenAlgError::Other(format!(
                "expected a word, found {}",
                other.map_or("end of query", |s| s.as_str())
            ))),
        }
    }

    fn quoted(&mut self) -> Result<String> {
        match self.tokens.get(self.pos) {
            Some(t) if t.starts_with('\'') => {
                self.pos += 1;
                Ok(t[1..].to_string())
            }
            other => Err(GenAlgError::Other(format!(
                "expected a quoted value, found {}",
                other.map_or("end of query", |s| s.as_str())
            ))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        let w = self.word()?;
        let w = w.trim_end_matches('%');
        w.parse().map_err(|_| GenAlgError::Other(format!("expected a number, found {w:?}")))
    }

    /// Percentages (`90%`) become fractions; plain numbers pass through.
    fn fraction(&mut self) -> Result<f64> {
        let raw = self.word()?;
        let is_pct = raw.ends_with('%');
        let v: f64 = raw
            .trim_end_matches('%')
            .parse()
            .map_err(|_| GenAlgError::Other(format!("expected a number, found {raw:?}")))?;
        Ok(if is_pct { v / 100.0 } else { v })
    }
}

/// Parse a BQL query.
pub fn parse(text: &str) -> Result<BqlQuery> {
    let mut p = P { tokens: tokenize(text)?, pos: 0 };
    let counting = if p.eat_kw("FIND") {
        false
    } else if p.eat_kw("COUNT") {
        true
    } else {
        return Err(GenAlgError::Other("queries begin with FIND or COUNT".into()));
    };

    let target = if p.eat_kw("DISPUTED") {
        p.expect_kw("SEQUENCES")?;
        Target::DisputedSequences
    } else if p.eat_kw("SEQUENCES") {
        Target::Sequences
    } else if p.eat_kw("FEATURES") {
        Target::Features
    } else if p.eat_kw("PROTEINS") {
        Target::Proteins
    } else {
        return Err(GenAlgError::Other(format!(
            "expected SEQUENCES, DISPUTED SEQUENCES, FEATURES, or PROTEINS, found {}",
            p.peek().unwrap_or("end of query")
        )));
    };
    let mut q = BqlQuery::new(target);

    if counting {
        p.expect_kw("BY")?;
        q.count_by = Some(p.word()?);
    }

    while let Some(tok) = p.peek() {
        let tok = tok.to_ascii_uppercase();
        match tok.as_str() {
            "FROM" => {
                p.pos += 1;
                p.expect_kw("ORGANISM")?;
                q.filters.push(Filter::FromOrganism(p.quoted()?));
            }
            "CONTAINING" => {
                p.pos += 1;
                q.filters.push(Filter::Containing(p.quoted()?));
            }
            "RESEMBLING" => {
                p.pos += 1;
                let query = p.quoted()?;
                let mut identity = 0.9;
                let mut cover = 0.8;
                loop {
                    if p.eat_kw("IDENTITY") {
                        identity = p.fraction()?;
                    } else if p.eat_kw("COVERING") {
                        cover = p.fraction()?;
                    } else {
                        break;
                    }
                }
                q.filters.push(Filter::Resembling { query, identity, cover });
            }
            "LONGER" => {
                p.pos += 1;
                p.expect_kw("THAN")?;
                q.filters.push(Filter::LongerThan(p.number()? as u64));
            }
            "SHORTER" => {
                p.pos += 1;
                p.expect_kw("THAN")?;
                q.filters.push(Filter::ShorterThan(p.number()? as u64));
            }
            "GC" => {
                p.pos += 1;
                if p.eat_kw("ABOVE") {
                    q.filters.push(Filter::GcAbove(p.fraction()?));
                } else {
                    p.expect_kw("BELOW")?;
                    q.filters.push(Filter::GcBelow(p.fraction()?));
                }
            }
            "DESCRIBED" => {
                p.pos += 1;
                p.expect_kw("AS")?;
                q.filters.push(Filter::DescribedAs(p.quoted()?));
            }
            "OF" => {
                p.pos += 1;
                p.expect_kw("KIND")?;
                q.filters.push(Filter::OfKind(p.quoted()?));
            }
            "SHOW" => {
                p.pos += 1;
                q.show.push(p.word()?);
                while let Some(t) = p.peek() {
                    if t.starts_with('\'') {
                        break;
                    }
                    let up = t.to_ascii_uppercase();
                    // `gc` is both a field and the head of the `GC ABOVE`
                    // clause: the lookahead disambiguates.
                    let gc_as_field = up == "GC"
                        && !matches!(
                            p.tokens.get(p.pos + 1).map(|s| s.to_ascii_uppercase()).as_deref(),
                            Some("ABOVE") | Some("BELOW")
                        );
                    if RESERVED.contains(&up.as_str()) && !gc_as_field {
                        break;
                    }
                    q.show.push(p.word()?);
                }
            }
            "SORTED" => {
                p.pos += 1;
                p.expect_kw("BY")?;
                let field = p.word()?;
                let asc = !p.eat_kw("DESCENDING");
                let _ = p.eat_kw("ASCENDING");
                q.sort_by = Some((field, asc));
            }
            "TOP" => {
                p.pos += 1;
                q.top = Some(p.number()? as u64);
            }
            "AS" => {
                p.pos += 1;
                q.output = if p.eat_kw("TABLE") {
                    OutputSpec::Table
                } else if p.eat_kw("HISTOGRAM") {
                    OutputSpec::Histogram
                } else if p.eat_kw("FASTA") {
                    OutputSpec::Fasta
                } else {
                    return Err(GenAlgError::Other("AS expects TABLE, HISTOGRAM, or FASTA".into()));
                };
            }
            other => {
                return Err(GenAlgError::Other(format!("unexpected token {other:?}")));
            }
        }
    }
    Ok(q)
}

const RESERVED: &[&str] = &[
    "FROM",
    "CONTAINING",
    "RESEMBLING",
    "LONGER",
    "SHORTER",
    "GC",
    "DESCRIBED",
    "OF",
    "SHOW",
    "SORTED",
    "TOP",
    "AS",
];

// ---------------------------------------------------------------------------
// Execution and rendering
// ---------------------------------------------------------------------------

/// Compile and run a BQL query against the warehouse.
pub fn run(db: &Database, bql: &str) -> Result<ResultSet> {
    let query = parse(bql)?;
    let sql = query.to_sql()?;
    execute(db, &sql)
}

/// Compile, run, and render per the query's output directive.
pub fn run_rendered(db: &Database, bql: &str) -> Result<String> {
    let query = parse(bql)?;
    let sql = query.to_sql()?;
    let rs = execute(db, &sql)?;
    Ok(render(db, &rs, query.output))
}

fn execute(db: &Database, sql: &str) -> Result<ResultSet> {
    db.execute(sql)
        .map_err(|e| GenAlgError::Other(format!("compiled query failed: {e} (sql: {sql})")))
}

/// Render a result set per the output directive.
pub fn render(db: &Database, rs: &ResultSet, spec: OutputSpec) -> String {
    match spec {
        OutputSpec::Table => db.render(rs),
        OutputSpec::Fasta => {
            let acc_col = rs.columns.iter().position(|c| c == "accession").unwrap_or(0);
            let seq_col = rs
                .columns
                .iter()
                .position(|c| c == "seq" || c == "sequence")
                .unwrap_or(rs.columns.len().saturating_sub(1));
            let mut out = String::new();
            for row in &rs.rows {
                let acc = row.get(acc_col).map_or("?".into(), |d| d.to_string());
                let seq = match row.get(seq_col) {
                    Some(unidb::Datum::Opaque(_, bytes)) => {
                        genalg_core::compact::value_from_bytes(bytes)
                            .map(|v| v.render())
                            .unwrap_or_else(|_| "?".into())
                    }
                    Some(other) => other.to_string(),
                    None => "?".into(),
                };
                out.push_str(&format!(">{acc}\n"));
                for chunk in seq.as_bytes().chunks(60) {
                    out.push_str(&String::from_utf8_lossy(chunk));
                    out.push('\n');
                }
            }
            out
        }
        OutputSpec::Histogram => {
            // First text-ish column is the label, first numeric column the value.
            let mut out = String::new();
            let numeric_col =
                rs.rows.first().and_then(|row| row.iter().position(|d| d.as_float().is_some()));
            let Some(vcol) = numeric_col else {
                return "histogram: no numeric column in result\n".into();
            };
            let label_col = (0..rs.columns.len()).find(|&i| i != vcol).unwrap_or(vcol);
            let max = rs
                .rows
                .iter()
                .filter_map(|r| r[vcol].as_float())
                .fold(f64::MIN, f64::max)
                .max(1e-9);
            for row in &rs.rows {
                let v = row[vcol].as_float().unwrap_or(0.0);
                let bar_len = ((v / max) * 40.0).round().max(0.0) as usize;
                out.push_str(&format!(
                    "{:<24} {:>10.3} |{}\n",
                    row[label_col].to_string(),
                    v,
                    "#".repeat(bar_len)
                ));
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// The visual query builder (the GUI's programmatic face)
// ---------------------------------------------------------------------------

/// Fluent builder mirroring the visual query designer of §6.4: the GUI
/// would build this AST directly; `to_bql()` shows the user the textual
/// equivalent, `build()` yields the query.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    query: BqlQuery,
}

impl QueryBuilder {
    pub fn find_sequences() -> Self {
        QueryBuilder { query: BqlQuery::new(Target::Sequences) }
    }

    pub fn find_disputed() -> Self {
        QueryBuilder { query: BqlQuery::new(Target::DisputedSequences) }
    }

    pub fn count_sequences_by(field: &str) -> Self {
        let mut q = BqlQuery::new(Target::Sequences);
        q.count_by = Some(field.to_string());
        QueryBuilder { query: q }
    }

    pub fn from_organism(mut self, organism: &str) -> Self {
        self.query.filters.push(Filter::FromOrganism(organism.into()));
        self
    }

    pub fn containing(mut self, pattern: &str) -> Self {
        self.query.filters.push(Filter::Containing(pattern.into()));
        self
    }

    pub fn resembling(mut self, query: &str, identity: f64, cover: f64) -> Self {
        self.query.filters.push(Filter::Resembling { query: query.into(), identity, cover });
        self
    }

    pub fn longer_than(mut self, n: u64) -> Self {
        self.query.filters.push(Filter::LongerThan(n));
        self
    }

    pub fn gc_above(mut self, x: f64) -> Self {
        self.query.filters.push(Filter::GcAbove(x));
        self
    }

    pub fn show(mut self, fields: &[&str]) -> Self {
        self.query.show = fields.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn sorted_by(mut self, field: &str, ascending: bool) -> Self {
        self.query.sort_by = Some((field.into(), ascending));
        self
    }

    pub fn top(mut self, n: u64) -> Self {
        self.query.top = Some(n);
        self
    }

    pub fn output(mut self, spec: OutputSpec) -> Self {
        self.query.output = spec;
        self
    }

    pub fn build(self) -> BqlQuery {
        self.query
    }

    /// The textual BQL this visual query corresponds to.
    pub fn to_bql(&self) -> String {
        let q = &self.query;
        let mut s = String::new();
        if let Some(by) = &q.count_by {
            s.push_str(&format!("COUNT SEQUENCES BY {by}"));
        } else {
            s.push_str("FIND ");
            s.push_str(match q.target {
                Target::Sequences => "SEQUENCES",
                Target::DisputedSequences => "DISPUTED SEQUENCES",
                Target::Features => "FEATURES",
                Target::Proteins => "PROTEINS",
            });
        }
        for f in &q.filters {
            match f {
                Filter::FromOrganism(o) => s.push_str(&format!(" FROM ORGANISM '{o}'")),
                Filter::Containing(p) => s.push_str(&format!(" CONTAINING '{p}'")),
                Filter::Resembling { query, identity, cover } => s.push_str(&format!(
                    " RESEMBLING '{query}' IDENTITY {}% COVERING {}%",
                    identity * 100.0,
                    cover * 100.0
                )),
                Filter::LongerThan(n) => s.push_str(&format!(" LONGER THAN {n}")),
                Filter::ShorterThan(n) => s.push_str(&format!(" SHORTER THAN {n}")),
                Filter::GcAbove(x) => s.push_str(&format!(" GC ABOVE {x}")),
                Filter::GcBelow(x) => s.push_str(&format!(" GC BELOW {x}")),
                Filter::DescribedAs(t) => s.push_str(&format!(" DESCRIBED AS '{t}'")),
                Filter::OfKind(k) => s.push_str(&format!(" OF KIND '{k}'")),
            }
        }
        if !q.show.is_empty() {
            s.push_str(&format!(" SHOW {}", q.show.join(", ")));
        }
        if let Some((field, asc)) = &q.sort_by {
            s.push_str(&format!(" SORTED BY {field}{}", if *asc { "" } else { " DESCENDING" }));
        }
        if let Some(n) = q.top {
            s.push_str(&format!(" TOP {n}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_adapter::Adapter;
    use genalg_core::seq::DnaSeq;
    use genalg_etl::integrate::{reconcile, TrustModel};
    use genalg_etl::loader::Loader;
    use genalg_etl::record::SeqRecord;
    use std::collections::HashMap;

    fn warehouse() -> Database {
        let db = Database::in_memory();
        Adapter::install(&db).unwrap();
        let loader = Loader::new(&db);
        loader.ensure_schema().unwrap();
        let records = vec![
            SeqRecord::new("A1", DnaSeq::from_text("ATTGCCATAGGGGGGCC").unwrap())
                .with_description("alpha kinase")
                .with_organism("Escherichia coli")
                .with_source("genbank-sim"),
            SeqRecord::new("B2", DnaSeq::from_text("ATATATATAT").unwrap())
                .with_description("beta repeat")
                .with_organism("Escherichia coli")
                .with_source("genbank-sim"),
            SeqRecord::new("C3", DnaSeq::from_text("GGCCGGCCGGCCGGCCGGCC").unwrap())
                .with_description("gamma gc-rich")
                .with_organism("Homo sapiens")
                .with_source("embl-sim"),
        ];
        let entries = reconcile(&records, &TrustModel::default(), &HashMap::new());
        loader.upsert(&entries).unwrap();
        // One disputed entry.
        let conflict = vec![
            SeqRecord::new("D4", DnaSeq::from_text("ATGGCC").unwrap()).with_source("s1"),
            SeqRecord::new("D4", DnaSeq::from_text("ATGGAC").unwrap()).with_source("s2"),
        ];
        let entries = reconcile(&conflict, &TrustModel::default(), &HashMap::new());
        loader.upsert(&entries).unwrap();
        db
    }

    #[test]
    fn parse_and_compile_basic_find() {
        let q = parse("FIND SEQUENCES CONTAINING 'ATTGCCATA'").unwrap();
        assert_eq!(q.target, Target::Sequences);
        let sql = q.to_sql().unwrap();
        assert!(sql.contains("contains(seq, 'ATTGCCATA')"), "{sql}");
    }

    #[test]
    fn full_query_through_warehouse() {
        let db = warehouse();
        let rs = run(&db, "FIND SEQUENCES CONTAINING 'ATTGCCATA'").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_text(), Some("A1"));

        let rs = run(
            &db,
            "FIND SEQUENCES FROM ORGANISM 'Escherichia coli' \
             SHOW accession, gc SORTED BY gc DESCENDING",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0][0].as_text(), Some("A1"), "A1 has higher GC than B2");
        assert_eq!(rs.columns, vec!["accession", "gc"]);

        let rs = run(&db, "FIND SEQUENCES GC ABOVE 0.9 TOP 5").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_text(), Some("C3"));

        let rs = run(&db, "FIND SEQUENCES LONGER THAN 15").unwrap();
        assert_eq!(rs.len(), 2);

        let rs = run(&db, "FIND SEQUENCES DESCRIBED AS 'kinase'").unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn count_by_compiles_to_group_by() {
        let db = warehouse();
        let rs = run(&db, "COUNT SEQUENCES BY organism").unwrap();
        assert_eq!(rs.columns, vec!["organism", "n"]);
        assert_eq!(rs.rows[0][1].as_int(), Some(2), "E. coli leads");
    }

    #[test]
    fn disputed_sequences_target() {
        let db = warehouse();
        let rs = run(&db, "FIND DISPUTED SEQUENCES SHOW accession, confidence").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_text(), Some("D4"));
    }

    #[test]
    fn resembling_with_percentages() {
        let db = warehouse();
        let rs =
            run(&db, "FIND SEQUENCES RESEMBLING 'ATTGCCATAGGGGGGCC' IDENTITY 90% COVERING 80%")
                .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_text(), Some("A1"));
    }

    #[test]
    fn output_directives_render() {
        let db = warehouse();
        let table = run_rendered(&db, "FIND SEQUENCES SHOW accession AS TABLE").unwrap();
        assert!(table.contains("accession"));

        let fasta = run_rendered(
            &db,
            "FIND SEQUENCES CONTAINING 'ATTGCC' SHOW accession, sequence AS FASTA",
        )
        .unwrap();
        assert!(fasta.starts_with(">A1\n"), "{fasta}");
        assert!(fasta.contains("ATTGCCATAGG"));

        let histogram = run_rendered(&db, "COUNT SEQUENCES BY organism AS HISTOGRAM").unwrap();
        assert!(histogram.contains('#'), "{histogram}");
        assert!(histogram.contains("Escherichia coli"));
    }

    #[test]
    fn proteins_target() {
        let db = warehouse();
        // Add an entity with a clean CDS and derive proteins.
        let records =
            vec![SeqRecord::new("PR1", DnaSeq::from_text("CCATGAAATTTGGGTAACC").unwrap())
                .with_source("s1")];
        let entries = reconcile(&records, &TrustModel::default(), &HashMap::new());
        let loader = Loader::new(&db);
        loader.upsert(&entries).unwrap();
        assert!(loader.derive_proteins().unwrap() >= 1);

        let rs = run(&db, "FIND PROTEINS LONGER THAN 2 SHOW accession, length, weight").unwrap();
        assert!(rs.rows.iter().any(|r| r[0].as_text() == Some("PR1")));
        let rs = run(&db, "FIND PROTEINS SORTED BY weight DESCENDING TOP 1").unwrap();
        assert_eq!(rs.columns, vec!["accession", "length", "weight"]);
        assert!(run(&db, "FIND PROTEINS GC ABOVE 0.5").is_err(), "gc is not a protein field");
    }

    #[test]
    fn parse_errors_are_biologist_readable() {
        assert!(parse("SELECT * FROM x").is_err());
        assert!(parse("FIND").is_err());
        assert!(parse("FIND SEQUENCES CONTAINING").is_err());
        assert!(parse("FIND SEQUENCES NONSENSE").is_err());
        assert!(parse("FIND SEQUENCES AS SPREADSHEET").is_err());
        let err = parse("FIND SEQUENCES SHOW nonexistent").unwrap().to_sql();
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("known fields"));
    }

    #[test]
    fn builder_matches_textual_language() {
        let built = QueryBuilder::find_sequences()
            .from_organism("Escherichia coli")
            .containing("ATTGCC")
            .show(&["accession", "gc"])
            .sorted_by("gc", false)
            .top(10)
            .build();
        let text = QueryBuilder::find_sequences()
            .from_organism("Escherichia coli")
            .containing("ATTGCC")
            .show(&["accession", "gc"])
            .sorted_by("gc", false)
            .top(10)
            .to_bql();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, built, "visual and textual forms agree: {text}");
    }

    #[test]
    fn builder_runs_against_warehouse() {
        let db = warehouse();
        let q = QueryBuilder::count_sequences_by("organism").build();
        let rs = db.execute(&q.to_sql().unwrap()).unwrap();
        assert!(rs.len() >= 2);
    }
}
