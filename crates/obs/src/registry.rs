//! The unified metrics snapshot and its two renderings.
//!
//! Every subsystem folds its counters, gauges, and histogram snapshots
//! into one [`Snapshot`]; `SHOW STATS` ([`Snapshot::stats_rows`]) and
//! `SHOW METRICS` ([`Snapshot::prometheus`]) are renderings of the same
//! data, so they can never disagree about a value.
//!
//! Names follow the `<subsystem>_<name>` convention documented in the
//! crate root: a plain lexicographic sort groups related counters, which
//! is exactly what both renderings rely on.

use crate::hist::{HistogramSnapshot, BUCKETS};

#[derive(Debug, Clone)]
struct Scalar {
    name: String,
    value: u64,
    gauge: bool,
}

/// A scalar sample carrying Prometheus labels (e.g. per-fingerprint
/// counters). Labeled samples render only in the Prometheus exposition —
/// `SHOW STATS` stays a flat, label-free name/value table (its golden
/// name list must not depend on workload contents).
#[derive(Debug, Clone)]
struct LabeledScalar {
    name: String,
    /// Pre-rendered `key="escaped value"` pairs, comma-joined.
    labels: String,
    value: u64,
    gauge: bool,
}

/// Escape a label value for the Prometheus text format: backslash, double
/// quote, and newline must be escaped inside the quoted label value.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// A point-in-time collection of every counter, gauge, and histogram the
/// process wants to expose. Build one per request with the `counter` /
/// `gauge` / `histogram` adders, then render it.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    scalars: Vec<Scalar>,
    labeled: Vec<LabeledScalar>,
    hists: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a monotonically increasing counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.scalars.push(Scalar { name: name.into(), value, gauge: false });
    }

    /// Add a gauge (a value that can go down, e.g. queue depth).
    pub fn gauge(&mut self, name: impl Into<String>, value: u64) {
        self.scalars.push(Scalar { name: name.into(), value, gauge: true });
    }

    /// Add a labeled counter (Prometheus exposition only; `SHOW STATS`
    /// never renders labeled samples).
    pub fn labeled_counter(
        &mut self,
        name: impl Into<String>,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        self.labeled.push(LabeledScalar {
            name: name.into(),
            labels: render_labels(labels),
            value,
            gauge: false,
        });
    }

    /// Add a labeled gauge (Prometheus exposition only).
    pub fn labeled_gauge(&mut self, name: impl Into<String>, labels: &[(&str, &str)], value: u64) {
        self.labeled.push(LabeledScalar {
            name: name.into(),
            labels: render_labels(labels),
            value,
            gauge: true,
        });
    }

    /// Add a latency histogram under `name` (e.g. `query_read_latency`).
    pub fn histogram(&mut self, name: impl Into<String>, snap: HistogramSnapshot) {
        self.hists.push((name.into(), snap));
    }

    /// Look up one scalar (counter or gauge) by name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.scalars.iter().find(|s| s.name == name).map(|s| s.value)
    }

    /// Look up one histogram snapshot by family name (without `_us`).
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Look up one labeled scalar by family name and exact label set.
    pub fn labeled_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let rendered = render_labels(labels);
        self.labeled.iter().find(|s| s.name == name && s.labels == rendered).map(|s| s.value)
    }

    /// The snapshot of activity *between* `baseline` and `self`: counters
    /// and histograms subtract (saturating), gauges keep their current
    /// value (a queue depth has no meaningful "since"). Names present only
    /// in `self` pass through unchanged; names present only in `baseline`
    /// are dropped. This is how a load harness turns two cumulative
    /// `SHOW STATS`-style snapshots into per-phase counters and per-phase
    /// latency quantiles.
    pub fn delta_since(&self, baseline: &Snapshot) -> Snapshot {
        let scalars = self
            .scalars
            .iter()
            .map(|s| Scalar {
                name: s.name.clone(),
                value: if s.gauge {
                    s.value
                } else {
                    s.value.saturating_sub(baseline.value(&s.name).unwrap_or(0))
                },
                gauge: s.gauge,
            })
            .collect();
        let labeled = self
            .labeled
            .iter()
            .map(|s| {
                let base = baseline
                    .labeled
                    .iter()
                    .find(|b| b.name == s.name && b.labels == s.labels)
                    .map_or(0, |b| b.value);
                LabeledScalar {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    value: if s.gauge { s.value } else { s.value.saturating_sub(base) },
                    gauge: s.gauge,
                }
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(name, h)| {
                let diffed = match baseline.hist(name) {
                    Some(b) => h.delta_since(b),
                    None => h.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        Snapshot { scalars, labeled, hists }
    }

    /// Rows for `SHOW STATS`: every scalar plus, per histogram, derived
    /// `<name>_count` / `<name>_mean_us` / `<name>_p50_us` / `<name>_p95_us`
    /// rows. Sorted by name, which groups subsystems thanks to the naming
    /// convention.
    pub fn stats_rows(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> =
            self.scalars.iter().map(|s| (s.name.clone(), s.value)).collect();
        for (name, h) in &self.hists {
            rows.push((format!("{name}_count"), h.count));
            rows.push((format!("{name}_mean_us"), h.mean_us()));
            rows.push((format!("{name}_p50_us"), h.quantile_us(0.50)));
            rows.push((format!("{name}_p95_us"), h.quantile_us(0.95)));
        }
        rows.sort();
        rows
    }

    /// Prometheus text exposition (text format 0.0.4): `# TYPE` comments,
    /// scalar samples, and full cumulative bucket series per histogram.
    /// `namespace` prefixes every family name (e.g. `genalg`).
    pub fn prometheus(&self, namespace: &str) -> String {
        let prefix = if namespace.is_empty() { String::new() } else { format!("{namespace}_") };
        let mut scalars = self.scalars.clone();
        scalars.sort_by(|a, b| a.name.cmp(&b.name));
        let mut hists: Vec<&(String, HistogramSnapshot)> = self.hists.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));

        let mut labeled = self.labeled.clone();
        labeled.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));

        let mut out = String::new();
        for s in &scalars {
            let kind = if s.gauge { "gauge" } else { "counter" };
            out.push_str(&format!("# TYPE {prefix}{} {kind}\n", s.name));
            out.push_str(&format!("{prefix}{} {}\n", s.name, s.value));
        }
        // Labeled families: one `# TYPE` line per family, samples grouped
        // under it (the sort above makes each family contiguous).
        let mut last_family: Option<&str> = None;
        for s in &labeled {
            if last_family != Some(s.name.as_str()) {
                let kind = if s.gauge { "gauge" } else { "counter" };
                out.push_str(&format!("# TYPE {prefix}{} {kind}\n", s.name));
                last_family = Some(s.name.as_str());
            }
            out.push_str(&format!("{prefix}{}{{{}}} {}\n", s.name, s.labels, s.value));
        }
        for (name, h) in hists {
            out.push_str(&format!("# TYPE {prefix}{name}_us histogram\n"));
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cumulative += b;
                let le = if i == BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    HistogramSnapshot::bucket_upper_bound(i).to_string()
                };
                out.push_str(&format!("{prefix}{name}_us_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{prefix}{name}_us_sum {}\n", h.sum_us));
            out.push_str(&format!("{prefix}{name}_us_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_hist() -> HistogramSnapshot {
        let h = Histogram::default();
        h.record_us(0);
        h.record_us(5);
        h.record_us(300);
        h.snapshot()
    }

    #[test]
    fn stats_rows_sort_by_subsystem_prefix() {
        let mut s = Snapshot::new();
        s.counter("wal_appends", 7);
        s.counter("cache_plan_hits", 3);
        s.gauge("server_queue_depth", 1);
        s.counter("cache_plan_misses", 2);
        s.histogram("query_read_latency", sample_hist());
        let rows = s.stats_rows();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "cache_plan_hits",
                "cache_plan_misses",
                "query_read_latency_count",
                "query_read_latency_mean_us",
                "query_read_latency_p50_us",
                "query_read_latency_p95_us",
                "server_queue_depth",
                "wal_appends",
            ]
        );
        assert_eq!(rows[0].1, 3);
        assert_eq!(rows[2].1, 3, "histogram count");
    }

    #[test]
    fn delta_since_subtracts_counters_but_not_gauges() {
        let mut before = Snapshot::new();
        before.counter("query_ok", 100);
        before.gauge("server_queue_depth", 5);
        before.histogram("query_read_latency", sample_hist());

        let mut after = Snapshot::new();
        after.counter("query_ok", 160);
        after.counter("query_err", 2); // new family appears mid-run
        after.gauge("server_queue_depth", 1);
        let h = Histogram::default();
        h.record_us(0);
        h.record_us(5);
        h.record_us(300);
        h.record_us(9_000);
        after.histogram("query_read_latency", h.snapshot());

        let d = after.delta_since(&before);
        assert_eq!(d.value("query_ok"), Some(60));
        assert_eq!(d.value("query_err"), Some(2));
        // Gauges are instantaneous, not cumulative: keep the current value.
        assert_eq!(d.value("server_queue_depth"), Some(1));
        // Only the one sample recorded between the snapshots remains.
        let ph = d.hist("query_read_latency").unwrap();
        assert_eq!(ph.count, 1);
        assert_eq!(ph.quantile_us(1.0), 16383); // 9000 µs → 14-bit bucket
                                                // Names only in the baseline are dropped, not negated.
        assert_eq!(d.value("server_queue_peak"), None);
    }

    #[test]
    fn prometheus_text_format_is_well_formed() {
        let mut s = Snapshot::new();
        s.counter("query_ok", 42);
        s.gauge("server_queue_depth", 2);
        s.histogram("query_read_latency", sample_hist());
        let text = s.prometheus("genalg");
        assert!(text.contains("# TYPE genalg_query_ok counter\n"));
        assert!(text.contains("genalg_query_ok 42\n"));
        assert!(text.contains("# TYPE genalg_server_queue_depth gauge\n"));
        assert!(text.contains("# TYPE genalg_query_read_latency_us histogram\n"));
        assert!(text.contains("genalg_query_read_latency_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("genalg_query_read_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("genalg_query_read_latency_us_sum 305\n"));
        assert!(text.contains("genalg_query_read_latency_us_count 3\n"));
        // Buckets are cumulative and non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
        // Every non-comment line is `name{labels?} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "));
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value.parse::<u64>().is_ok(), "bad value in {line}");
        }
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
        assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    }

    #[test]
    fn labeled_samples_render_grouped_with_one_type_line() {
        let mut s = Snapshot::new();
        s.labeled_counter("query_fingerprint_executions", &[("fingerprint", "b")], 2);
        s.labeled_counter("query_fingerprint_executions", &[("fingerprint", "a")], 7);
        s.labeled_gauge("query_fingerprint_rows", &[("fingerprint", "a")], 1);
        let text = s.prometheus("genalg");
        // One TYPE line per family, samples contiguous and label-sorted.
        assert_eq!(text.matches("# TYPE genalg_query_fingerprint_executions counter").count(), 1);
        assert!(text.contains("# TYPE genalg_query_fingerprint_rows gauge\n"));
        let a = text.find("executions{fingerprint=\"a\"} 7").unwrap();
        let b = text.find("executions{fingerprint=\"b\"} 2").unwrap();
        assert!(a < b, "labeled samples must sort by label:\n{text}");
        // Lookup by exact label set works; wrong labels miss.
        assert_eq!(
            s.labeled_value("query_fingerprint_executions", &[("fingerprint", "a")]),
            Some(7)
        );
        assert_eq!(s.labeled_value("query_fingerprint_executions", &[("fingerprint", "z")]), None);
    }

    #[test]
    fn labeled_samples_escape_hostile_values_and_parse_line_shaped() {
        let hostile = "sneaky\"quote\\and\nnewline";
        let mut s = Snapshot::new();
        s.labeled_counter("query_fingerprint_executions", &[("fingerprint", hostile)], 3);
        let text = s.prometheus("genalg");
        let line = text.lines().find(|l| l.contains("fingerprint=")).unwrap();
        // The raw newline must not split the sample line.
        assert!(line.contains("\\n") && line.contains("\\\"") && line.contains("\\\\"));
        let (name, value) = line.rsplit_once(' ').unwrap();
        assert!(name.starts_with("genalg_query_fingerprint_executions{"));
        assert_eq!(value.parse::<u64>().unwrap(), 3);
    }

    #[test]
    fn labeled_samples_never_reach_stats_rows_but_do_delta() {
        let mut before = Snapshot::new();
        before.labeled_counter("query_fingerprint_executions", &[("fingerprint", "a")], 5);
        let mut after = Snapshot::new();
        after.labeled_counter("query_fingerprint_executions", &[("fingerprint", "a")], 9);
        after.labeled_counter("query_fingerprint_executions", &[("fingerprint", "b")], 4);
        assert!(after.stats_rows().is_empty(), "labels must not leak into SHOW STATS");
        let d = after.delta_since(&before);
        assert_eq!(
            d.labeled_value("query_fingerprint_executions", &[("fingerprint", "a")]),
            Some(4)
        );
        assert_eq!(
            d.labeled_value("query_fingerprint_executions", &[("fingerprint", "b")]),
            Some(4)
        );
    }

    #[test]
    fn empty_namespace_emits_bare_names() {
        let mut s = Snapshot::new();
        s.counter("wal_syncs", 1);
        let text = s.prometheus("");
        assert!(text.contains("# TYPE wal_syncs counter\nwal_syncs 1\n"));
    }
}
