//! Incident flight recorder: self-contained diagnostic bundles written to
//! disk when something crosses a line.
//!
//! A bundle is a plain-text report of named sections (trace-ring tail,
//! slow queries, metric history, hottest fingerprints, plan-audit tail —
//! whatever the caller assembles), rendered with `== section ==` headers
//! so a human can read it raw and a test can assert sections exist. The
//! server writes one on worker panics and conflict storms (from the
//! sampler tick); the load harness writes one for every SLO violation, so
//! a failing CI run ships its own diagnosis.
//!
//! [`IncidentRecorder`] adds rate limiting: a storm of triggers produces
//! one bundle per interval, not thousands of identical files.

use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Where incident bundles land: `GENALG_INCIDENT_DIR` if set, else
/// `target/incidents` relative to the working directory.
pub fn incident_dir() -> PathBuf {
    match std::env::var("GENALG_INCIDENT_DIR") {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir.trim()),
        _ => PathBuf::from("target/incidents"),
    }
}

/// One self-contained incident report: a reason plus ordered sections.
#[derive(Debug, Clone)]
pub struct IncidentBundle {
    /// Why this bundle exists (e.g. `slo_violation`, `worker_panic`).
    pub reason: String,
    sections: Vec<(String, String)>,
}

impl IncidentBundle {
    /// An empty bundle for `reason`.
    pub fn new(reason: impl Into<String>) -> Self {
        IncidentBundle { reason: reason.into(), sections: Vec::new() }
    }

    /// Append a section. An empty body renders as `(none)` so the bundle
    /// always shows which sections were *collected*, not just non-empty.
    pub fn section(&mut self, title: impl Into<String>, body: impl Into<String>) -> &mut Self {
        self.sections.push((title.into(), body.into()));
        self
    }

    /// Section titles, in order.
    pub fn section_titles(&self) -> Vec<&str> {
        self.sections.iter().map(|(t, _)| t.as_str()).collect()
    }

    /// The full plain-text report.
    pub fn render(&self) -> String {
        let mut out = format!("incident: {}\n", self.reason);
        for (title, body) in &self.sections {
            out.push_str(&format!("\n== {title} ==\n"));
            let body = body.trim_end();
            if body.is_empty() {
                out.push_str("(none)\n");
            } else {
                out.push_str(body);
                out.push('\n');
            }
        }
        out
    }

    /// Write the rendered bundle to `dir` as
    /// `incident-<hint>-<epoch_secs>-<seq>.txt`, creating the directory.
    /// The global sequence number keeps same-second bundles distinct.
    pub fn write_to(&self, dir: &Path, hint: &str) -> std::io::Result<PathBuf> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)?;
        let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let hint: String = hint
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = dir.join(format!("incident-{hint}-{secs}-{seq}.txt"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Rate-limited bundle writer for automatic triggers.
#[derive(Debug)]
pub struct IncidentRecorder {
    dir: PathBuf,
    min_interval: Duration,
    last_write: Mutex<Option<Instant>>,
    written: AtomicU64,
    suppressed: AtomicU64,
}

impl IncidentRecorder {
    /// A recorder writing to `dir`, at most one bundle per `min_interval`.
    pub fn new(dir: PathBuf, min_interval: Duration) -> Self {
        IncidentRecorder {
            dir,
            min_interval,
            last_write: Mutex::new(None),
            written: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// The directory bundles land in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write `bundle` unless one was written within the rate-limit window
    /// (then it is counted as suppressed). Returns the path written, if
    /// any; I/O failures are swallowed into `None` — the flight recorder
    /// must never take the server down with it.
    pub fn record(&self, bundle: &IncidentBundle, hint: &str) -> Option<PathBuf> {
        {
            let mut last = self.last_write.lock();
            if let Some(at) = *last {
                if at.elapsed() < self.min_interval {
                    self.suppressed.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            *last = Some(Instant::now());
        }
        match bundle.write_to(&self.dir, hint) {
            Ok(path) => {
                self.written.fetch_add(1, Ordering::Relaxed);
                Some(path)
            }
            Err(_) => None,
        }
    }

    /// Bundles written since creation.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Triggers swallowed by the rate limit.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_carries_reason_and_sections_in_order() {
        let mut b = IncidentBundle::new("slo_violation");
        b.section("fingerprints", "fp1 12 calls");
        b.section("history", "");
        b.section("plan changes", "seq 1: a -> b");
        let text = b.render();
        assert!(text.starts_with("incident: slo_violation\n"));
        let fp = text.find("== fingerprints ==").unwrap();
        let hist = text.find("== history ==").unwrap();
        let plans = text.find("== plan changes ==").unwrap();
        assert!(fp < hist && hist < plans, "sections out of order:\n{text}");
        // Empty sections still show up, marked as collected-but-empty.
        assert!(text.contains("== history ==\n(none)\n"), "{text}");
        assert_eq!(b.section_titles(), vec!["fingerprints", "history", "plan changes"]);
    }

    #[test]
    fn write_to_creates_distinct_sanitized_files() {
        let dir = std::env::temp_dir().join(format!("genalg-obs-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = IncidentBundle::new("test");
        let p1 = b.write_to(&dir, "point_lookups").unwrap();
        let p2 = b.write_to(&dir, "weird/../name with spaces").unwrap();
        assert_ne!(p1, p2);
        let n2 = p2.file_name().unwrap().to_str().unwrap();
        assert!(!n2.contains('/') && !n2.contains(' '), "unsanitized name: {n2}");
        assert!(std::fs::read_to_string(&p1).unwrap().starts_with("incident: test"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorder_rate_limits() {
        let dir = std::env::temp_dir().join(format!("genalg-obs-rl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = IncidentRecorder::new(dir.clone(), Duration::from_secs(3600));
        let b = IncidentBundle::new("storm");
        assert!(rec.record(&b, "storm").is_some());
        assert!(rec.record(&b, "storm").is_none(), "second write inside the window");
        assert_eq!(rec.written(), 1);
        assert_eq!(rec.suppressed(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incident_dir_honours_env_override() {
        // Read-only check of the default (the env var is process-global;
        // tests must not set it and race other tests).
        if std::env::var("GENALG_INCIDENT_DIR").is_err() {
            assert_eq!(incident_dir(), PathBuf::from("target/incidents"));
        }
    }
}
