//! Structured spans: named, timed regions with key/value fields and
//! parent links, recorded into a bounded ring buffer.
//!
//! The recorder is built for an always-on deployment:
//!
//! * [`Tracer::enabled`] is one relaxed atomic load — the entire cost of
//!   instrumentation when tracing is off is that load plus a branch.
//! * A disabled [`Tracer::span`] returns an inert guard: no id allocation,
//!   no clock read, no field storage, nothing on drop.
//! * An enabled span records itself when dropped: one `fetch_add` to claim
//!   a ring slot and one per-slot mutex lock to store the record. Slots
//!   are independent, so concurrent span completions only contend when
//!   they hash to the same slot.
//!
//! The ring keeps the most recent `capacity` spans; older records are
//! overwritten (and counted as dropped), which is the right trade for a
//! flight recorder — the interesting spans are the latest ones.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (1-based; 0 never appears).
    pub id: u64,
    /// Parent span id, 0 for a root span.
    pub parent: u64,
    /// Static span name (e.g. `"exec.seq_scan"`).
    pub name: &'static str,
    /// Start time in microseconds since the tracer was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
    /// Key/value fields attached while the span was open.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// One-line human rendering, used by `SHOW TRACE`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} id={} parent={} start_us={} elapsed_us={}",
            self.name, self.id, self.parent, self.start_us, self.elapsed_us
        );
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

/// A lock-free span recorder with a bounded ring buffer.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    cursor: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    ring: Vec<Mutex<Option<SpanRecord>>>,
}

impl Tracer {
    /// A tracer keeping the most recent `capacity` spans. Starts disabled.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            cursor: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Is span recording on? A single relaxed load — this is the whole
    /// per-call-site cost when tracing is disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn span recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Open a root span. Inert (free) when the tracer is disabled.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_with_parent(name, 0)
    }

    /// Open a span under an explicit parent id (0 = root).
    pub fn span_with_parent(&self, name: &'static str, parent: u64) -> Span<'_> {
        if !self.enabled() {
            return Span::inert();
        }
        Span {
            tracer: Some(self),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            start: Some(Instant::now()),
            start_us: self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            fields: Vec::new(),
        }
    }

    /// Spans recorded since creation (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let len = self.ring.len() as u64;
        let cursor = self.cursor.load(Ordering::Acquire);
        let mut out = Vec::new();
        for off in 0..len {
            let idx = ((cursor + off) % len) as usize;
            if let Some(rec) = self.ring[idx].lock().as_ref() {
                out.push(rec.clone());
            }
        }
        out
    }

    /// Drop every retained span (counters keep their totals).
    pub fn clear(&self) {
        for slot in &self.ring {
            *slot.lock() = None;
        }
    }

    fn finish(&self, record: SpanRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::AcqRel);
        let idx = (seq % self.ring.len() as u64) as usize;
        if self.ring[idx].lock().replace(record).is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }
}

/// An open span; records itself into the tracer on drop. Obtained from
/// [`Tracer::span`] — inert (every method a no-op) when tracing is off.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Option<Instant>,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl<'a> Span<'a> {
    fn inert() -> Self {
        Span {
            tracer: None,
            id: 0,
            parent: 0,
            name: "",
            start: None,
            start_us: 0,
            fields: Vec::new(),
        }
    }

    /// This span's id (0 when inert) — pass to
    /// [`Tracer::span_with_parent`] to link children across threads.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Is this a live (recording) span?
    pub fn is_recording(&self) -> bool {
        self.tracer.is_some()
    }

    /// Attach a key/value field. No-op on an inert span.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.tracer.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// Open a child span of this one.
    pub fn child(&self, name: &'static str) -> Span<'a> {
        match self.tracer {
            Some(t) => t.span_with_parent(name, self.id),
            None => Span::inert(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer else { return };
        let elapsed_us =
            self.start.map_or(0, |s| s.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        tracer.finish(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            elapsed_us,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        assert!(!t.enabled());
        {
            let mut s = t.span("noop");
            s.field("k", 1u64);
            assert!(!s.is_recording());
            assert_eq!(s.id(), 0);
            let _child = s.child("noop.child");
        }
        assert_eq!(t.recorded(), 0);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn spans_record_fields_and_parent_links() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        let child_id;
        {
            let mut root = t.span("query");
            root.field("sql", "select 1");
            root.field("rows", 3u64);
            let child = root.child("query.exec");
            child_id = child.id();
            assert_ne!(child_id, 0);
            assert_ne!(child_id, root.id());
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        // The child drops first, so it is the older record.
        assert_eq!(spans[0].name, "query.exec");
        assert_eq!(spans[1].name, "query");
        assert_eq!(spans[0].parent, spans[1].id);
        assert_eq!(spans[0].id, child_id);
        assert_eq!(spans[1].parent, 0);
        let rendered = spans[1].render();
        assert!(rendered.contains("sql=\"select 1\""), "got {rendered}");
        assert!(rendered.contains("rows=3"), "got {rendered}");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        for _ in 0..10 {
            let _s = t.span("tick");
        }
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6);
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        // Oldest-first: the four survivors are the last four recorded.
        for pair in spans.windows(2) {
            assert!(pair[0].id < pair[1].id);
        }
        t.clear();
        assert!(t.spans().is_empty());
        assert_eq!(t.recorded(), 10, "clear keeps totals");
    }

    #[test]
    fn capacity_floor_is_one() {
        let t = Tracer::new(0);
        assert_eq!(t.capacity(), 1);
        t.set_enabled(true);
        let _ = t.span("a");
        let _ = t.span("b");
        assert_eq!(t.spans().len(), 1);
    }
}
