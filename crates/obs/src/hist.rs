//! Log₂-bucketed latency histograms over microseconds.
//!
//! Bucket *i* holds samples whose duration in microseconds has *i*
//! significant bits, which gives ~2× resolution from 1 µs to ~18 minutes
//! in 31 buckets with a single `fetch_add` per sample. Bucket 0 is the
//! zero-microsecond bucket; the top bucket is open-ended (`+Inf` in
//! Prometheus terms) and absorbs everything at or above 2³⁰ µs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets.
pub const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds. Lock-free: every
/// recording is three relaxed `fetch_add`s.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one sample given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = bucket_index(us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.snapshot().mean_us()
    }

    /// Approximate quantile: the upper bound (in µs) of the bucket containing
    /// the q-th sample. `q` in [0, 1].
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.snapshot().quantile_us(q)
    }

    /// A consistent-enough point-in-time copy (relaxed loads; counters may
    /// be mid-update under concurrent recording, which only ever smears a
    /// sample between `count` and its bucket, never corrupts either).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Which bucket a microsecond value lands in.
fn bucket_index(us: u64) -> usize {
    (64 - us.leading_zeros() as usize).min(BUCKETS - 1)
}

/// A plain-integer copy of a [`Histogram`], used for rendering and
/// cross-bucket math without re-reading atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples, in microseconds.
    pub sum_us: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `i` in microseconds, `u64::MAX` for
    /// the open-ended top bucket. Bucket 0 holds exactly the 0 µs samples.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The histogram of samples recorded *since* `baseline` was taken:
    /// per-bucket counts, sum, and count all subtract (saturating, so a
    /// mismatched baseline degrades to zeros instead of wrapping). Both
    /// snapshots must come from the same live histogram for the result to
    /// mean anything — this is the phase-diffing primitive load harnesses
    /// use to get per-phase p99s out of cumulative histograms.
    pub fn delta_since(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(baseline.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            sum_us: self.sum_us.saturating_sub(baseline.sum_us),
            count: self.count.saturating_sub(baseline.count),
        }
    }

    /// Approximate quantile: the upper bound (in µs) of the bucket containing
    /// the q-th sample. `q` is clamped to [0, 1]; an empty histogram reports 0.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(0), 0);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(1), 1);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(3), 7);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn mean_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_us(), (1 + 2 + 4 + 100 + 1000) / 5);
        // p50 falls in the bucket holding the third sample (4 µs → 3 bits →
        // upper bound 7).
        assert_eq!(h.quantile_us(0.5), 7);
        assert!(h.quantile_us(1.0) >= 1000);
        assert_eq!(Histogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn delta_since_isolates_a_phase() {
        let h = Histogram::default();
        h.record_us(3);
        h.record_us(1000);
        let before = h.snapshot();
        h.record_us(7);
        h.record_us(7);
        h.record_us(200_000);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 3);
        assert_eq!(delta.sum_us, 7 + 7 + 200_000);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 3);
        // The pre-phase samples are gone: the phase median is the 7 µs
        // bucket, not the 1000 µs one.
        assert_eq!(delta.quantile_us(0.5), 7);
        // A stale baseline (taken *after* the snapshot it is subtracted
        // from) degrades to zeros instead of wrapping.
        let empty = before.delta_since(&h.snapshot());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.buckets.iter().sum::<u64>(), 0);
    }

    #[test]
    fn snapshot_matches_live_histogram() {
        let h = Histogram::default();
        h.record_us(0);
        h.record_us(7);
        h.record_us(500);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_us, 507);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.quantile_us(0.5), h.quantile_us(0.5));
        assert_eq!(s.mean_us(), h.mean_us());
    }
}
