//! # genalg-obs — the observability substrate
//!
//! Everything the rest of the workspace uses to *see* itself: structured
//! spans, latency histograms, a unified metrics snapshot, and Prometheus
//! text exposition. The build is fully offline, so there is no external
//! `tracing` or `prometheus` dependency — the whole layer is hand-rolled
//! on `AtomicU64` and `parking_lot`, in the same spirit as the server's
//! original metrics registry.
//!
//! Design constraints, in order:
//!
//! 1. **Cheap when off.** Instrumentation is compiled in everywhere and
//!    must be affordable always-on. [`Tracer::enabled`] is a single
//!    relaxed atomic load; a disabled [`Tracer::span`] returns an inert
//!    guard that allocates nothing and does nothing on drop.
//! 2. **Lock-free on the hot path.** Counters and histogram buckets are
//!    `fetch_add(Relaxed)`. Only finished span records touch a lock, and
//!    then only the one ring-buffer slot they land in.
//! 3. **One snapshot path.** Every subsystem folds its counters into a
//!    [`registry::Snapshot`]; `SHOW STATS` and `SHOW METRICS` are two
//!    renderings of the same snapshot, so they can never disagree.
//!
//! Counter naming convention (pinned by the server's golden test): every
//! scalar is `<subsystem>_<name>` with subsystem one of `cache`, `etl`,
//! `exec`, `obs`, `pool`, `query`, `server`, `wal`. Plain lexicographic
//! sort therefore groups related counters — that is the point of the
//! convention, not a side effect.

pub mod fingerprint;
pub mod hist;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use fingerprint::{
    fingerprint_id, fingerprint_text, CacheTier, Execution, FingerprintRegistry, FingerprintStats,
    PlanChange,
};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{incident_dir, IncidentBundle, IncidentRecorder};
pub use registry::{escape_label_value, Snapshot};
pub use span::{FieldValue, Span, SpanRecord, Tracer};
pub use timeseries::{MetricRing, Sampler, DEFAULT_HISTORY_SLOTS};

use std::sync::atomic::AtomicU64;
use std::sync::OnceLock;

/// Ring-buffer capacity of the process-global tracer.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer. Engine internals (WAL sync, buffer pool,
/// planner, ETL monitors) record here without any handle plumbing; the
/// server enables it via config and drains it for `SHOW TRACE`.
///
/// Starts disabled unless the `GENALG_TRACE` environment variable is set
/// to `1`/`true`/`on`.
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| {
        let t = Tracer::new(DEFAULT_SPAN_CAPACITY);
        let on = std::env::var("GENALG_TRACE").is_ok_and(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        });
        if on {
            t.set_enabled(true);
        }
        t
    })
}

/// Process-global ETL counters. The warehouse is not reachable from the
/// server's registry by handle (it owns its own `unidb::Database`), so
/// refresh instrumentation aggregates here and the exposition surface
/// reads whatever this process has done.
#[derive(Debug)]
pub struct EtlCounters {
    /// Refresh rounds started (incremental or full reload).
    pub refresh_rounds: AtomicU64,
    /// Source deltas collected across all rounds.
    pub deltas: AtomicU64,
    /// Entities re-reconciled and upserted.
    pub upserts: AtomicU64,
    /// Entities deleted from the warehouse.
    pub deletes: AtomicU64,
    /// Sources that exhausted every retry attempt in a round.
    pub source_failures: AtomicU64,
    /// Individual retry attempts after a transient monitor failure.
    pub retries: AtomicU64,
}

static ETL: EtlCounters = EtlCounters {
    refresh_rounds: AtomicU64::new(0),
    deltas: AtomicU64::new(0),
    upserts: AtomicU64::new(0),
    deletes: AtomicU64::new(0),
    source_failures: AtomicU64::new(0),
    retries: AtomicU64::new(0),
};

/// The process-global [`EtlCounters`].
pub fn etl_counters() -> &'static EtlCounters {
    &ETL
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn global_tracer_is_a_singleton() {
        let a = tracer() as *const Tracer;
        let b = tracer() as *const Tracer;
        assert_eq!(a, b);
    }

    #[test]
    fn etl_counters_accumulate() {
        let before = etl_counters().retries.load(Ordering::Relaxed);
        etl_counters().retries.fetch_add(3, Ordering::Relaxed);
        assert!(etl_counters().retries.load(Ordering::Relaxed) >= before + 3);
    }
}
