//! Metrics time-series: a fixed-size ring of per-interval snapshot deltas
//! plus the background sampler that feeds it.
//!
//! The server's counters are cumulative; "what changed in the last four
//! minutes" needs periodic differencing. [`MetricRing::push`] takes the
//! current cumulative [`Snapshot`], diffs it against the previous push
//! with [`Snapshot::delta_since`], and retains the delta in a bounded
//! ring (default 240 slots — four minutes at the server's 1 s cadence).
//! `SHOW HISTORY <metric>` renders one metric's per-slot values.
//!
//! [`Sampler`] is the generic tick thread: it runs a closure at a fixed
//! interval until the closure returns `false` or the sampler is dropped.
//! The server's closure upgrades a `Weak` service handle, samples, and
//! runs the incident-trigger checks; the obs bench reuses the same type
//! to measure the sampler's interference with the hot path.

use crate::registry::Snapshot;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default ring capacity: 240 slots (four minutes at 1 s per slot).
pub const DEFAULT_HISTORY_SLOTS: usize = 240;

/// A bounded ring of per-interval metric deltas.
#[derive(Debug)]
pub struct MetricRing {
    inner: Mutex<RingInner>,
    capacity: usize,
    /// Slots pushed since creation (including ones since overwritten).
    pushed: AtomicU64,
}

#[derive(Debug, Default)]
struct RingInner {
    /// `(slot_seq, delta)` pairs, oldest first. Slot sequence is 1-based
    /// and monotonic, so history output stays aligned as slots fall off.
    slots: VecDeque<(u64, Snapshot)>,
    /// The cumulative snapshot the next push diffs against.
    last: Option<Snapshot>,
}

impl MetricRing {
    /// A ring retaining the most recent `capacity` interval deltas.
    pub fn new(capacity: usize) -> Self {
        MetricRing {
            inner: Mutex::new(RingInner::default()),
            capacity: capacity.max(1),
            pushed: AtomicU64::new(0),
        }
    }

    /// Record one tick: diff `cumulative` against the previous push and
    /// retain the delta. The very first push records the snapshot as-is
    /// (everything since process start). Returns a clone of the delta so
    /// the caller can run trigger checks on it without re-locking.
    pub fn push(&self, cumulative: Snapshot) -> Snapshot {
        let mut inner = self.inner.lock();
        let delta = match &inner.last {
            Some(prev) => cumulative.delta_since(prev),
            None => cumulative.clone(),
        };
        inner.last = Some(cumulative);
        let seq = self.pushed.fetch_add(1, Ordering::Relaxed) + 1;
        if inner.slots.len() >= self.capacity {
            inner.slots.pop_front();
        }
        inner.slots.push_back((seq, delta.clone()));
        delta
    }

    /// Per-slot values of one metric, oldest first, as `(slot, value)`
    /// pairs. `metric` may name any scalar or derived histogram row that
    /// appears in `SHOW STATS` (e.g. `query_ok`,
    /// `query_read_latency_p95_us`). Slots where the metric is absent are
    /// skipped.
    pub fn history(&self, metric: &str) -> Vec<(u64, u64)> {
        let inner = self.inner.lock();
        inner
            .slots
            .iter()
            .filter_map(|(seq, delta)| {
                delta.stats_rows().into_iter().find(|(n, _)| n == metric).map(|(_, v)| (*seq, v))
            })
            .collect()
    }

    /// Sorted names available in the most recent slot — what
    /// `SHOW HISTORY` suggests when asked for an unknown metric.
    pub fn metric_names(&self) -> Vec<String> {
        let inner = self.inner.lock();
        inner
            .slots
            .back()
            .map(|(_, d)| d.stats_rows().into_iter().map(|(n, _)| n).collect())
            .unwrap_or_default()
    }

    /// Slots currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }
}

/// Shutdown signal shared between a [`Sampler`] and its tick thread.
#[derive(Debug, Default)]
struct Stop {
    flag: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A background thread running a closure at a fixed interval.
///
/// Dropping the sampler stops the thread promptly (condvar wakeup, no
/// interval-long stall). The closure returning `false` also stops it —
/// that is how a `Weak`-holding closure dies with its service.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<Stop>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Run `tick` every `interval` on a named thread until it returns
    /// `false` or the sampler is dropped. The first tick fires after one
    /// full interval, not immediately.
    pub fn spawn(interval: Duration, mut tick: impl FnMut() -> bool + Send + 'static) -> Sampler {
        let stop = Arc::new(Stop::default());
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("genalg-sampler".into())
            .spawn(move || loop {
                {
                    let mut guard = thread_stop.lock.lock();
                    if !thread_stop.flag.load(Ordering::Relaxed) {
                        thread_stop.cv.wait_for(&mut guard, interval);
                    }
                }
                if thread_stop.flag.load(Ordering::Relaxed) {
                    return;
                }
                if !tick() {
                    return;
                }
            })
            .expect("spawn sampler thread");
        Sampler { stop, handle: Some(handle) }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.flag.store(true, Ordering::Relaxed);
        let _guard = self.stop.lock.lock();
        self.stop.cv.notify_all();
        drop(_guard);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(ok: u64, depth: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.counter("query_ok", ok);
        s.gauge("server_queue_depth", depth);
        s
    }

    #[test]
    fn push_diffs_against_previous_cumulative() {
        let ring = MetricRing::new(4);
        ring.push(snap(10, 1));
        let d = ring.push(snap(25, 3));
        assert_eq!(d.value("query_ok"), Some(15));
        // Gauges keep their instantaneous value in each slot.
        assert_eq!(d.value("server_queue_depth"), Some(3));
        assert_eq!(ring.history("query_ok"), vec![(1, 10), (2, 15)]);
    }

    #[test]
    fn ring_is_bounded_and_slots_stay_numbered() {
        let ring = MetricRing::new(3);
        for i in 1..=5u64 {
            ring.push(snap(i * 10, 0));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 5);
        // Oldest slots fell off; sequence numbers keep their identity.
        assert_eq!(ring.history("query_ok"), vec![(3, 10), (4, 10), (5, 10)]);
        assert!(ring.history("no_such_metric").is_empty());
        assert!(ring.metric_names().contains(&"query_ok".to_string()));
    }

    #[test]
    fn history_covers_derived_histogram_rows() {
        let ring = MetricRing::new(4);
        let h = crate::hist::Histogram::default();
        h.record_us(100);
        let mut s = Snapshot::new();
        s.histogram("query_read_latency", h.snapshot());
        ring.push(s);
        let counts = ring.history("query_read_latency_count");
        assert_eq!(counts, vec![(1, 1)]);
        assert_eq!(ring.history("query_read_latency_p95_us").len(), 1);
    }

    #[test]
    fn sampler_ticks_and_stops_on_drop() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        let sampler = Sampler::spawn(Duration::from_millis(5), move || {
            t.fetch_add(1, Ordering::Relaxed);
            true
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(ticks.load(Ordering::Relaxed) >= 3, "sampler never ticked");
        drop(sampler); // must join promptly, not hang the test
        let after = ticks.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ticks.load(Ordering::Relaxed), after, "ticks after drop");
    }

    #[test]
    fn sampler_stops_when_tick_returns_false() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        let _sampler =
            Sampler::spawn(Duration::from_millis(1), move || t.fetch_add(1, Ordering::Relaxed) < 2);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(ticks.load(Ordering::Relaxed), 3, "closure's false must stop the loop");
    }
}
