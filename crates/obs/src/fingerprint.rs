//! Query fingerprints: per-shape workload statistics and a plan-change
//! audit log.
//!
//! A *fingerprint* is normalized statement text with every literal
//! replaced by `?`, so `select v from hot where k = 17` and
//! `select v from hot where k = 903` collapse into one workload entry.
//! The registry keeps, per fingerprint: execution and error counts, a
//! latency histogram, which cache tier answered, and cumulative resource
//! attribution (rows out, pages read/skipped, queue wait). The server
//! feeds it from the execute path and renders it as `SHOW WORKLOAD`.
//!
//! The registry is deliberately *first-come bounded*: once `capacity`
//! distinct fingerprints are registered, later ones only bump an overflow
//! counter instead of evicting. Eviction order would depend on arrival
//! interleaving, and the fingerprint set must be a pure function of the
//! statement stream — that determinism is what the parallelism-1 vs -4
//! differential test pins.
//!
//! The plan-audit half answers "did the planner change its mind, and
//! why": every executed plan is observed with its hash, row estimate, and
//! the stats/catalog generations it was built under; when a fingerprint's
//! plan hash flips, a bounded audit ring records the before/after pair.
//! `SHOW PLAN CHANGES` renders the ring.

use crate::hist::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Replace literals in already-normalized SQL (lowercased outside strings,
/// single-spaced) with `?`: quoted strings wholesale, and any numeric
/// literal not glued to an identifier (`org0` keeps its digit, `= 17`
/// loses it). The result is the workload key.
pub fn fingerprint_text(normalized: &str) -> String {
    let bytes = normalized.as_bytes();
    let mut out = String::with_capacity(normalized.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\'' {
            // String literal: consume to the closing quote ('' escapes).
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
            out.push('?');
            continue;
        }
        let prev_wordy = out.ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
        if b.is_ascii_digit() && !prev_wordy {
            // Numeric literal: digits, one dot, optional exponent.
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            out.push('?');
            continue;
        }
        // Safe: normalized text is ASCII-spaced but may hold multi-byte
        // chars inside identifiers; copy whole chars.
        let ch_len = utf8_len(b);
        out.push_str(&normalized[i..i + ch_len]);
        i += ch_len;
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Stable 64-bit FNV-1a of the fingerprint text, rendered as 16 hex
/// digits — the short id `SHOW WORKLOAD` and Prometheus labels carry.
pub fn fingerprint_id(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Which cache tier answered a statement (mirrors the server's labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served straight from the result cache.
    Result,
    /// Plan cache hit, executed.
    Plan,
    /// Planned from scratch, executed.
    Miss,
    /// Uncached path (writes, EXPLAIN, caches disabled).
    Bypass,
    /// Ran inside an interactive transaction (caches bypassed by design).
    Txn,
}

impl CacheTier {
    /// The label the server's slow-query log uses.
    pub fn label(self) -> &'static str {
        match self {
            CacheTier::Result => "result",
            CacheTier::Plan => "plan",
            CacheTier::Miss => "miss",
            CacheTier::Bypass => "bypass",
            CacheTier::Txn => "txn",
        }
    }

    /// Parse a server cache label; unknown labels count as `Bypass`.
    pub fn from_label(label: &str) -> CacheTier {
        match label {
            "result" => CacheTier::Result,
            "plan" => CacheTier::Plan,
            "miss" => CacheTier::Miss,
            "txn" => CacheTier::Txn,
            _ => CacheTier::Bypass,
        }
    }
}

/// One statement execution, as reported to [`FingerprintRegistry::record`].
#[derive(Debug, Clone)]
pub struct Execution<'a> {
    /// Normalized statement text (the registry fingerprints it).
    pub normalized: &'a str,
    /// End-to-end service latency in microseconds.
    pub latency_us: u64,
    /// Did the statement succeed?
    pub ok: bool,
    /// Which cache tier answered.
    pub tier: CacheTier,
    /// Rows returned (reads) or affected (writes).
    pub rows_out: u64,
    /// Heap pages read while this statement ran (global-counter delta, so
    /// approximate under concurrency — documented as attribution, not truth).
    pub pages_read: u64,
    /// Heap pages zone maps skipped while this statement ran (same caveat).
    pub pages_skipped: u64,
    /// Time the request sat in the admission queue, microseconds.
    pub queue_wait_us: u64,
}

/// Live per-fingerprint accumulators. Lock-free after registration.
#[derive(Debug, Default)]
struct Entry {
    executions: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
    tier_result: AtomicU64,
    tier_plan: AtomicU64,
    tier_miss: AtomicU64,
    tier_bypass: AtomicU64,
    tier_txn: AtomicU64,
    rows_out: AtomicU64,
    pages_read: AtomicU64,
    pages_skipped: AtomicU64,
    queue_wait_us: AtomicU64,
    /// Hash of the most recently observed plan (0 = none yet).
    plan_hash: AtomicU64,
    /// Root-operator label of the most recent plan.
    plan_label: Mutex<String>,
    /// Planner row estimate of the most recent plan.
    plan_est_rows: AtomicU64,
    /// Stats generation the most recent plan was built under.
    plan_stats_gen: AtomicU64,
}

/// Point-in-time copy of one fingerprint's statistics.
#[derive(Debug, Clone)]
pub struct FingerprintStats {
    /// 16-hex-digit stable id.
    pub id: String,
    /// The fingerprint text (normalized SQL with `?` placeholders).
    pub text: String,
    pub executions: u64,
    pub errors: u64,
    pub latency: HistogramSnapshot,
    /// Executions answered by each cache tier, in
    /// result/plan/miss/bypass/txn order.
    pub tiers: [u64; 5],
    pub rows_out: u64,
    pub pages_read: u64,
    pub pages_skipped: u64,
    pub queue_wait_us: u64,
    /// Most recently observed plan hash (0 if the shape never planned).
    pub plan_hash: u64,
    /// Root-operator label of the most recent plan (empty if never planned).
    pub plan_label: String,
}

/// One recorded plan flip for a fingerprint.
#[derive(Debug, Clone)]
pub struct PlanChange {
    /// Monotonic sequence number (1-based) across all changes.
    pub seq: u64,
    /// Fingerprint id the flip belongs to.
    pub fingerprint: String,
    /// Fingerprint text, for readability in audit output.
    pub text: String,
    pub before_hash: u64,
    pub after_hash: u64,
    /// Planner row estimates before/after.
    pub before_est_rows: u64,
    pub after_est_rows: u64,
    /// Root-operator labels before/after.
    pub before_label: String,
    pub after_label: String,
    /// Stats generation (drift-rebuild counter) the new plan saw.
    pub stats_generation: u64,
    /// Catalog generation the new plan was built under.
    pub catalog_generation: u64,
}

/// Bounded, first-come registry of query fingerprints plus the plan-change
/// audit ring.
#[derive(Debug)]
pub struct FingerprintRegistry {
    entries: Mutex<HashMap<String, Arc<Entry>>>,
    capacity: usize,
    overflow: AtomicU64,
    audit: Mutex<VecDeque<PlanChange>>,
    audit_capacity: usize,
    plan_changes: AtomicU64,
}

impl FingerprintRegistry {
    /// A registry holding at most `capacity` fingerprints and
    /// `audit_capacity` plan-change entries.
    pub fn new(capacity: usize, audit_capacity: usize) -> Self {
        FingerprintRegistry {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            overflow: AtomicU64::new(0),
            audit: Mutex::new(VecDeque::new()),
            audit_capacity: audit_capacity.max(1),
            plan_changes: AtomicU64::new(0),
        }
    }

    /// Fingerprint `normalized` and return the entry, registering it if
    /// there is room. `None` means the registry is full and this shape is
    /// unregistered (the overflow counter was bumped).
    fn entry(&self, fp: &str) -> Option<Arc<Entry>> {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get(fp) {
            return Some(Arc::clone(e));
        }
        if entries.len() >= self.capacity {
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let e = Arc::new(Entry::default());
        entries.insert(fp.to_string(), Arc::clone(&e));
        Some(e)
    }

    /// Record one execution. The map lock is held only to resolve the
    /// entry; all accumulation is atomic.
    pub fn record(&self, exec: &Execution<'_>) {
        let fp = fingerprint_text(exec.normalized);
        let Some(e) = self.entry(&fp) else { return };
        e.executions.fetch_add(1, Ordering::Relaxed);
        if !exec.ok {
            e.errors.fetch_add(1, Ordering::Relaxed);
        }
        e.latency.record_us(exec.latency_us);
        let tier = match exec.tier {
            CacheTier::Result => &e.tier_result,
            CacheTier::Plan => &e.tier_plan,
            CacheTier::Miss => &e.tier_miss,
            CacheTier::Bypass => &e.tier_bypass,
            CacheTier::Txn => &e.tier_txn,
        };
        tier.fetch_add(1, Ordering::Relaxed);
        e.rows_out.fetch_add(exec.rows_out, Ordering::Relaxed);
        e.pages_read.fetch_add(exec.pages_read, Ordering::Relaxed);
        e.pages_skipped.fetch_add(exec.pages_skipped, Ordering::Relaxed);
        e.queue_wait_us.fetch_add(exec.queue_wait_us, Ordering::Relaxed);
    }

    /// Observe the plan chosen for `normalized` on this execution. The
    /// first observation just seeds the entry; a later observation whose
    /// `plan_hash` differs records a [`PlanChange`] carrying both sides
    /// and the stats/catalog generations that triggered the rebuild.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_plan(
        &self,
        normalized: &str,
        plan_hash: u64,
        plan_label: &str,
        est_rows: u64,
        stats_generation: u64,
        catalog_generation: u64,
    ) {
        let fp = fingerprint_text(normalized);
        let Some(e) = self.entry(&fp) else { return };
        let prev = e.plan_hash.swap(plan_hash, Ordering::AcqRel);
        let prev_est = e.plan_est_rows.swap(est_rows, Ordering::AcqRel);
        e.plan_stats_gen.store(stats_generation, Ordering::Relaxed);
        let prev_label = {
            let mut label = e.plan_label.lock();
            std::mem::replace(&mut *label, plan_label.to_string())
        };
        if prev == 0 || prev == plan_hash {
            return;
        }
        let seq = self.plan_changes.fetch_add(1, Ordering::Relaxed) + 1;
        let change = PlanChange {
            seq,
            fingerprint: fingerprint_id(&fp),
            text: fp,
            before_hash: prev,
            after_hash: plan_hash,
            before_est_rows: prev_est,
            after_est_rows: est_rows,
            before_label: prev_label,
            after_label: plan_label.to_string(),
            stats_generation,
            catalog_generation,
        };
        let mut audit = self.audit.lock();
        if audit.len() >= self.audit_capacity {
            audit.pop_front();
        }
        audit.push_back(change);
    }

    /// Every registered fingerprint, sorted by execution count descending
    /// then fingerprint text — a deterministic ordering for rendering.
    pub fn snapshot(&self) -> Vec<FingerprintStats> {
        let entries: Vec<(String, Arc<Entry>)> =
            self.entries.lock().iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        let mut out: Vec<FingerprintStats> = entries
            .into_iter()
            .map(|(text, e)| FingerprintStats {
                id: fingerprint_id(&text),
                text,
                executions: e.executions.load(Ordering::Relaxed),
                errors: e.errors.load(Ordering::Relaxed),
                latency: e.latency.snapshot(),
                tiers: [
                    e.tier_result.load(Ordering::Relaxed),
                    e.tier_plan.load(Ordering::Relaxed),
                    e.tier_miss.load(Ordering::Relaxed),
                    e.tier_bypass.load(Ordering::Relaxed),
                    e.tier_txn.load(Ordering::Relaxed),
                ],
                rows_out: e.rows_out.load(Ordering::Relaxed),
                pages_read: e.pages_read.load(Ordering::Relaxed),
                pages_skipped: e.pages_skipped.load(Ordering::Relaxed),
                queue_wait_us: e.queue_wait_us.load(Ordering::Relaxed),
                plan_hash: e.plan_hash.load(Ordering::Relaxed),
                plan_label: e.plan_label.lock().clone(),
            })
            .collect();
        out.sort_by(|a, b| b.executions.cmp(&a.executions).then_with(|| a.text.cmp(&b.text)));
        out
    }

    /// The `k` hottest fingerprints by execution count.
    pub fn top(&self, k: usize) -> Vec<FingerprintStats> {
        let mut all = self.snapshot();
        all.truncate(k);
        all
    }

    /// The plan-change audit ring, oldest first.
    pub fn plan_changes(&self) -> Vec<PlanChange> {
        self.audit.lock().iter().cloned().collect()
    }

    /// Total plan flips observed (including ones the ring has dropped).
    pub fn plan_change_count(&self) -> u64 {
        self.plan_changes.load(Ordering::Relaxed)
    }

    /// Distinct fingerprints currently registered.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no fingerprint has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executions whose fingerprint was dropped because the registry was
    /// full.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_collapse_but_identifiers_survive() {
        assert_eq!(
            fingerprint_text("select v from hot where k = 17"),
            "select v from hot where k = ?"
        );
        assert_eq!(
            fingerprint_text("select v from hot where k = 903"),
            fingerprint_text("select v from hot where k = 17"),
        );
        // Digits glued to identifiers are part of the name, not a literal.
        assert_eq!(
            fingerprint_text("select c1 from t2 where c1 = 5"),
            "select c1 from t2 where c1 = ?"
        );
        // Strings (with '' escapes), floats, and exponents all collapse.
        assert_eq!(
            fingerprint_text("select * from t where name = 'o''brien' and x > 1.5e-3"),
            "select * from t where name = ? and x > ?"
        );
        assert_eq!(
            fingerprint_text("insert into t values (1, 'a'), (2, 'b')"),
            "insert into t values (?, ?), (?, ?)"
        );
    }

    #[test]
    fn fingerprint_id_is_stable_and_hex() {
        let a = fingerprint_id("select ?");
        assert_eq!(a, fingerprint_id("select ?"));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, fingerprint_id("select ?, ?"));
    }

    #[test]
    fn registry_accumulates_per_fingerprint() {
        let reg = FingerprintRegistry::new(8, 8);
        for k in [1, 2, 3] {
            let sql = format!("select v from hot where k = {k}");
            reg.record(&Execution {
                normalized: &sql,
                latency_us: 100 * k,
                ok: k != 3,
                tier: if k == 1 { CacheTier::Miss } else { CacheTier::Result },
                rows_out: 1,
                pages_read: 2,
                pages_skipped: 1,
                queue_wait_us: 10,
            });
        }
        reg.record(&Execution {
            normalized: "select count(*) from hot",
            latency_us: 5,
            ok: true,
            tier: CacheTier::Bypass,
            rows_out: 1,
            pages_read: 0,
            pages_skipped: 0,
            queue_wait_us: 0,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        // Hottest first.
        assert_eq!(snap[0].text, "select v from hot where k = ?");
        assert_eq!(snap[0].executions, 3);
        assert_eq!(snap[0].errors, 1);
        assert_eq!(snap[0].tiers, [2, 0, 1, 0, 0]);
        assert_eq!(snap[0].rows_out, 3);
        assert_eq!(snap[0].pages_read, 6);
        assert_eq!(snap[0].queue_wait_us, 30);
        assert_eq!(snap[0].latency.count, 3);
        assert_eq!(snap[1].executions, 1);
    }

    #[test]
    fn full_registry_counts_overflow_instead_of_evicting() {
        let reg = FingerprintRegistry::new(2, 8);
        for sql in ["select a", "select b", "select c", "select c"] {
            reg.record(&Execution {
                normalized: sql,
                latency_us: 1,
                ok: true,
                tier: CacheTier::Bypass,
                rows_out: 0,
                pages_read: 0,
                pages_skipped: 0,
                queue_wait_us: 0,
            });
        }
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.overflow(), 2);
        let texts: Vec<String> = reg.snapshot().into_iter().map(|s| s.text).collect();
        assert!(texts.iter().any(|t| t == "select a") && texts.iter().any(|t| t == "select b"));
    }

    #[test]
    fn plan_flip_records_an_audit_entry() {
        let reg = FingerprintRegistry::new(8, 2);
        let sql = "select v from hot where k = 7";
        // First observation seeds, same hash is quiet.
        reg.observe_plan(sql, 0xaaaa, "SeqScan(hot)", 100, 0, 1);
        reg.observe_plan(sql, 0xaaaa, "SeqScan(hot)", 100, 0, 1);
        assert_eq!(reg.plan_change_count(), 0);
        // A different hash is a flip.
        reg.observe_plan(sql, 0xbbbb, "IndexEqScan(hot.k)", 1, 3, 2);
        assert_eq!(reg.plan_change_count(), 1);
        let changes = reg.plan_changes();
        assert_eq!(changes.len(), 1);
        let c = &changes[0];
        assert_eq!(c.seq, 1);
        assert_eq!((c.before_hash, c.after_hash), (0xaaaa, 0xbbbb));
        assert_eq!((c.before_est_rows, c.after_est_rows), (100, 1));
        assert_eq!(c.before_label, "SeqScan(hot)");
        assert_eq!(c.after_label, "IndexEqScan(hot.k)");
        assert_eq!(c.stats_generation, 3);
        assert_eq!(c.catalog_generation, 2);
        // The ring is bounded: two more flips drop the oldest.
        reg.observe_plan(sql, 0xcccc, "SeqScan(hot)", 50, 3, 3);
        reg.observe_plan(sql, 0xdddd, "IndexEqScan(hot.k)", 2, 3, 4);
        assert_eq!(reg.plan_change_count(), 3);
        let changes = reg.plan_changes();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].seq, 2);
        assert_eq!(changes[1].seq, 3);
    }

    #[test]
    fn same_stream_yields_same_fingerprint_set_regardless_of_interleaving() {
        // Two registries fed the same statements in different orders must
        // register the same set (first-come capping is order-independent
        // as long as every shape appears before the cap is hit).
        let stmts = ["select a from t where x = 1", "select b from t where y = 2"];
        let a = FingerprintRegistry::new(8, 8);
        let b = FingerprintRegistry::new(8, 8);
        for s in stmts.iter() {
            a.record(&Execution {
                normalized: s,
                latency_us: 0,
                ok: true,
                tier: CacheTier::Miss,
                rows_out: 0,
                pages_read: 0,
                pages_skipped: 0,
                queue_wait_us: 0,
            });
        }
        for s in stmts.iter().rev() {
            b.record(&Execution {
                normalized: s,
                latency_us: 0,
                ok: true,
                tier: CacheTier::Miss,
                rows_out: 0,
                pages_read: 0,
                pages_skipped: 0,
                queue_wait_us: 0,
            });
        }
        let ids = |r: &FingerprintRegistry| {
            let mut v: Vec<String> = r.snapshot().into_iter().map(|s| s.id).collect();
            v.sort();
            v
        };
        assert_eq!(ids(&a), ids(&b));
    }
}
