//! # genalg-mediator — the query-driven integration baseline (Figure 1)
//!
//! The architecture the paper argues *against*: "middleware systems, in
//! which the bulk of the query and result processing takes place in a
//! different location from where the data is stored" (§3). Every query
//! reaches through source wrappers at query time; nothing is materialized,
//! nothing is reconciled ("No reconciliation of results" — Table 1), and
//! conflicting duplicates flow straight to the caller.
//!
//! Implemented faithfully so the architecture benchmark can measure the
//! trade-off the paper asserts: the mediator pays per-query source
//! round-trips and re-computation, the warehouse pays at refresh time.

use genalg_core::align::resembles;
use genalg_core::error::{GenAlgError, Result};
use genalg_core::seq::DnaSeq;
use genalg_etl::record::SeqRecord;
use genalg_etl::source::{Capability, SimulatedRepository};

/// The integration layer of Figure 1: a set of wrapped sources queried at
/// query time.
#[derive(Default)]
pub struct Mediator {
    sources: Vec<SimulatedRepository>,
}

impl Mediator {
    /// An empty mediator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap another source.
    pub fn add_source(&mut self, repo: SimulatedRepository) {
        self.sources.push(repo);
    }

    /// Mutable access to a wrapped source (curators applying changes).
    pub fn source_mut(&mut self, name: &str) -> Option<&mut SimulatedRepository> {
        self.sources.iter_mut().find(|s| s.name() == name)
    }

    /// Number of wrapped sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Total requests the sources have served — the mediator's cost meter.
    pub fn total_requests(&self) -> u64 {
        self.sources.iter().map(SimulatedRepository::requests_served).sum()
    }

    /// Point lookup: asks every source. Queryable sources answer directly;
    /// non-queryable ones force a full dump scan (the wrapper has no other
    /// way in). Conflicting answers are returned side by side — the
    /// mediator does not reconcile.
    pub fn lookup(&self, accession: &str) -> Result<Vec<SeqRecord>> {
        let mut out = Vec::new();
        for s in &self.sources {
            if s.capability() >= Capability::Queryable {
                if let Some(rec) = s.fetch(accession)? {
                    out.push(rec);
                }
            } else {
                out.extend(s.snapshot()?.into_iter().filter(|r| r.accession == accession));
            }
        }
        Ok(out)
    }

    /// Pattern search: ships *all* data from every source to the mediator
    /// and filters centrally — the data movement Figure 1 implies.
    pub fn find_containing(&self, pattern: &DnaSeq) -> Result<Vec<SeqRecord>> {
        if pattern.is_empty() {
            return Err(GenAlgError::Other("empty search pattern".into()));
        }
        let mut out = Vec::new();
        for s in &self.sources {
            out.extend(s.snapshot()?.into_iter().filter(|r| r.sequence.contains(pattern)));
        }
        Ok(out)
    }

    /// Similarity search over every source (the BLAST-wrapper role).
    pub fn find_resembling(
        &self,
        query: &DnaSeq,
        min_identity: f64,
        min_cover: f64,
    ) -> Result<Vec<SeqRecord>> {
        let mut out = Vec::new();
        for s in &self.sources {
            out.extend(
                s.snapshot()?
                    .into_iter()
                    .filter(|r| resembles(&r.sequence, query, min_identity, min_cover)),
            );
        }
        Ok(out)
    }

    /// Cross-source union, duplicates included. A mediator has no cached
    /// state to fall back on: one unreachable source fails the whole query.
    pub fn all_records(&self) -> Result<Vec<SeqRecord>> {
        let mut out = Vec::new();
        for s in &self.sources {
            out.extend(s.snapshot()?);
        }
        Ok(out)
    }

    /// Group sizes per organism, computed centrally per query.
    pub fn count_by_organism(&self) -> Result<Vec<(String, usize)>> {
        let mut counts = std::collections::BTreeMap::new();
        for r in self.all_records()? {
            *counts.entry(r.organism.unwrap_or_else(|| "unknown".into())).or_insert(0) += 1;
        }
        Ok(counts.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genalg_etl::delta::ChangeKind;
    use genalg_etl::source::Representation;

    fn rec(acc: &str, seq: &str) -> SeqRecord {
        SeqRecord::new(acc, DnaSeq::from_text(seq).unwrap()).with_organism("E. coli")
    }

    fn mediator() -> Mediator {
        let mut m = Mediator::new();
        let mut a = SimulatedRepository::new("gb", Representation::FlatFile, Capability::Queryable);
        a.apply(ChangeKind::Insert, rec("A1", "ATGGCCTTTAAG")).unwrap();
        a.apply(ChangeKind::Insert, rec("B2", "GGGGGGGG")).unwrap();
        let mut b =
            SimulatedRepository::new("em", Representation::FlatFile, Capability::NonQueryable);
        // Same accession, *different* sequence: a genuine conflict.
        b.apply(ChangeKind::Insert, rec("A1", "ATGGACTTTAAG")).unwrap();
        b.apply(ChangeKind::Insert, rec("C3", "TTTTTTTT")).unwrap();
        m.add_source(a);
        m.add_source(b);
        m
    }

    #[test]
    fn lookup_returns_unreconciled_duplicates() {
        let m = mediator();
        let hits = m.lookup("A1").unwrap();
        assert_eq!(hits.len(), 2, "both sources answer; nothing is reconciled");
        assert_ne!(hits[0].sequence, hits[1].sequence, "the conflict is passed through");
        assert!(m.lookup("missing").unwrap().is_empty());
    }

    #[test]
    fn pattern_search_hits_across_sources() {
        let m = mediator();
        let hits = m.find_containing(&DnaSeq::from_text("TTTAAG").unwrap()).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(m.find_containing(&DnaSeq::empty()).is_err());
    }

    #[test]
    fn every_query_costs_source_requests() {
        let m = mediator();
        let before = m.total_requests();
        let _ = m.lookup("A1").unwrap();
        let mid = m.total_requests();
        assert!(mid > before, "lookups hit the sources each time");
        let _ = m.find_containing(&DnaSeq::from_text("GGGG").unwrap()).unwrap();
        assert!(m.total_requests() > mid, "searches ship data again");
    }

    #[test]
    fn aggregation_recomputed_per_query() {
        let m = mediator();
        let counts = m.count_by_organism().unwrap();
        assert_eq!(counts, vec![("E. coli".to_string(), 4)]);
        assert_eq!(m.all_records().unwrap().len(), 4);
        assert_eq!(m.source_count(), 2);
    }

    #[test]
    fn similarity_search() {
        let m = mediator();
        let q = DnaSeq::from_text("ATGGCCTTTAAG").unwrap();
        let hits = m.find_resembling(&q, 0.9, 0.9).unwrap();
        // Exact match in gb; one-substitution variant in em (11/12 = 0.92).
        assert_eq!(hits.len(), 2);
    }
}
