//! Offline shim for `crossbeam`: the `channel` module surface the
//! workspace uses, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking if a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Send without blocking; a full bounded channel reports
        /// [`TrySendError::Full`] instead of waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Iterator over values currently queued (non-blocking).
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// A channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// A channel holding at most `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
