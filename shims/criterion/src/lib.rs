//! Offline shim for `criterion`: a micro-harness exposing the subset of the
//! criterion 0.5 API the workspace's benches use.
//!
//! Unlike real criterion there is no statistical analysis — each benchmark
//! is warmed up briefly, then timed for a fixed number of iterations and
//! reported as mean ns/iter on stdout. Good enough for relative comparisons
//! in an offline container; do not read the numbers as publication-grade.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export point so benches can `use criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    iters_done: u64,
}

/// Iteration budget: keep each benchmark around this long after warmup.
const TARGET: Duration = Duration::from_millis(300);
const WARMUP: Duration = Duration::from_millis(50);

impl Bencher {
    fn new() -> Self {
        Bencher { mean_ns: 0.0, iters_done: 0 }
    }

    /// Time `routine` repeatedly until the budget is used.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let n = ((TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
        self.iters_done = n;
    }

    /// Time `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup on a handful of fresh inputs.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            warm_spent += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;
        let n = ((TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut spent = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
        }
        self.mean_ns = spent.as_nanos() as f64 / n as f64;
        self.iters_done = n;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    println!("bench: {group}/{id}: {:.1} ns/iter ({} iters)", b.mean_ns, b.iters_done);
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report("", id, &b);
        self
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
