//! Offline shim for `parking_lot`: the lock API the workspace uses,
//! implemented on `std::sync` with poisoning erased (a panic while a lock
//! is held does not poison it for other threads, matching parking_lot).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable usable with the shim [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified. The guard is released while waiting and
    /// reacquired before returning, parking_lot style (in place, by
    /// mutable reference).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Waits with a timeout; returns true if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self.0.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        timed_out
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Run `f` on the guard by value, storing the returned guard back in place.
/// Safe wrapper over the take/replace dance `std`'s by-value wait API needs.
fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY-free version: we cannot move out of `&mut` without a
    // placeholder, so wrap in Option semantics via ptr::read/write would be
    // unsafe; instead use the fact that std's wait consumes the guard.
    // We emulate by-ref waiting with an owned round-trip through
    // `std::mem::replace` on an `Option` held by the caller. To keep the
    // public API guard-typed, we use `unsafe` ptr swaps here, confined to
    // this function.
    unsafe {
        let owned = std::ptr::read(slot);
        let new_guard = f(owned);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "no poison propagation");
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
