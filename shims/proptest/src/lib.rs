//! Offline shim for `proptest`: the strategy combinators, `proptest!` macro,
//! and assertion macros the workspace's property tests use.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case panics with the generated inputs left to
//!   the assertion message;
//! - 64 cases per property by default (configurable via `ProptestConfig`);
//! - the RNG is seeded from the property's name, so failures reproduce
//!   deterministically across runs;
//! - string strategies support only the character-class subset of regex
//!   actually used here: concatenations of `[class]{lo,hi}` groups.

pub mod test_runner {
    /// Per-property configuration (the `cases` knob is the only one honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the property name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform signed value in `[lo, hi]` over an i128 span.
        pub fn in_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }

    /// Drives one property: owns the RNG and the case counter.
    pub struct TestRunner {
        rng: TestRng,
        pub cases: u32,
    }

    impl TestRunner {
        pub fn new(name: &str, config: &ProptestConfig) -> Self {
            TestRunner { rng: TestRng::from_name(name), cases: config.cases }
        }

        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, the currency of `prop_oneof!`.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    // --- numeric range strategies ----------------------------------------------

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_i128(self.start as i128, self.end as i128 - 1) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.in_i128(*self.start() as i128, *self.end() as i128) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // --- tuples -----------------------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    // --- string (character-class regex subset) ----------------------------------

    /// One `[class]{lo,hi}` group: candidate chars plus a length range.
    struct ClassGroup {
        chars: Vec<char>,
        lo: usize,
        hi: usize,
    }

    fn parse_class_pattern(pattern: &str) -> Vec<ClassGroup> {
        let mut chars = pattern.chars().peekable();
        let mut groups = Vec::new();
        while let Some(c) = chars.next() {
            let mut set = Vec::new();
            if c == '[' {
                loop {
                    let item = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    match item {
                        ']' => break,
                        '\\' => {
                            let esc = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                            set.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            });
                        }
                        first => {
                            // Possible range `a-z`; a trailing `-` is literal.
                            if chars.peek() == Some(&'-') {
                                let mut ahead = chars.clone();
                                ahead.next();
                                match ahead.peek() {
                                    Some(&']') | None => set.push(first),
                                    Some(&last) => {
                                        chars.next();
                                        chars.next();
                                        assert!(
                                            first <= last,
                                            "inverted range {first}-{last} in {pattern:?}"
                                        );
                                        set.extend(first..=last);
                                    }
                                }
                            } else {
                                set.push(first);
                            }
                        }
                    }
                }
            } else {
                // Bare literal character acts as a singleton class.
                set.push(c);
            }
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad repeat lower bound"),
                        b.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            assert!(lo <= hi, "inverted repeat bounds in {pattern:?}");
            groups.push(ClassGroup { chars: set, lo, hi });
        }
        groups
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for group in parse_class_pattern(self) {
                let len = group.lo + rng.below((group.hi - group.lo + 1) as u64) as usize;
                for _ in 0..len {
                    out.push(group.chars[rng.below(group.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    // --- any::<T>() --------------------------------------------------------------

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mostly uniform bit patterns (hits subnormals and NaNs), with the
            // headline special values injected often enough to matter.
            if rng.below(16) == 0 {
                const SPECIALS: [f64; 6] =
                    [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1.0];
                SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
            } else {
                f64::from_bits(rng.next_u64())
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for collection strategies (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed pool of values.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty pool");
        Select { items }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each property `config.cases` times with freshly generated inputs.
/// No shrinking: the panic message carries whatever the assertion prints.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(stringify!($name), &config);
            for _ in 0..runner.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&$strat, runner.rng());
                )+
                // One closure per case so `prop_assume!` can skip via `return`.
                // Zero-arg + move: the captures are already fully typed above.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
    )*};
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Value {
        Unit,
        Flag(bool),
        Num(i64),
        Text(String),
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Unit),
            any::<bool>().prop_map(Value::Flag),
            (-50i64..50).prop_map(Value::Num),
            "[a-c]{0,5}".prop_map(Value::Text),
        ]
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..=5, z in 0u8..=255) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            let _ = z;
        }

        #[test]
        fn string_pattern_respected(s in "[A-Z]{1,3}[0-9]{3,6}") {
            let letters = s.chars().take_while(|c| c.is_ascii_uppercase()).count();
            prop_assert!((1..=3).contains(&letters), "{s:?}");
            let digits = s.len() - letters;
            prop_assert!((3..=6).contains(&digits), "{s:?}");
            prop_assert!(s[letters..].chars().all(|c| c.is_ascii_digit()));
        }

        #[test]
        fn escapes_and_ranges(s in "[a-z\\-\\n]{0,20}") {
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '-' || c == '\n'));
        }

        #[test]
        fn vec_and_select(v in proptest::collection::vec(
            proptest::sample::select(vec!['A', 'C', 'G', 'T']), 1..30))
        {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|c| "ACGT".contains(*c)));
        }

        #[test]
        fn oneof_and_flat_map(
            val in arb_value(),
            pair in (1usize..4).prop_flat_map(|n| {
                proptest::collection::vec(Just(n), n..n + 1).prop_map(move |v| (n, v))
            }),
        ) {
            match val {
                Value::Num(n) => prop_assert!((-50..50).contains(&n)),
                Value::Text(t) => prop_assert!(t.len() <= 5),
                Value::Unit | Value::Flag(_) => {}
            }
            prop_assert_eq!(pair.1.len(), pair.0);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn config_cases_honored() {
        use crate::test_runner::{ProptestConfig, TestRunner};
        let config = ProptestConfig::with_cases(7);
        let runner = TestRunner::new("config_cases_honored", &config);
        assert_eq!(runner.cases, 7);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let mut c = TestRng::from_name("other");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
