//! Offline shim for `rand` 0.8: `StdRng`, the `Rng`/`SeedableRng` traits,
//! and `SliceRandom`, implemented over a splitmix64 generator.
//!
//! Deterministic per seed (like the real `StdRng`) but a *different
//! stream*: callers may only rely on reproducibility, not on matching
//! rand 0.8's output.

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling methods (the subset of rand 0.8's `Rng` in use).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`Range` or `RangeInclusive`). Generic over
    /// the output type like rand 0.8, so integer literals infer from context.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform value of a primitive type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (floats over `[0,1)`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`], generic over the sampled type so
/// type inference flows from the call site into the range's literals.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types samplable uniformly from a range. The single blanket impl of
/// [`SampleRange`] over this trait is what lets `rng.gen_range(0..4)` infer
/// its literals from how the result is used (e.g. as a slice index).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Random helpers on slices.
pub trait SliceRandom {
    type Item;

    /// A uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.next_u64() as usize % self.len())
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.next_u64() as usize % (i + 1);
            self.swap(i, j);
        }
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 underneath).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zeros fixed point and decorrelate small seeds.
            StdRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna); passes BigCrush, one add + two xorshifts.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// `rand::seq` module mirror.
pub mod seq {
    pub use super::SliceRandom;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: Vec<u8> = vec![];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut data: Vec<u32> = (0..50).collect();
        let orig = data.clone();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
        assert_ne!(data, orig, "50 elements virtually never shuffle to identity");
    }
}
