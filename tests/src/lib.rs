// integration test host crate
