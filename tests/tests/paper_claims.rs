//! Executable versions of the paper's C1–C15 requirement claims.
//!
//! Table 1 scores six prior systems against these requirements and argues
//! the Genomics Algebra + Unifying Database combination addresses them
//! all. Each test here *demonstrates* one claim on our implementation —
//! the `table1` benchmark binary reuses the same probes to regenerate the
//! table with our system as a seventh column.

use genalg::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn warehouse_with_data() -> Warehouse {
    let mut w = Warehouse::new().expect("warehouse boots");
    w.add_source(SimulatedRepository::new(
        "genbank-sim",
        Representation::FlatFile,
        Capability::NonQueryable,
    ))
    .unwrap();
    w.add_source(SimulatedRepository::new(
        "embl-sim",
        Representation::Relational,
        Capability::Queryable,
    ))
    .unwrap();
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 33, ..Default::default() });
    let (a, b) = generator.overlapping_pair(30, 0.5, 0.4);
    for rec in a {
        w.source_mut("genbank-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
    }
    for rec in b {
        w.source_mut("embl-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
    }
    w.refresh().unwrap();
    w
}

/// C1/C3: one access point over many heterogeneous repositories.
#[test]
fn c1_c3_single_access_point() {
    let w = warehouse_with_data();
    // One SQL interface answers over data that arrived from a flat-file
    // dump and a relational source alike.
    let rs = w.db().execute("SELECT count(*), sum(n_sources) FROM public.sequences").unwrap();
    assert_eq!(rs.rows[0][0].as_int(), Some(45)); // 30 + 30 − 15 shared
    assert_eq!(rs.rows[0][1].as_int(), Some(60));
}

/// C2: a standard representation — every wrapper lands in SeqRecord and
/// every GDT has one GenAlgXML form.
#[test]
fn c2_standard_representation() {
    let rec = SeqRecord::new("STD1", DnaSeq::from_text("ATGGCCTTTAAG").unwrap())
        .with_description("standard form")
        .with_organism("E. coli");
    // The same record survives all four wrapper formats.
    use genalg::etl::formats::{embl, fasta, genbank, hier};
    let via_genbank = &genbank::parse(&genbank::write(std::slice::from_ref(&rec))).unwrap()[0];
    let via_embl = &embl::parse(&embl::write(std::slice::from_ref(&rec))).unwrap()[0];
    let via_hier = &hier::to_records(
        &hier::parse(&hier::write(&hier::from_records(std::slice::from_ref(&rec)))).unwrap(),
    )
    .unwrap()[0];
    assert!(via_genbank.same_content(&rec));
    assert!(via_embl.same_content(&rec));
    assert!(via_hier.same_content(&rec));
    // FASTA keeps the sequence (it carries no organism/version).
    let via_fasta = &fasta::parse(&fasta::write(std::slice::from_ref(&rec))).unwrap()[0];
    assert_eq!(via_fasta.sequence, rec.sequence);
}

/// C5: a biological query language exists and maps to the DBMS language.
#[test]
fn c5_biological_query_language() {
    let w = warehouse_with_data();
    let rs = genalg::bql::run(w.db(), "COUNT SEQUENCES BY organism").unwrap();
    assert!(!rs.is_empty());
    let rs = genalg::bql::run(
        w.db(),
        "FIND SEQUENCES LONGER THAN 200 SHOW accession, length SORTED BY length DESCENDING TOP 3",
    )
    .unwrap();
    assert!(rs.len() <= 3);
}

/// C6: new kinds of queries not offered by any source interface.
#[test]
fn c6_new_query_kinds() {
    let w = warehouse_with_data();
    // Cross-source aggregate with a genomic operator — no single source
    // interface could answer this.
    let rs = w
        .db()
        .execute(
            "SELECT organism, avg(gc_content(seq)) AS mean_gc, count(*) \
             FROM public.sequences GROUP BY organism HAVING count(*) >= 2",
        )
        .unwrap();
    assert!(!rs.is_empty());
}

/// C7: query results are data, usable for further computation — not text.
#[test]
fn c7_results_feed_further_computation() {
    let w = warehouse_with_data();
    let rs = w.db().execute("SELECT seq FROM public.sequences LIMIT 1").unwrap();
    let value = w.adapter().to_value(&rs.rows[0][0]).unwrap();
    let genalg::core::algebra::Value::Dna(seq) = value else { panic!("expected DNA") };
    // The result is a first-class GDT: run more algebra on it.
    let rc = seq.reverse_complement();
    assert_eq!(rc.len(), seq.len());
}

/// C8: reconciliation — agreeing sources merge into one entity.
#[test]
fn c8_reconciliation() {
    let w = warehouse_with_data();
    let rs = w.db().execute("SELECT count(*) FROM public.sequences WHERE n_sources = 2").unwrap();
    assert_eq!(rs.rows[0][0].as_int(), Some(15), "shared accessions merged, not duplicated");
}

/// C9: uncertainty — conflicting claims both remain accessible.
#[test]
fn c9_uncertainty_preserved() {
    let w = warehouse_with_data();
    let disputed =
        w.db().execute("SELECT count(*) FROM public.sequences WHERE disputed = true").unwrap().rows
            [0][0]
            .as_int()
            .unwrap();
    assert!(disputed > 0, "the 40% conflict rate must yield disputed entries");
    let rs = w
        .db()
        .execute(
            "SELECT count(*) FROM public.sequence_alternatives a \
             JOIN public.sequences s ON a.accession = s.accession WHERE s.disputed = true",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0].as_int(), Some(disputed * 2), "two claims per dispute");
}

/// C10: combining data from different repositories in one query.
#[test]
fn c10_cross_source_combination() {
    let w = warehouse_with_data();
    // provenance lives in the alternatives table; join it against the
    // sequences — one query spanning both sources' contributions.
    let rs = w
        .db()
        .execute(
            "SELECT s.accession, a.provenance FROM public.sequences s \
             JOIN public.sequence_alternatives a ON s.accession = a.accession \
             WHERE a.provenance LIKE '%embl%' AND s.n_sources = 2 LIMIT 5",
        )
        .unwrap();
    assert!(!rs.is_empty());
}

/// C11: annotations — users attach knowledge to warehouse data.
#[test]
fn c11_user_annotations() {
    let w = warehouse_with_data();
    let alice = Role::User("alice".into());
    w.db().execute_as("CREATE TABLE annotations (accession TEXT, note TEXT)", &alice).unwrap();
    w.db()
        .execute_as("INSERT INTO annotations VALUES ('SYN000001', 'validated in our lab')", &alice)
        .unwrap();
    let rs = w
        .db()
        .execute_as(
            "SELECT s.accession, n.note FROM public.sequences s \
             JOIN alice.annotations n ON s.accession = n.accession",
            &alice,
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][1].as_text(), Some("validated in our lab"));
}

/// C12: high-level treatment — biology-level operations, not strings.
#[test]
fn c12_high_level_operations() {
    let db = Database::in_memory();
    let adapter = Adapter::install(&db).unwrap();
    db.execute("CREATE TABLE genes (id INT, g gene)").unwrap();
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 5, ..Default::default() });
    let gene = generator.gene_with_structure("hl-gene", 3, 30);
    let datum = adapter.to_datum(&genalg::core::algebra::Value::Gene(Box::new(gene))).unwrap();
    db.register_scalar("g0", Arc::new(move |_| Ok(datum.clone()))).unwrap();
    db.execute("INSERT INTO genes VALUES (1, g0())").unwrap();
    // The paper's flagship composition, in SQL, on a stored gene.
    let rs =
        db.execute("SELECT protein_sequence(translate(splice(transcribe(g)))) FROM genes").unwrap();
    let v = adapter.to_value(&rs.rows[0][0]).unwrap();
    assert!(v.render().starts_with('M'));
}

/// C13: self-generated data lives beside public data and is comparable
/// against it.
#[test]
fn c13_self_generated_data() {
    let w = warehouse_with_data();
    let alice = Role::User("alice".into());
    w.db().execute_as("CREATE TABLE myseqs (label TEXT, s dna)", &alice).unwrap();
    // Alice stores her own experimental sequence…
    let sample =
        w.db().execute("SELECT seq FROM public.sequences WHERE accession = 'SYN000002'").unwrap();
    let v = w.adapter().to_value(&sample.rows[0][0]).unwrap();
    let text = v.render();
    w.db()
        .execute_as(&format!("INSERT INTO myseqs VALUES ('lab-42', dna('{text}'))"), &alice)
        .unwrap();
    // …and matches it against the warehouse in one query.
    let rs = w
        .db()
        .execute_as(
            "SELECT p.accession FROM public.sequences p CROSS JOIN alice.myseqs m \
             WHERE resembles(p.seq, m.s, 0.95, 0.95)",
            &alice,
        )
        .unwrap();
    assert!(rs.rows.iter().any(|r| r[0].as_text() == Some("SYN000002")));
}

/// C14: user-defined evaluation functions over both kinds of data.
#[test]
fn c14_user_defined_functions() {
    let w = warehouse_with_data();
    w.db()
        .register_scalar(
            "at_content",
            Arc::new(|args: &[genalg::unidb::Datum]| {
                // A "specialty evaluation function": AT fraction via the
                // installed gc_content complement would be cheating — do it
                // from the opaque payload directly.
                let Some((_, bytes)) = args[0].as_opaque() else {
                    return Ok(genalg::unidb::Datum::Null);
                };
                let v = genalg::core::compact::value_from_bytes(bytes)
                    .map_err(|e| genalg::unidb::DbError::External(e.to_string()))?;
                let genalg::core::algebra::Value::Dna(seq) = v else {
                    return Ok(genalg::unidb::Datum::Null);
                };
                let [a, _, _, t] = seq.base_counts();
                Ok(genalg::unidb::Datum::Float((a + t) as f64 / seq.len().max(1) as f64))
            }),
        )
        .unwrap();
    let rs = w
        .db()
        .execute("SELECT count(*) FROM public.sequences WHERE at_content(seq) > 0.4")
        .unwrap();
    assert!(rs.rows[0][0].as_int().unwrap() > 0);
}

/// C15: archival — source loss does not lose warehouse knowledge, and the
/// warehouse itself survives restarts.
#[test]
fn c15_archival_and_durability() {
    // Part 1: data outlives the source. The warehouse holds the entries
    // even though the (simulated) company behind a source folded — no
    // refresh ever deletes data unless the source explicitly retracts it.
    let w = warehouse_with_data();
    let before =
        w.db().execute("SELECT count(*) FROM public.sequences").unwrap().rows[0][0].clone();
    // (dropping the Warehouse's source handle = the repository vanishing;
    // the loaded data remains queryable)
    assert_eq!(before.as_int(), Some(45));

    // Part 2: the warehouse database itself is durable.
    let dir = std::env::temp_dir().join(format!("genalg-c15-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        Adapter::install(&db).unwrap();
        db.recover().unwrap();
        db.execute_as("CREATE TABLE public.archive (accession TEXT, seq dna)", &Role::Maintainer)
            .unwrap();
        db.execute_as(
            "INSERT INTO public.archive VALUES ('KEEP1', dna('ATGGCCTTTAAG'))",
            &Role::Maintainer,
        )
        .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        Adapter::install(&db).unwrap();
        db.recover().unwrap();
        let rs = db
            .execute("SELECT accession FROM public.archive WHERE contains(seq, 'GCCTTT')")
            .unwrap();
        assert_eq!(rs.rows[0][0].as_text(), Some("KEEP1"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The mediator baseline genuinely lacks C8/C9 — the capability gap Table 1
/// reports is real, not asserted.
#[test]
fn mediator_lacks_reconciliation_and_uncertainty() {
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 33, ..Default::default() });
    let (a, b) = generator.overlapping_pair(30, 0.5, 0.4);
    let mut med = Mediator::new();
    let mut s1 = SimulatedRepository::new("gb", Representation::FlatFile, Capability::Queryable);
    let mut s2 = SimulatedRepository::new("em", Representation::Relational, Capability::Queryable);
    for rec in a {
        s1.apply(ChangeKind::Insert, rec).unwrap();
    }
    for rec in b {
        s2.apply(ChangeKind::Insert, rec).unwrap();
    }
    med.add_source(s1);
    med.add_source(s2);
    // The union contains raw duplicates: 60 records for 45 entities.
    assert_eq!(med.all_records().unwrap().len(), 60);
    // A lookup of a shared accession returns two unreconciled answers.
    let hits = med.lookup("SYN000000").unwrap();
    assert_eq!(hits.len(), 2);

    // The warehouse, from identical inputs, reconciles to 45.
    let w = warehouse_with_data();
    let rs = w.db().execute("SELECT count(*) FROM public.sequences").unwrap();
    assert_eq!(rs.rows[0][0].as_int(), Some(45));
}

/// Ontology ⇄ algebra coherence (§4.1/§4.2): every bound concept is
/// executable, homonyms resolve by context.
#[test]
fn ontology_grounds_the_algebra() {
    let ontology = standard_ontology();
    ontology.validate().unwrap();
    let algebra = genalg::core::algebra::KernelAlgebra::standard();
    ontology.verify_algebra(&algebra).unwrap();
    // Synonym resolution bridges repository terminology (B3).
    use genalg::ontology::{ConceptId, Resolution};
    assert_eq!(
        ontology.resolve("pre-mRNA").unwrap(),
        Resolution::Unique(ConceptId::new("primary-transcript"))
    );
    assert!(matches!(ontology.resolve("translation").unwrap(), Resolution::Ambiguous(_)));
}

/// Reconciliation by similarity resolves cross-source naming differences
/// (B3/semantic heterogeneity): same entity, different accessions.
#[test]
fn semantic_heterogeneity_matching() {
    use genalg::etl::integrate::find_duplicate_accessions;
    let seq = "ATGGCCTTTAAGGGGCCCAAATTTGGGCCCATATAAGGCC";
    let records = vec![
        SeqRecord::new("GB:9001", DnaSeq::from_text(seq).unwrap()).with_source("gb"),
        SeqRecord::new("EMBL:X77", DnaSeq::from_text(seq).unwrap()).with_source("em"),
    ];
    let pairs = find_duplicate_accessions(&records);
    assert_eq!(pairs.len(), 1);
    let aliases: HashMap<String, String> = pairs.into_iter().collect();
    let entries = reconcile(&records, &TrustModel::default(), &aliases);
    assert_eq!(entries.len(), 1, "one entity despite two names");
    assert_eq!(entries[0].sources.len(), 2);
}
