//! Cross-crate smoke check: the differential oracle agrees with the full
//! system on a small always-on seed range. The qdiff crate's own tests and
//! the CI matrix sweep far wider; this wires the harness into the tier-1
//! suite so a semantics regression anywhere in parse → plan → execute is
//! caught by plain `cargo test` with a shrunk, replayable counterexample.

use qdiff::{check_scenario, gen_scenario, shrink};

#[test]
fn differential_sweep_is_clean() {
    for seed in 0..16u64 {
        let sc = gen_scenario(seed);
        if let Some(d) = check_scenario(&sc) {
            // Shrink before failing so the assertion message is actionable.
            let mut fails = |s: &qdiff::Scenario| check_scenario(s).is_some();
            let small = shrink(&sc, &mut fails, 300);
            let detail =
                check_scenario(&small).map(|d| d.to_string()).unwrap_or_else(|| d.to_string());
            panic!("seed {seed} diverges: {detail}\n-- shrunk repro:\n{}", small.render_script());
        }
    }
}
