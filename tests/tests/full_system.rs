//! Whole-system integration: many sources, many refresh rounds, index
//! acceleration, schema evolution, durability — the system a biologist
//! would actually run, end to end.

use genalg::prelude::*;

fn populated_warehouse(seed: u64, per_source: usize) -> Warehouse {
    let mut w = Warehouse::new().expect("warehouse boots");
    w.add_source(SimulatedRepository::new(
        "genbank-sim",
        Representation::FlatFile,
        Capability::NonQueryable,
    ))
    .unwrap();
    w.add_source(SimulatedRepository::new(
        "embl-sim",
        Representation::Relational,
        Capability::Queryable,
    ))
    .unwrap();
    w.add_source(SimulatedRepository::new(
        "swiss-sim",
        Representation::Relational,
        Capability::Active,
    ))
    .unwrap();
    let mut generator = RepoGenerator::new(GeneratorConfig { seed, ..Default::default() });
    let (a, b) = generator.overlapping_pair(per_source, 0.4, 0.3);
    for rec in a {
        w.source_mut("genbank-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
    }
    for rec in b {
        w.source_mut("embl-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
    }
    // The third source holds a disjoint tail.
    for rec in generator.records(per_source / 4) {
        let mut rec = rec;
        rec.accession = format!("SW{}", rec.accession);
        w.source_mut("swiss-sim").unwrap().apply(ChangeKind::Insert, rec).unwrap();
    }
    w.refresh().unwrap();
    w
}

fn entity_count(w: &Warehouse) -> i64 {
    w.db().execute("SELECT count(*) FROM public.sequences").unwrap().rows[0][0].as_int().unwrap()
}

#[test]
fn repeated_incremental_refresh_matches_full_reload() {
    let mut w = populated_warehouse(404, 60);
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 405, ..Default::default() });
    // Five rounds of churn at every source, incrementally refreshed.
    for round in 0..5 {
        for source in ["genbank-sim", "embl-sim", "swiss-sim"] {
            let repo = w.source_mut(source).unwrap();
            generator.mutation_round(repo, 5 + round);
        }
        let report = w.refresh().unwrap();
        assert!(report.deltas > 0, "round {round} detected nothing");
    }
    let incremental_count = entity_count(&w);
    let incremental_entities = w.staged_entries();

    // Ground truth: a full reload from the sources' current state.
    w.full_reload().unwrap();
    assert_eq!(entity_count(&w), incremental_count, "incremental refresh diverged");
    assert_eq!(w.staged_entries(), incremental_entities);
}

#[test]
fn kmer_index_stays_consistent_through_refreshes() {
    let mut w = populated_warehouse(77, 40);
    w.adapter().attach_kmer_index(w.db(), "public.sequences", "seq", 8).unwrap();

    let probe = |w: &Warehouse, pattern: &str| -> Vec<String> {
        w.db()
            .execute(&format!(
                "SELECT accession FROM public.sequences WHERE contains(seq, '{pattern}') \
                 ORDER BY accession"
            ))
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect()
    };
    // The plan uses the UDI.
    let plan = w
        .db()
        .execute(
            "EXPLAIN SELECT accession FROM public.sequences WHERE contains(seq, 'ATGCATGCATGC')",
        )
        .unwrap()
        .explain
        .unwrap();
    assert!(plan.contains("UdiScan"), "{plan}");

    // Pick a real pattern, then churn and verify results track a fresh scan.
    let sample = w.db().execute("SELECT seq FROM public.sequences LIMIT 1").unwrap();
    let value = w.adapter().to_value(&sample.rows[0][0]).unwrap();
    let genalg::core::algebra::Value::Dna(seq) = value else { panic!() };
    let pattern = seq.subseq(10, 22).unwrap().to_text();

    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 78, ..Default::default() });
    for _ in 0..3 {
        {
            let repo = w.source_mut("embl-sim").unwrap();
            generator.mutation_round(repo, 8);
        }
        w.refresh().unwrap();
        let via_index = probe(&w, &pattern);
        // Cross-check against the mediator-style direct computation.
        let rs = w
            .db()
            .execute("SELECT accession, seq FROM public.sequences ORDER BY accession")
            .unwrap();
        let expected: Vec<String> = rs
            .rows
            .iter()
            .filter(|r| {
                let v = w.adapter().to_value(&r[1]).unwrap();
                let genalg::core::algebra::Value::Dna(s) = v else { return false };
                s.contains(&DnaSeq::from_text(&pattern).unwrap())
            })
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(via_index, expected, "index drifted from ground truth");
    }
}

#[test]
fn schema_evolution_and_cross_world_queries() {
    let w = populated_warehouse(11, 40);
    let n_proteins = w.derive_proteins().unwrap();
    assert!(n_proteins > 0, "some generated entities must carry a CDS");

    // Proteins join back to their nucleotide entities.
    let rs = w
        .db()
        .execute(
            "SELECT count(*) FROM public.proteins p \
             JOIN public.sequences s ON p.accession = s.accession",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0].as_int(), Some(n_proteins as i64));

    // Genomic operators work on the derived residues too.
    let rs = w
        .db()
        .execute(
            "SELECT max(gravy(residues)), min(molecular_weight(residues)) FROM public.proteins",
        )
        .unwrap();
    assert!(rs.rows[0][0].as_float().is_some());

    // And BQL reaches the evolved schema.
    let rs = genalg::bql::run(w.db(), "FIND PROTEINS SORTED BY weight DESCENDING TOP 3").unwrap();
    assert!(rs.len() <= 3 && !rs.is_empty());
}

#[test]
fn durable_warehouse_full_lifecycle() {
    let dir = std::env::temp_dir().join(format!("genalg-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let accessions: Vec<String>;
    {
        let mut w = Warehouse::open(&dir).unwrap();
        w.add_source(SimulatedRepository::new(
            "s1",
            Representation::FlatFile,
            Capability::NonQueryable,
        ))
        .unwrap();
        let mut generator = RepoGenerator::new(GeneratorConfig {
            seed: 500,
            error_rate: 0.0,
            ..Default::default()
        });
        for rec in generator.records(25) {
            w.source_mut("s1").unwrap().apply(ChangeKind::Insert, rec).unwrap();
        }
        w.refresh().unwrap();
        w.derive_proteins().unwrap();
        w.db().checkpoint().unwrap();
        // More changes after the checkpoint land in the WAL tail.
        {
            let repo = w.source_mut("s1").unwrap();
            generator.mutation_round(repo, 10);
        }
        w.refresh().unwrap();
        accessions = w
            .db()
            .execute("SELECT accession FROM public.sequences ORDER BY accession")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
    }
    // Reopen: snapshot + WAL tail replay must reproduce the same state.
    {
        let w = Warehouse::open(&dir).unwrap();
        let after: Vec<String> = w
            .db()
            .execute("SELECT accession FROM public.sequences ORDER BY accession")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(after, accessions);
        // Derived data survived and is still computable-over.
        let rs = w
            .db()
            .execute("SELECT count(*) FROM public.proteins WHERE seq_length(residues) > 0")
            .unwrap();
        assert!(rs.rows[0][0].as_int().unwrap() > 0);
        // Users can keep annotating after recovery.
        let alice = Role::User("alice".into());
        w.db().execute_as("CREATE TABLE post (note TEXT)", &alice).unwrap();
        w.db().execute_as("INSERT INTO post VALUES ('survived')", &alice).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warehouse_handles_source_retractions_gracefully() {
    let mut w = populated_warehouse(900, 30);
    let before = entity_count(&w);
    // One source deletes everything it holds.
    let accs: Vec<String> = {
        let repo = w.source_mut("swiss-sim").unwrap();
        repo.snapshot().unwrap().iter().map(|r| r.accession.clone()).collect()
    };
    for acc in &accs {
        let repo = w.source_mut("swiss-sim").unwrap();
        let rec = repo.fetch(acc).unwrap().unwrap();
        repo.apply(ChangeKind::Delete, rec).unwrap();
    }
    let report = w.refresh().unwrap();
    assert_eq!(report.deleted, accs.len());
    assert_eq!(entity_count(&w), before - accs.len() as i64);
    // Entities contributed by surviving sources are untouched.
    let rs = w
        .db()
        .execute("SELECT count(*) FROM public.sequences WHERE accession LIKE 'SYN%'")
        .unwrap();
    assert_eq!(rs.rows[0][0].as_int(), Some(before - accs.len() as i64));
}
