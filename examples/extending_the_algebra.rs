//! Extending the Genomics Algebra at runtime (§4.2, C13/C14).
//!
//! "If required, the Genomics Algebra can be extended by new sorts and
//! operations. In particular, we can combine new sorts with sorts already
//! present in the algebra." This example registers a new sort
//! (`restriction-enzyme`), new operations over it, composes them with
//! built-in sorts in evaluated terms, and finally exposes the new
//! operation to SQL — the full path a lab would take to integrate its own
//! methods.
//!
//! ```sh
//! cargo run --example extending_the_algebra
//! ```

use genalg::core::algebra::{CustomValue, KernelAlgebra, SortId, Term, Value};
use genalg::prelude::*;
use std::any::Any;
use std::sync::Arc;

/// The lab's own data type: a restriction enzyme with a recognition site.
#[derive(Debug, PartialEq)]
struct Enzyme {
    name: String,
    site: DnaSeq,
}

impl CustomValue for Enzyme {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn eq_dyn(&self, other: &dyn CustomValue) -> bool {
        other.as_any().downcast_ref::<Enzyme>() == Some(self)
    }
    fn render(&self) -> String {
        format!("{} ({})", self.name, self.site.to_text())
    }
}

fn enzyme(name: &str, site: &str) -> Value {
    Value::Custom(
        SortId::new("restriction_enzyme"),
        Arc::new(Enzyme { name: name.into(), site: DnaSeq::from_text(site).expect("valid site") }),
    )
}

fn main() {
    // --- 1. Extend the kernel algebra ---------------------------------------
    let mut algebra = KernelAlgebra::standard();
    let enzyme_sort = SortId::new("restriction_enzyme");
    algebra.register_sort(enzyme_sort.clone(), "a restriction enzyme with its recognition site");

    // cut_sites : dna × restriction_enzyme → int
    algebra
        .register_op("cut_sites", vec![SortId::dna(), enzyme_sort.clone()], SortId::int(), |args| {
            let seq = args[0].as_dna().expect("sort-checked");
            let enz = args[1].as_custom::<Enzyme>().expect("sort-checked");
            Ok(Value::Int(seq.find_all(&enz.site).len() as i64))
        })
        .expect("fresh operation name");

    // digests : dna × restriction_enzyme → bool (does it cut at all?)
    algebra
        .register_op("digests", vec![SortId::dna(), enzyme_sort.clone()], SortId::bool(), |args| {
            let seq = args[0].as_dna().expect("sort-checked");
            let enz = args[1].as_custom::<Enzyme>().expect("sort-checked");
            Ok(Value::Bool(seq.contains(&enz.site)))
        })
        .expect("fresh operation name");

    println!(
        "algebra now has {} operations over {} sorts",
        algebra.signature().op_count(),
        algebra.signature().sorts().len()
    );

    // --- 2. The new sort composes with built-ins in terms --------------------
    let ecori = enzyme("EcoRI", "GAATTC");
    let plasmid = DnaSeq::from_text("TTGAATTCAAGGGGAATTCCCCTTGAATTCAA").expect("valid");
    // cut_sites(reverse_complement(plasmid), EcoRI) — mixing built-in and
    // user operations in one term.
    let term = Term::apply(
        "cut_sites",
        vec![
            Term::apply("reverse_complement", vec![Term::constant(Value::Dna(plasmid.clone()))]),
            Term::constant(ecori.clone()),
        ],
    );
    println!("term           : {term}");
    println!("term sort      : {}", term.sort(algebra.signature()).expect("well-sorted"));
    println!("evaluates to   : {}", algebra.eval(&term).expect("runs").render());
    // EcoRI's site is palindromic, so both strands agree:
    let fwd = Term::apply(
        "cut_sites",
        vec![Term::constant(Value::Dna(plasmid.clone())), Term::constant(ecori)],
    );
    println!("forward strand : {}", algebra.eval(&fwd).expect("runs").render());

    // --- 3. Expose the extension to SQL (the C14 path) -----------------------
    let db = Database::in_memory();
    let adapter =
        genalg::adapter::Adapter::install_algebra(&db, Arc::new(algebra)).expect("installs");
    db.execute("CREATE TABLE plasmids (id INT, name TEXT, seq dna)").expect("ddl");
    db.execute(
        "INSERT INTO plasmids VALUES
           (1, 'pDemo1', dna('TTGAATTCAAGGGGAATTCCCC')),
           (2, 'pDemo2', dna('CCCCCCCCCCCCCCCC')),
           (3, 'pDemo3', dna('GAATTCGAATTCGAATTC'))",
    )
    .expect("insert");
    // The user-defined operator needs its enzyme argument as a SQL-callable
    // constructor; register one more scalar for that.
    db.register_scalar(
        "ecori_cuts",
        Arc::new({
            let adapter = adapter.clone();
            move |args: &[Datum]| {
                let seq = adapter.to_value(&args[0])?;
                let enz = enzyme("EcoRI", "GAATTC");
                let n = adapter
                    .algebra()
                    .apply("cut_sites", &[seq, enz])
                    .map_err(|e| genalg::unidb::DbError::External(e.to_string()))?;
                adapter.to_datum(&n)
            }
        }),
    )
    .expect("fresh function name");

    let rs = db
        .execute(
            "SELECT name, ecori_cuts(seq) AS cuts FROM plasmids \
             WHERE ecori_cuts(seq) > 0 ORDER BY cuts DESC",
        )
        .expect("query runs");
    println!("\nSQL over the extended algebra:\n{}", db.render(&rs));
}
