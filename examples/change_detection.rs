//! Change detection across the Figure 2 grid.
//!
//! Four sources with different capability × representation combinations
//! receive the same mutation stream; each gets the monitoring technique
//! the paper's figure prescribes. The run shows (a) which strategy each
//! cell uses and (b) the semantic difference between techniques: log
//! inspection sees every intermediate change, polling sees only the net
//! effect — the §5.2 polling-frequency trade-off.
//!
//! ```sh
//! cargo run --example change_detection
//! ```

use genalg::etl::monitor::log::LogMonitor;
use genalg::etl::monitor::poll::{DumpMonitor, PollMonitor};
use genalg::etl::monitor::trigger::TriggerMonitor;
use genalg::etl::monitor::{effective_strategy, pick_strategy};
use genalg::prelude::*;

fn rec(acc: &str, seq: &str) -> SeqRecord {
    SeqRecord::new(acc, DnaSeq::from_text(seq).expect("valid DNA"))
        .with_description("change-detection demo")
}

fn main() {
    // --- The grid itself ------------------------------------------------------
    println!("Figure 2 — change-detection technique per (capability × representation):\n");
    println!("{:<14} {:<14} {:<22} {:<22}", "", "Relational", "Flat file", "Hierarchical");
    for cap in
        [Capability::Active, Capability::Logged, Capability::Queryable, Capability::NonQueryable]
    {
        let cell = |r: Representation| {
            pick_strategy(cap, r)
                .map(|s| format!("{s:?}"))
                .unwrap_or_else(|| format!("N/A → {:?}", effective_strategy(cap, r)))
        };
        println!(
            "{:<14} {:<14} {:<22} {:<22}",
            format!("{cap:?}"),
            cell(Representation::Relational),
            cell(Representation::FlatFile),
            cell(Representation::Hierarchical),
        );
    }

    // --- Live demonstration on four sources -----------------------------------
    let mut active =
        SimulatedRepository::new("swiss-sim", Representation::Relational, Capability::Active);
    let mut logged =
        SimulatedRepository::new("ddbj-sim", Representation::Relational, Capability::Logged);
    let mut queryable =
        SimulatedRepository::new("embl-sim", Representation::Relational, Capability::Queryable);
    let mut dump_only =
        SimulatedRepository::new("genbank-sim", Representation::FlatFile, Capability::NonQueryable);

    let mut trigger = TriggerMonitor::attach(&mut active).expect("active source");
    let mut log = LogMonitor::new();
    let mut poller = PollMonitor::new();
    let mut dumper = DumpMonitor::new();

    // Identical mutation stream everywhere: insert, three rapid updates, a
    // ghost record inserted and deleted between observation points.
    let mutate = |repo: &mut SimulatedRepository| {
        repo.apply(ChangeKind::Insert, rec("A1", "ATG")).expect("insert");
        for seq in ["ATGC", "ATGCA", "ATGCAT"] {
            repo.apply(ChangeKind::Update, rec("A1", seq)).expect("update");
        }
        repo.apply(ChangeKind::Insert, rec("GHOST", "GGGG")).expect("insert");
        repo.apply(ChangeKind::Delete, rec("GHOST", "GGGG")).expect("delete");
    };
    mutate(&mut active);
    mutate(&mut logged);
    mutate(&mut queryable);
    mutate(&mut dump_only);

    println!("\nsix changes applied at each source; one observation round later:\n");
    let triggered = trigger.drain();
    println!(
        "swiss-sim   (DatabaseTrigger)      : {} notifications — every change pushed",
        triggered.len()
    );
    let logged_deltas = log.poll(&logged).expect("logged source");
    println!(
        "ddbj-sim    (InspectLog)           : {} log entries — every change recovered",
        logged_deltas.len()
    );
    let polled = poller.poll(&queryable).expect("queryable source");
    println!(
        "embl-sim    (SnapshotDifferential) : {} net deltas — rapid updates collapsed, \
         the GHOST record never seen",
        polled.len()
    );
    let (dumped, script) = dumper.poll(&dump_only).expect("dump parses");
    println!(
        "genbank-sim (LCS diff)             : {} net deltas from a {}-line edit script",
        dumped.len(),
        script
    );

    // --- Delta anatomy (§5.2) ---------------------------------------------------
    let d = &logged_deltas[1];
    println!("\na delta carries everything §5.2 demands:");
    println!("  id          : {}", d.id);
    println!("  item        : {}", d.accession);
    println!("  kind        : {:?}", d.kind);
    println!("  a priori    : {}", d.before.as_ref().map_or("—".into(), |r| r.sequence.to_text()));
    println!("  a posteriori: {}", d.after.as_ref().map_or("—".into(), |r| r.sequence.to_text()));
    println!("  timestamp   : {}", d.timestamp);

    println!(
        "\nsource request accounting — triggers are free, polling pays per round:\n  \
         swiss-sim {} requests, ddbj-sim {}, embl-sim {}, genbank-sim {}",
        active.requests_served(),
        logged.requests_served(),
        queryable.requests_served(),
        dump_only.requests_served(),
    );
}
