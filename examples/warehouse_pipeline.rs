//! The full Unifying Database pipeline (Figure 3 end to end).
//!
//! Two synthetic repositories with overlapping, partly conflicting
//! contents feed the warehouse through ETL. Reconciliation corroborates
//! agreements, preserves conflicts as alternatives (C9), and the result is
//! queryable through extended SQL with genomic operators (§6.3).
//!
//! ```sh
//! cargo run --example warehouse_pipeline
//! ```

use genalg::prelude::*;

fn main() {
    // --- Build two sources sharing half their accessions --------------------
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 2026, ..Default::default() });
    let (genbank_records, embl_records) = generator.overlapping_pair(60, 0.5, 0.3);

    let mut warehouse = Warehouse::new().expect("warehouse boots");
    warehouse.set_trust("genbank-sim", 0.85);
    warehouse.set_trust("embl-sim", 0.9);
    warehouse
        .add_source(SimulatedRepository::new(
            "genbank-sim",
            Representation::FlatFile,
            Capability::NonQueryable,
        ))
        .expect("source registers");
    warehouse
        .add_source(SimulatedRepository::new(
            "embl-sim",
            Representation::Relational,
            Capability::Queryable,
        ))
        .expect("source registers");
    println!(
        "monitoring strategies: genbank-sim → {:?}, embl-sim → {:?}",
        warehouse.strategy_of("genbank-sim").expect("registered"),
        warehouse.strategy_of("embl-sim").expect("registered"),
    );

    for rec in genbank_records {
        warehouse
            .source_mut("genbank-sim")
            .expect("registered")
            .apply(ChangeKind::Insert, rec)
            .expect("fresh accession");
    }
    for rec in embl_records {
        warehouse
            .source_mut("embl-sim")
            .expect("registered")
            .apply(ChangeKind::Insert, rec)
            .expect("fresh accession");
    }

    // --- Manual refresh (§5.2): detect, reconcile, load ---------------------
    let report = warehouse.refresh().expect("refresh succeeds");
    println!(
        "refresh: {} deltas → {} entities upserted, {} deleted",
        report.deltas, report.upserted, report.deleted
    );

    fn show(warehouse: &Warehouse, title: &str, sql: &str) {
        let db = warehouse.db();
        let rs = db.execute(sql).expect(sql);
        println!("\n== {title}\n{}", db.render(&rs));
    }

    show(
        &warehouse,
        "warehouse census",
        "SELECT count(*) AS entities, sum(n_sources) AS contributions FROM public.sequences",
    );
    show(
        &warehouse,
        "corroborated entries (two sources agree)",
        "SELECT accession, confidence FROM public.sequences \
         WHERE n_sources = 2 AND disputed = false ORDER BY accession LIMIT 5",
    );
    show(
        &warehouse,
        "disputed entries — both alternatives kept (C9)",
        "SELECT accession, confidence FROM public.sequences \
         WHERE disputed = true ORDER BY accession LIMIT 5",
    );
    show(
        &warehouse,
        "alternatives of the first disputed entry",
        "SELECT a.accession, a.rank, a.confidence, a.provenance \
         FROM public.sequence_alternatives a \
         JOIN public.sequences s ON a.accession = s.accession \
         WHERE s.disputed = true ORDER BY a.accession, a.rank LIMIT 4",
    );
    show(
        &warehouse,
        "genomic operators in SQL (§6.3)",
        "SELECT organism, count(*) AS n, avg(gc_content(seq)) AS mean_gc \
         FROM public.sequences GROUP BY organism ORDER BY n DESC",
    );

    // --- Incremental maintenance --------------------------------------------
    println!("\napplying 25 curator changes at genbank-sim …");
    {
        let repo = warehouse.source_mut("genbank-sim").expect("registered");
        let mut g2 = RepoGenerator::new(GeneratorConfig { seed: 9, ..Default::default() });
        g2.mutation_round(repo, 25);
    }
    let report = warehouse.refresh().expect("incremental refresh");
    println!(
        "incremental refresh: {} deltas → {} upserts, {} deletes (no source reload)",
        report.deltas, report.upserted, report.deleted
    );

    show(
        &warehouse,
        "warehouse census after refresh",
        "SELECT count(*) AS entities FROM public.sequences",
    );
}
