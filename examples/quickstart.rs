//! Quickstart: the Genomics Algebra as a stand-alone library.
//!
//! Demonstrates the kernel algebra (§4 of the paper) without any database:
//! genomic data types, the central dogma, term evaluation, alignment, and
//! GenAlgXML export.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use genalg::core::algebra::{KernelAlgebra, Term, Value};
use genalg::core::codon::GeneticCode;
use genalg::core::seq::ops::find_orfs;
use genalg::prelude::*;

fn main() {
    // --- 1. Genomic data types --------------------------------------------
    let gene = Gene::builder("demoA")
        .name("demonstration kinase")
        .sequence(DnaSeq::from_text("ATGGCCTTTAAGGTAACCGGGTTTCACTGA").expect("valid DNA text"))
        .exon(0, 12)
        .exon(21, 30)
        .build()
        .expect("structurally valid gene");
    println!(
        "gene {} ({} nt, {} exons, {} introns)",
        gene.id(),
        gene.sequence().len(),
        gene.exons().len(),
        gene.introns().len()
    );

    // --- 2. The central dogma: transcribe → splice → translate -------------
    let transcript = transcribe(&gene).expect("strict sequence");
    println!("pre-mRNA : {}", transcript.sequence().to_text());
    let mrna = splice(&transcript).expect("valid exon structure");
    println!("mRNA     : {} (CDS {:?})", mrna.sequence().to_text(), mrna.cds());
    let protein = translate(&mrna, &GeneticCode::standard()).expect("located CDS");
    println!("protein  : {}", protein.sequence().to_text());

    // --- 3. The same pipeline as an algebra *term* --------------------------
    let algebra = KernelAlgebra::standard();
    let term = Term::apply(
        "translate",
        vec![Term::apply(
            "splice",
            vec![Term::apply(
                "transcribe",
                vec![Term::constant(Value::Gene(Box::new(gene.clone())))],
            )],
        )],
    );
    println!("\nterm      : {term}");
    println!("term sort : {}", term.sort(algebra.signature()).expect("well-sorted"));
    let result = algebra.eval(&term).expect("evaluates");
    println!("evaluated : {}", result.render());

    // --- 4. Sequence analysis ----------------------------------------------
    let seq = gene.sequence();
    println!("\nGC content        : {:.3}", seq.gc_content());
    println!("reverse complement: {}", seq.reverse_complement().to_text());
    let orfs = find_orfs(seq, &GeneticCode::standard(), 9);
    println!("ORFs >= 9 nt      : {}", orfs.len());
    for orf in &orfs {
        println!("  [{}..{}) strand {} frame {}", orf.start, orf.end, orf.strand, orf.frame);
    }

    // --- 5. Similarity: the resembles predicate -----------------------------
    let variant = DnaSeq::from_text("ATGGCATTTAAGGTAACCGGGTTTCACTGA").expect("valid");
    println!("\nresembles(variant, 90% id, 90% cover) = {}", resembles(seq, &variant, 0.9, 0.9));
    let aligned = global_align(
        seq.to_text().as_bytes(),
        variant.to_text().as_bytes(),
        &NucleotideScore::default(),
    );
    println!(
        "global alignment (score {}, identity {:.1}%):",
        aligned.score,
        aligned.identity() * 100.0
    );
    println!("{aligned}");

    // --- 6. GenAlgXML interchange -------------------------------------------
    let xml = genalg::xml::to_xml(&[Value::Gene(Box::new(gene))]);
    println!("\nGenAlgXML ({} bytes):\n{}", xml.len(), &xml[..xml.len().min(400)]);
}
