//! The biologist's view: BQL queries instead of SQL (§6.4).
//!
//! "Our high-level Genomics Algebra allows biologists to pose questions
//! using biological terms, not SQL statements." Each BQL query prints the
//! SQL it compiles to, then its rendered result — table, histogram, or
//! FASTA, per the output-description directive.
//!
//! ```sh
//! cargo run --example biologist_queries
//! ```

use genalg::prelude::*;

fn main() {
    // Populate a warehouse with one synthetic repository.
    let mut warehouse = Warehouse::new().expect("warehouse boots");
    warehouse
        .add_source(SimulatedRepository::new(
            "genbank-sim",
            Representation::FlatFile,
            Capability::NonQueryable,
        ))
        .expect("source registers");
    let mut generator = RepoGenerator::new(GeneratorConfig { seed: 7, ..Default::default() });
    for rec in generator.records(80) {
        warehouse
            .source_mut("genbank-sim")
            .expect("registered")
            .apply(ChangeKind::Insert, rec)
            .expect("fresh accession");
    }
    warehouse.refresh().expect("refresh succeeds");
    let db = warehouse.db();

    let run = |bql: &str| {
        let query = genalg::bql::parse(bql).expect(bql);
        let sql = query.to_sql().expect("compiles");
        println!("\nBQL : {bql}");
        println!("SQL : {sql}");
        let rendered = genalg::bql::run_rendered(db, bql).expect("runs");
        println!("{rendered}");
    };

    run("COUNT SEQUENCES BY organism AS HISTOGRAM");
    run("FIND SEQUENCES LONGER THAN 400 SHOW accession, organism, length \
         SORTED BY length DESCENDING TOP 5");
    run("FIND SEQUENCES GC ABOVE 0.55 SHOW accession, gc SORTED BY gc DESCENDING TOP 5");
    run("FIND SEQUENCES DESCRIBED AS 'locus 7' SHOW accession, description");
    run("FIND SEQUENCES CONTAINING 'ATGGCC' SHOW accession, length TOP 5");

    // The visual query builder — what the paper's GUI would construct.
    let visual = QueryBuilder::find_sequences()
        .from_organism("Homo sapiens")
        .longer_than(200)
        .show(&["accession", "length", "gc"])
        .sorted_by("gc", false)
        .top(5);
    println!("\nvisual query → BQL : {}", visual.to_bql());
    let sql = visual.build().to_sql().expect("compiles");
    println!("visual query → SQL : {sql}");
    let rs = db.execute(&sql).expect("runs");
    println!("{}", db.render(&rs));

    // FASTA export directive.
    let fasta = genalg::bql::run_rendered(
        db,
        "FIND SEQUENCES SHORTER THAN 200 SHOW accession, sequence TOP 3 AS FASTA",
    )
    .expect("runs");
    println!("FASTA export of three short sequences:\n{fasta}");
}
